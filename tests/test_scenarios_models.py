"""Tests for the pluggable churn/fault model registries and built-in models."""

import dataclasses

import pytest

from repro.scenarios import (
    ChurnProfile,
    ModelRef,
    ScenarioSpec,
    churn_model_names,
    fault_model_names,
    get_scenario,
    register_churn_model,
    register_fault_model,
    run_scenario,
)
from repro.scenarios.models import (
    build_churn_model,
    build_fault_model,
    unregister_churn_model,
    unregister_fault_model,
)
from repro.session import Session

TINY_SCALE = 0.1


class TestModelRef:
    def test_of_sorts_params(self):
        ref = ModelRef.of("x", b=2, a=1)
        assert ref.params == (("a", 1), ("b", 2))
        assert ref.kwargs == {"a": 1, "b": 2}

    def test_to_dict(self):
        assert ModelRef.of("x", k=3).to_dict() == {"name": "x", "params": {"k": 3}}

    def test_refs_are_hashable_inside_frozen_specs(self):
        hash(ModelRef.of("correlated-locality", locality=1))


class TestRegistries:
    def test_builtin_models_registered(self):
        assert {"none", "poisson", "burst"} <= set(churn_model_names())
        assert {"none", "correlated-locality"} <= set(fault_model_names())

    def test_unknown_model_rejected_at_spec_construction(self):
        with pytest.raises(ValueError, match="unknown churn model"):
            ScenarioSpec(name="bad", churn_model=ModelRef("martian"))
        with pytest.raises(ValueError, match="unknown fault model"):
            ScenarioSpec(name="bad", fault_model=ModelRef("martian"))

    def test_bad_params_rejected_at_spec_construction(self):
        with pytest.raises(ValueError, match="invalid parameters"):
            ScenarioSpec(
                name="bad", fault_model=ModelRef.of("correlated-locality", banana=1)
            )
        with pytest.raises(ValueError, match="at_fraction"):
            build_fault_model(ModelRef.of("correlated-locality", at_fraction=2.0))

    def test_duplicate_registration_rejected(self):
        @register_churn_model("tmp-churn-model")
        class Tmp:
            def attach(self, system, spec):
                return None

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_churn_model("tmp-churn-model", Tmp)
        finally:
            unregister_churn_model("tmp-churn-model")
        assert "tmp-churn-model" not in churn_model_names()

    def test_custom_fault_model_attaches_through_a_session(self):
        fired = []

        @register_fault_model("tmp-fault-model")
        class Tmp:
            def attach(self, system, spec):
                class Injector:
                    def start(self):
                        fired.append("start")

                    def stop(self):
                        fired.append("stop")

                return Injector()

        try:
            spec = dataclasses.replace(
                get_scenario("paper-default").scaled(TINY_SCALE),
                fault_model=ModelRef("tmp-fault-model"),
            )
            Session.from_spec(spec, seed=3).run()
            assert fired == ["start", "stop"]
        finally:
            unregister_fault_model("tmp-fault-model")


class TestBuiltinChurnModels:
    def test_poisson_model_with_idle_profile_attaches_nothing(self):
        spec = get_scenario("paper-default").scaled(TINY_SCALE)
        session = Session.from_spec(spec, seed=3)
        session.run()
        assert session.last_injectors == []

    def test_zero_rate_profile_is_idle(self):
        profile = ChurnProfile()
        assert not profile.is_enabled
        assert profile.to_config() is None

    def test_poisson_model_reproduces_the_legacy_churn_path(self):
        """Session + poisson model == the pre-registry run_flower(churn=...)."""
        from repro.experiments.driver import ExperimentRunner

        spec = get_scenario("heavy-churn").scaled(TINY_SCALE)
        via_session = run_scenario(spec, seed=11).metrics_digest()

        legacy_runner = ExperimentRunner(spec.to_setup(seed=11))
        legacy = legacy_runner.run_flower(churn=spec.churn.to_config())
        fresh = Session.from_spec(spec, seed=11).run_system("flower")
        assert legacy.num_queries == fresh.num_queries
        assert legacy.hit_ratio == fresh.hit_ratio
        assert legacy.average_lookup_latency_ms == fresh.average_lookup_latency_ms
        assert via_session["systems"]["flower"]["metrics"]["num_queries"] == legacy.num_queries

    def test_none_model_ignores_an_enabled_profile(self):
        spec = dataclasses.replace(
            get_scenario("heavy-churn").scaled(TINY_SCALE),
            churn_model=ModelRef("none"),
        )
        session = Session.from_spec(spec, seed=3)
        session.run()
        assert session.last_injectors == []

    def test_burst_model_fails_peers_in_bursts(self):
        spec = dataclasses.replace(
            get_scenario("paper-default").scaled(TINY_SCALE),
            churn_model=ModelRef.of("burst", period_s=200.0, burst_size=3),
        )
        session = Session.from_spec(spec, seed=3)
        session.run()
        (injector,) = session.last_injectors
        assert injector.log, "burst injector never fired"
        times = [entry.time for entry in injector.log]
        assert len({round(t, 6) for t in times}) < len(times) or len(times) >= 3

    def test_burst_model_validates_params(self):
        with pytest.raises(ValueError, match="period_s"):
            build_churn_model(ModelRef.of("burst", period_s=0.0))


class TestCorrelatedLocalityFaults:
    def make_session(self, **params):
        defaults = dict(at_fraction=0.5, locality=0, fraction=0.5)
        defaults.update(params)
        spec = dataclasses.replace(
            get_scenario("paper-default").scaled(TINY_SCALE),
            fault_model=ModelRef.of("correlated-locality", **defaults),
        )
        return Session.from_spec(spec, seed=3)

    def fault_log(self, session):
        (injector,) = session.last_injectors
        return injector.log

    def test_outage_fails_content_and_directory_peers_at_one_instant(self):
        session = self.make_session(fraction=1.0)
        session.run()
        log = self.fault_log(session)
        kinds = {entry.kind for entry in log}
        assert "correlated_content_failure" in kinds
        assert "correlated_directory_failure" in kinds
        at = session.spec.duration_s * 0.5
        assert all(entry.time == at for entry in log)

    def test_directories_can_be_excluded(self):
        session = self.make_session(include_directories=False)
        session.run()
        kinds = {entry.kind for entry in self.fault_log(session)}
        assert "correlated_directory_failure" not in kinds

    def test_boundary_aligned_event_still_fires(self):
        # An event landing exactly on a metrics-window boundary must fire
        # normally (scheduling at t == window edge is an ordinary event).
        session = self.make_session(at_fraction=1.0 / 3.0)
        session.run()
        at = session.spec.duration_s / 3.0
        assert any(entry.time == at for entry in self.fault_log(session))

    def test_repeating_outage_fires_multiple_times(self):
        session = self.make_session(repeat_every_s=300.0, fraction=0.3)
        session.run()
        times = sorted({entry.time for entry in self.fault_log(session)})
        assert len(times) >= 2

    def test_fault_models_rejected_for_squirrel_specs(self):
        with pytest.raises(ValueError, match="fault models only apply"):
            ScenarioSpec(
                name="bad",
                systems=("flower", "squirrel"),
                fault_model=ModelRef.of("correlated-locality"),
            )
        with pytest.raises(ValueError, match="churn models only apply"):
            ScenarioSpec(
                name="bad",
                systems=("flower", "squirrel"),
                churn_model=ModelRef.of("burst"),
            )

    def test_correlated_failures_scenario_degrades_locality_zero(self):
        """The library scenario visibly injures the system mid-run."""
        session = Session.from_name("correlated-failures", scale=0.2, seed=9)
        session.run()
        log = [
            entry
            for injector in session.last_injectors
            for entry in getattr(injector, "log", [])
            if entry.kind.startswith("correlated")
        ]
        assert log, "the scheduled outage never fired"


class TestGossipLossFaultModel:
    """The "gossip-loss" model: probabilistic gossip-message drop."""

    def make_spec(self, drop_probability):
        return dataclasses.replace(
            get_scenario("paper-default").scaled(TINY_SCALE),
            fault_model=ModelRef.of("gossip-loss", drop_probability=drop_probability),
        )

    def test_registered(self):
        assert "gossip-loss" in fault_model_names()

    def test_drop_probability_validated(self):
        with pytest.raises(ValueError, match="drop_probability"):
            build_fault_model(ModelRef.of("gossip-loss", drop_probability=-0.1))
        with pytest.raises(ValueError, match="drop_probability"):
            build_fault_model(ModelRef.of("gossip-loss", drop_probability=1.5))

    def test_zero_probability_is_byte_identical_to_none(self):
        baseline = run_scenario(get_scenario("paper-default").scaled(TINY_SCALE), seed=7)
        session = Session.from_spec(self.make_spec(0.0), seed=7)
        lossless = session.run()
        # The model attaches nothing, draws nothing, and changes nothing.
        assert session.last_injectors == []
        assert lossless.metrics_digest() == baseline.metrics_digest()

    def test_total_loss_suppresses_every_exchange(self):
        session = Session.from_spec(self.make_spec(1.0), seed=7)
        session.run()
        (injector,) = session.last_injectors
        assert injector.delivered == 0
        assert injector.dropped > 0
        assert all(entry.kind == "gossip_message_drop" for entry in injector.log)
        system = session.experiment.last_flower_system
        assert all(
            peer.gossip_initiated == 0 for peer in system._content_peers.values()
        )

    def test_partial_loss_drops_some_and_delivers_some(self):
        session = Session.from_spec(self.make_spec(0.5), seed=7)
        lossy = session.run()
        (injector,) = session.last_injectors
        assert injector.dropped > 0
        assert injector.delivered > 0
        baseline = run_scenario(get_scenario("paper-default").scaled(TINY_SCALE), seed=7)
        assert lossy.metrics_digest() != baseline.metrics_digest()

    def test_filter_detaches_after_the_run(self):
        session = Session.from_spec(self.make_spec(0.5), seed=7)
        session.run()
        assert session.experiment.last_flower_system.gossip_message_filter is None

    def test_runs_are_deterministic(self):
        first = run_scenario(self.make_spec(0.3), seed=11).metrics_digest()
        second = run_scenario(self.make_spec(0.3), seed=11).metrics_digest()
        assert first == second

    def test_double_attach_rejected(self):
        from repro.scenarios.models import GossipLossInjector

        session = Session.from_spec(self.make_spec(0.5), seed=7)
        _, system = session.build_flower()
        injector = GossipLossInjector(system, 0.5)
        injector.start()
        other = GossipLossInjector(system, 0.5)
        with pytest.raises(RuntimeError, match="already attached"):
            other.start()
        injector.stop()
        assert system.gossip_message_filter is None
