"""Unit tests for the event queue primitives."""

import pytest

from repro.sim.events import Event, EventQueue


class TestEventOrdering:
    def test_events_ordered_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while queue:
            queue.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_scheduling_order(self):
        queue = EventQueue()
        fired = []
        for label in "abcde":
            queue.push(5.0, lambda l=label: fired.append(l))
        while queue:
            queue.pop().callback()
        assert fired == list("abcde")

    def test_event_comparison_uses_time_then_sequence(self):
        early = Event(time=1.0, sequence=5, callback=lambda: None)
        late = Event(time=2.0, sequence=1, callback=lambda: None)
        assert early < late
        tie_a = Event(time=1.0, sequence=1, callback=lambda: None)
        tie_b = Event(time=1.0, sequence=2, callback=lambda: None)
        assert tie_a < tie_b


class TestEventQueueOperations:
    def test_len_reflects_live_events(self):
        queue = EventQueue()
        assert len(queue) == 0
        e1 = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.cancel(e1)
        assert len(queue) == 1

    def test_pop_skips_cancelled_events(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: "first")
        queue.push(2.0, lambda: "second")
        queue.cancel(first)
        popped = queue.pop()
        assert popped.time == 2.0

    def test_pop_empty_returns_none(self):
        queue = EventQueue()
        assert queue.pop() is None

    def test_peek_time_returns_next_live_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        first = queue.push(1.0, lambda: None)
        queue.push(4.0, lambda: None)
        assert queue.peek_time() == 1.0
        queue.cancel(first)
        assert queue.peek_time() == 4.0

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-1.0, lambda: None)

    def test_cancel_twice_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 1

    def test_clear_empties_the_queue(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None

    def test_event_label_preserved(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, label="gossip")
        assert event.label == "gossip"

    def test_bool_protocol(self):
        queue = EventQueue()
        assert not queue
        queue.push(0.0, lambda: None)
        assert queue
