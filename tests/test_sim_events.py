"""Unit tests for the event queue primitives."""

import pytest

from repro.sim.events import Event, EventQueue


class TestEventOrdering:
    def test_events_ordered_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while queue:
            queue.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_scheduling_order(self):
        queue = EventQueue()
        fired = []
        for label in "abcde":
            queue.push(5.0, lambda l=label: fired.append(l))
        while queue:
            queue.pop().callback()
        assert fired == list("abcde")

    def test_event_comparison_uses_time_then_sequence(self):
        early = Event(time=1.0, sequence=5, callback=lambda: None)
        late = Event(time=2.0, sequence=1, callback=lambda: None)
        assert early < late
        tie_a = Event(time=1.0, sequence=1, callback=lambda: None)
        tie_b = Event(time=1.0, sequence=2, callback=lambda: None)
        assert tie_a < tie_b


class TestEventQueueOperations:
    def test_len_reflects_live_events(self):
        queue = EventQueue()
        assert len(queue) == 0
        e1 = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.cancel(e1)
        assert len(queue) == 1

    def test_pop_skips_cancelled_events(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: "first")
        queue.push(2.0, lambda: "second")
        queue.cancel(first)
        popped = queue.pop()
        assert popped.time == 2.0

    def test_pop_empty_returns_none(self):
        queue = EventQueue()
        assert queue.pop() is None

    def test_peek_time_returns_next_live_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        first = queue.push(1.0, lambda: None)
        queue.push(4.0, lambda: None)
        assert queue.peek_time() == 1.0
        queue.cancel(first)
        assert queue.peek_time() == 4.0

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-1.0, lambda: None)

    def test_cancel_twice_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 1

    def test_clear_empties_the_queue(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None

    def test_event_label_preserved(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, label="gossip")
        assert event.label == "gossip"

    def test_bool_protocol(self):
        queue = EventQueue()
        assert not queue
        queue.push(0.0, lambda: None)
        assert queue


class TestCompaction:
    def test_mass_cancellation_compacts_the_heap(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(300)]
        for event in events[:200]:
            queue.cancel(event)
        # More than half the entries were dead: the heap must have shrunk
        # instead of carrying 200 tombstones to the end of the run, and the
        # residual dead fraction stays below the compaction threshold.
        assert queue.heap_size < 300
        assert queue.dead_entries <= 0.5 * queue.heap_size + 1
        assert len(queue) == 100

    def test_compaction_preserves_order_and_liveness(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda i=i: i) for i in range(200)]
        for event in events[::2]:
            queue.cancel(event)
        queue.compact()
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(popped)
        assert popped == [float(i) for i in range(1, 200, 2)]

    def test_small_queues_not_compacted(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(10)]
        for event in events[:8]:
            queue.cancel(event)
        # Below the compaction floor: lazy deletion only.
        assert queue.heap_size == 10
        assert len(queue) == 2

    def test_explicit_compact_on_empty_queue(self):
        queue = EventQueue()
        queue.compact()
        assert len(queue) == 0


class TestReschedule:
    def test_reschedule_reuses_the_handle(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: "x", label="periodic")
        popped = queue.pop()
        assert popped is event
        again = queue.reschedule(event, 5.0)
        assert again is event
        assert event.time == 5.0
        assert not event.cancelled
        assert event.label == "periodic"
        assert queue.pop() is event

    def test_rescheduled_event_ordered_with_fresh_pushes(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.pop()
        queue.push(3.0, lambda: None)
        queue.reschedule(event, 2.0)
        assert queue.pop().time == 2.0
        assert queue.pop().time == 3.0


class TestExtend:
    def test_extend_matches_sequential_pushes(self):
        bulk, sequential = EventQueue(), EventQueue()
        times = [5.0, 1.0, 3.0, 1.0, 2.0]
        bulk.extend((t, lambda: None) for t in times)
        for t in times:
            sequential.push(t, lambda: None)
        bulk_order = [(e.time, e.sequence) for e in iter(bulk.pop, None)]
        seq_order = [(e.time, e.sequence) for e in iter(sequential.pop, None)]
        assert bulk_order == seq_order

    def test_extend_into_populated_queue(self):
        queue = EventQueue()
        queue.push(2.5, lambda: None)
        queue.extend((float(t), lambda: None) for t in (1, 3))
        assert [queue.pop().time for _ in range(3)] == [1.0, 2.5, 3.0]

    def test_extend_rejects_negative_times(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.extend([(1.0, lambda: None), (-1.0, lambda: None)])

    def test_failed_extend_leaves_queue_intact(self):
        """A mid-iterable validation failure must not half-apply the batch."""
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        with pytest.raises(ValueError):
            queue.extend([(1.0, lambda: None), (-1.0, lambda: None)])
        assert len(queue) == 1
        assert queue.pop().time == 5.0
        assert queue.pop() is None
        assert len(queue) == 0

    def test_extend_empty_iterable(self):
        queue = EventQueue()
        assert queue.extend([]) == []
        assert len(queue) == 0


class TestPopBefore:
    def test_pop_before_horizon_leaves_event_queued(self):
        queue = EventQueue()
        queue.push(10.0, lambda: None)
        assert queue.pop_before(5.0) is None
        assert len(queue) == 1  # still queued, not consumed
        assert queue.pop_before(10.0).time == 10.0

    def test_pop_before_none_is_plain_pop(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        assert queue.pop_before(None).time == 1.0
        assert queue.pop_before(None) is None
