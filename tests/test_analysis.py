"""Tests for the repro.analysis static-analysis engine.

Fixture files under ``tests/analysis_fixtures/`` carry deliberate rule
violations; lines expected to be flagged end in an ``# expect: RULE-ID``
marker, which these tests compare against the engine's actual findings.
Scoped rules (DET002/DET003/DET005) are exercised by analyzing fixtures
under virtual ``src/repro/<package>/...`` paths.
"""

from __future__ import annotations

import io
import json
import re
import subprocess
from pathlib import Path

import pytest

from repro import cli
from repro.analysis import (
    Finding,
    ModuleContext,
    Rule,
    analyze_paths,
    analyze_source,
    get_rule,
    iter_python_files,
    iter_rules,
    register_rule,
    rule_ids,
)
from repro.analysis.cli import changed_python_files

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC = Path(__file__).resolve().parents[1] / "src"

#: fixtures exercising package-scoped rules are analyzed under these paths.
VIRTUAL_PATHS = {
    "det002_positive.py": "src/repro/core/fixture.py",
    "det002_negative.py": "src/repro/perf/fixture.py",
    "det002_suppressed.py": "src/repro/core/fixture.py",
    "det003_positive.py": "src/repro/core/fixture.py",
    "det003_negative.py": "src/repro/core/fixture.py",
    "det003_suppressed.py": "src/repro/sim/fixture.py",
    "det005_positive.py": "src/repro/datastructures/fixture.py",
    "det005_negative.py": "src/repro/datastructures/fixture.py",
    "det005_suppressed.py": "src/repro/core/fixture.py",
}
DEFAULT_VIRTUAL = "src/repro/workload/fixture.py"

_EXPECT = re.compile(r"#\s*expect:\s*([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)")

ALL_RULES = ("DET001", "DET002", "DET003", "DET004", "DET005", "DET006")


def analyze_fixture(name: str):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return analyze_source(source, path=VIRTUAL_PATHS.get(name, DEFAULT_VIRTUAL))


def expected_findings(name: str):
    """Parse the ``# expect: RULE-ID`` markers of one fixture file."""
    expected = set()
    for lineno, line in enumerate(
        (FIXTURES / name).read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _EXPECT.search(line)
        if match:
            for rule_id in match.group(1).split(","):
                expected.add((lineno, rule_id.strip()))
    return expected


class TestFixtures:
    @pytest.mark.parametrize("rule_id", ALL_RULES)
    def test_positive_fixture_matches_markers(self, rule_id):
        name = f"{rule_id.lower()}_positive.py"
        report = analyze_fixture(name)
        actual = {(finding.line, finding.rule) for finding in report.findings}
        expected = expected_findings(name)
        assert expected, f"{name} has no expect markers"
        assert actual == expected

    @pytest.mark.parametrize("rule_id", ALL_RULES)
    def test_negative_fixture_is_clean(self, rule_id):
        report = analyze_fixture(f"{rule_id.lower()}_negative.py")
        assert report.findings == []
        assert report.suppressed == []

    @pytest.mark.parametrize("rule_id", ALL_RULES)
    def test_suppressed_fixture_reports_nothing_but_counts(self, rule_id):
        report = analyze_fixture(f"{rule_id.lower()}_suppressed.py")
        assert report.findings == []
        assert {finding.rule for finding in report.suppressed} == {rule_id}

    def test_malformed_suppressions_are_findings(self):
        report = analyze_fixture("suppression_malformed.py")
        rules = [finding.rule for finding in report.findings]
        # allow() with no id and allow(NOTARULE) -> ANA100 (x2);
        # allow(DET999) -> ANA101 unknown rule;
        # allow(DET001) on a clean line -> ANA102 unused;
        # and the invalid suppression does NOT silence the DET001 violation.
        assert rules.count("ANA100") == 2
        assert rules.count("ANA101") == 1
        assert rules.count("ANA102") == 1
        assert rules.count("DET001") == 1
        assert report.suppressed == []


class TestSuppressions:
    def test_multi_rule_suppression_on_preceding_line(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def f(ids: set):\n"
            "    # repro: allow(DET002, DET003)\n"
            "    return [time.time() for x in ids]\n"
        )
        report = analyze_source(source, path="src/repro/core/fixture.py")
        assert report.findings == []
        assert {finding.rule for finding in report.suppressed} == {
            "DET002",
            "DET003",
        }

    def test_same_line_suppression_only_covers_its_line(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def f():\n"
            "    a = time.time()  # repro: allow(DET002)\n"
            "    b = time.time()\n"
            "    return a + b\n"
        )
        report = analyze_source(source, path="src/repro/core/fixture.py")
        assert [finding.line for finding in report.findings] == [6]
        assert [finding.line for finding in report.suppressed] == [5]


class TestEngine:
    def test_syntax_error_is_a_finding(self):
        report = analyze_source("def broken(:\n", path="src/repro/core/bad.py")
        assert [finding.rule for finding in report.findings] == ["ANA000"]

    def test_fixture_directory_is_excluded_from_discovery(self):
        files = iter_python_files([FIXTURES.parent])
        assert files, "tests/ should contain python files"
        assert not any("analysis_fixtures" in f.parts for f in files)

    def test_explicit_fixture_file_is_still_analyzed(self):
        files = iter_python_files([FIXTURES / "det001_positive.py"])
        assert len(files) == 1

    def test_report_to_dict_and_text(self):
        report = analyze_fixture("det006_positive.py")
        document = report.to_dict()
        assert document["ok"] is False
        assert document["files_analyzed"] == 1
        assert all(
            set(entry) == {"path", "line", "column", "rule", "message"}
            for entry in document["findings"]
        )
        text = report.format_text()
        assert "DET006" in text
        assert text.endswith("3 finding(s), 0 suppressed")

    def test_module_context_scoping(self):
        context = ModuleContext(
            path="src/repro/core/system.py", tree=None, source_lines=()
        )
        assert context.repro_parts == ("core", "system")
        assert context.package() == "core"
        outside = ModuleContext(path="scripts/tool.py", tree=None, source_lines=())
        assert outside.repro_parts is None
        assert outside.package() is None


class TestRegistry:
    def test_all_builtin_rules_registered(self):
        assert set(ALL_RULES).issubset(set(rule_ids()))

    def test_rules_have_title_and_rationale(self):
        for rule in iter_rules():
            assert rule.title
            assert rule.rationale

    def test_register_rejects_bad_and_duplicate_ids(self):
        class Bad(Rule):
            rule_id = "not-a-rule-id"

        with pytest.raises(ValueError):
            register_rule(Bad())

        class Duplicate(Rule):
            rule_id = "DET001"

        with pytest.raises(ValueError):
            register_rule(Duplicate())

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError):
            get_rule("XYZ999")


class TestMeta:
    def test_src_tree_is_clean_at_head(self):
        """The acceptance invariant: `repro analyze src/` has zero findings."""
        report = analyze_paths([SRC])
        assert report.findings == [], "\n" + "\n".join(
            finding.format() for finding in report.findings
        )
        assert len(report.files) > 50

    def test_every_suppression_in_tree_names_a_rule(self):
        """ANA100/ANA101/ANA102 are findings, so a clean tree implies every
        suppression is well-formed, names a known rule and is used; spot-check
        by counting the actual directive comment tokens."""
        import tokenize

        directives = 0
        for path in iter_python_files([SRC]):
            reader = io.StringIO(path.read_text(encoding="utf-8")).readline
            directives += sum(
                1
                for token in tokenize.generate_tokens(reader)
                if token.type == tokenize.COMMENT
                and "repro: allow(" in token.string
            )
        report = analyze_paths([SRC])
        assert directives > 0, "the tree should exercise the suppression syntax"
        assert len(report.suppressed) == directives
        assert set(rule_ids()).issuperset(
            finding.rule for finding in report.suppressed
        )


class TestCli:
    def run(self, args):
        buffer = io.StringIO()
        code = cli.main(args, out=buffer)
        return code, buffer.getvalue()

    def test_parser_accepts_analyze_verb(self):
        args = cli.build_parser().parse_args(
            ["analyze", "--format", "json", "--changed", "src"]
        )
        assert args.command == "analyze"
        assert args.format == "json"
        assert args.changed

    def test_analyze_flags_fixture_violations(self):
        code, output = self.run(
            ["analyze", str(FIXTURES / "det006_positive.py")]
        )
        assert code == 1
        assert "DET006" in output

    def test_analyze_json_format(self):
        code, output = self.run(
            ["analyze", "--format", "json", str(FIXTURES / "det006_positive.py")]
        )
        assert code == 1
        document = json.loads(output)
        assert document["ok"] is False
        assert {entry["rule"] for entry in document["findings"]} == {"DET006"}

    def test_analyze_rules_filter(self):
        code, _ = self.run(
            ["analyze", "--rules", "DET001",
             str(FIXTURES / "det006_positive.py")]
        )
        assert code == 0

    def test_analyze_unknown_rule_is_usage_error(self, capsys):
        code, _ = self.run(["analyze", "--rules", "XYZ999", str(FIXTURES)])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_analyze_missing_path_is_usage_error(self, capsys):
        code, _ = self.run(["analyze", "does/not/exist"])
        assert code == 2

    def test_analyze_list_rules(self):
        code, output = self.run(["analyze", "--list-rules"])
        assert code == 0
        for rule_id in ALL_RULES:
            assert rule_id in output

    def test_analyze_src_is_clean(self):
        code, output = self.run(["analyze", str(SRC)])
        assert code == 0
        assert "0 finding(s)" in output


class TestChanged:
    @pytest.fixture
    def git_repo(self, tmp_path):
        def git(*args):
            subprocess.run(
                ["git", *args], cwd=tmp_path, check=True, capture_output=True
            )

        git("init")
        git("config", "user.email", "test@example.invalid")
        git("config", "user.name", "test")
        (tmp_path / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
        git("add", "clean.py")
        git("commit", "-m", "seed")
        return tmp_path

    def test_changed_python_files_lists_diff_and_untracked(self, git_repo):
        (git_repo / "clean.py").write_text("VALUE = 2\n", encoding="utf-8")
        (git_repo / "fresh.py").write_text("VALUE = 3\n", encoding="utf-8")
        (git_repo / "notes.txt").write_text("not python\n", encoding="utf-8")
        names = {path.name for path in changed_python_files(git_repo)}
        assert names == {"clean.py", "fresh.py"}

    def test_analyze_changed_only_lints_the_diff(self, git_repo, monkeypatch):
        (git_repo / "bad.py").write_text(
            "def f(seen=[]):\n    return seen\n", encoding="utf-8"
        )
        monkeypatch.chdir(git_repo)
        buffer = io.StringIO()
        code = cli.main(["analyze", "--changed", "."], out=buffer)
        assert code == 1
        output = buffer.getvalue()
        assert "DET006" in output
        assert "1 file(s) analyzed" in output

    def test_analyze_changed_with_no_changes_is_clean(self, git_repo, monkeypatch):
        monkeypatch.chdir(git_repo)
        buffer = io.StringIO()
        code = cli.main(["analyze", "--changed", "."], out=buffer)
        assert code == 0
        assert "0 file(s) analyzed" in buffer.getvalue()


class TestFindingOrdering:
    def test_findings_sort_by_location(self):
        a = Finding(path="a.py", line=2, column=1, rule="DET001", message="x")
        b = Finding(path="a.py", line=10, column=1, rule="DET001", message="x")
        c = Finding(path="b.py", line=1, column=1, rule="DET001", message="x")
        assert sorted([c, b, a]) == [a, b, c]
