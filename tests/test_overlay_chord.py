"""Unit tests for Chord nodes, the ring and routing-state stabilisation."""

import pytest

from repro.overlay.chord import ChordRing
from repro.overlay.idspace import IdSpace
from repro.overlay.node import ChordNode, rebuild_routing_state


@pytest.fixture
def idspace() -> IdSpace:
    return IdSpace(bits=8)


@pytest.fixture
def ring(idspace: IdSpace) -> ChordRing:
    return ChordRing.build(idspace, [10, 50, 90, 130, 170, 210, 250])


class TestChordNode:
    def test_finger_starts(self, idspace: IdSpace):
        node = ChordNode(10, idspace)
        assert node.finger_start(0) == 11
        assert node.finger_start(3) == 18
        assert node.finger_start(7) == (10 + 128) % 256

    def test_known_nodes_includes_routing_state(self, idspace: IdSpace):
        node = ChordNode(10, idspace)
        node.fingers[0] = 20
        node.successors = [20, 30]
        node.predecessor = 250
        assert node.known_nodes() == {10, 20, 30, 250}

    def test_forget_removes_everywhere(self, idspace: IdSpace):
        node = ChordNode(10, idspace)
        node.fingers[0] = 20
        node.successors = [20, 30]
        node.predecessor = 20
        node.forget(20)
        assert 20 not in node.known_nodes()

    def test_remember_improves_fingers(self, idspace: IdSpace):
        node = ChordNode(0, idspace)
        node.remember(200)
        node.remember(3)
        # finger 0 targets id 1: 3 is closer after the start than 200.
        assert node.fingers[0] == 3

    def test_local_lookup_returns_numerically_closest_known(self, idspace: IdSpace):
        node = ChordNode(10, idspace)
        node.successors = [50, 90]
        assert node.local_lookup(52) == 50
        assert node.local_lookup(11) == 10

    def test_conditional_local_lookup_filters(self, idspace: IdSpace):
        node = ChordNode(10, idspace)
        node.successors = [50, 90]
        high_only = lambda n: n >= 60  # noqa: E731
        assert node.conditional_local_lookup(52, high_only) == 90
        assert node.conditional_local_lookup(52, lambda n: False) is None

    def test_back_finger_starts(self, idspace: IdSpace):
        node = ChordNode(10, idspace)
        assert node.back_finger_start(0) == 9
        assert node.back_finger_start(3) == 2
        assert node.back_finger_start(7) == (10 - 128) % 256

    def test_remember_improves_back_fingers(self, idspace: IdSpace):
        node = ChordNode(0, idspace)
        node.remember(100)
        node.remember(254)
        # back finger 0 targets id 255: 254 is closer before the start than 100.
        assert node.back_fingers[0] == 254

    def test_forget_clears_back_fingers(self, idspace: IdSpace):
        node = ChordNode(0, idspace)
        node.remember(200)
        assert 200 in node.back_fingers
        node.forget(200)
        assert 200 not in node.back_fingers

    def test_rebuild_routing_state_on_empty_set_is_noop(self):
        rebuild_routing_state({})

    def test_rebuild_points_back_fingers_at_ccw_predecessors(self, ring: ChordRing):
        live = sorted(ring.live_ids())

        def predecessor_of(identifier: int) -> int:
            candidates = [n for n in live if n <= identifier]
            return candidates[-1] if candidates else live[-1]

        for node_id in live:
            node = ring.node(node_id)
            for index in range(node.idspace.bits):
                assert node.back_fingers[index] == predecessor_of(
                    node.back_finger_start(index)
                )


class TestChordRing:
    def test_build_creates_consistent_ring(self, ring: ChordRing):
        assert len(ring) == 7
        for node_id in ring.live_ids():
            node = ring.node(node_id)
            assert node.predecessor in ring.live_ids()
            assert all(s in ring.live_ids() for s in node.successors)
            assert all(f in ring.live_ids() for f in node.fingers)

    def test_successors_follow_ring_order(self, ring: ChordRing):
        node = ring.node(10)
        assert node.successors[0] == 50
        node = ring.node(250)
        assert node.successors[0] == 10  # wraps around

    def test_owner_of_is_numerically_closest(self, ring: ChordRing):
        assert ring.owner_of(60).node_id == 50
        assert ring.owner_of(75).node_id == 90  # 75 is closer to 90 than to 50
        assert ring.owner_of(255).node_id == 250

    def test_owner_matching_predicate(self, ring: ChordRing):
        owner = ring.owner_matching(120, lambda nid: nid > 150)
        assert owner.node_id == 170

    def test_owner_of_empty_ring_is_none(self, idspace: IdSpace):
        assert ChordRing(idspace).owner_of(5) is None

    def test_duplicate_join_rejected(self, ring: ChordRing):
        with pytest.raises(ValueError):
            ring.join(50)

    def test_join_updates_ownership(self, ring: ChordRing):
        ring.join(60)
        assert ring.owner_of(61).node_id == 60

    def test_leave_removes_node_and_repairs(self, ring: ChordRing):
        ring.leave(50)
        assert 50 not in ring
        assert ring.owner_of(52).node_id in (10, 90)
        node = ring.node(10)
        assert 50 not in node.known_nodes()

    def test_fail_keeps_stale_entries_until_stabilize(self, ring: ChordRing):
        ring.fail(50)
        assert 50 not in ring
        # The neighbours may still point at the failed node until stabilisation.
        ring.stabilize()
        assert all(50 not in ring.node(nid).known_nodes() for nid in ring.live_ids())

    def test_missing_node_lookup_raises(self, ring: ChordRing):
        with pytest.raises(KeyError):
            ring.node(77)

    def test_successor_of(self, ring: ChordRing):
        assert ring.successor_of(51) == 90
        assert ring.successor_of(50) == 50
        assert ring.successor_of(251) == 10  # wrap
        assert ChordRing(IdSpace(8)).successor_of(4) is None


class TestIdealRoute:
    def test_route_reaches_successor_of_key(self, ring: ChordRing):
        path = ring.ideal_route(10, 128)
        assert path[0] == 10
        assert path[-1] == ring.successor_of(128)

    def test_route_from_destination_is_trivial(self, ring: ChordRing):
        assert ring.ideal_route(90, 88) == [90]

    def test_route_hops_are_logarithmic(self, idspace_large=IdSpace(bits=16)):
        import random

        rng = random.Random(4)
        node_ids = sorted(rng.sample(range(idspace_large.size), 256))
        ring = ChordRing(idspace_large, auto_stabilize=False)
        for node_id in node_ids:
            ring.join(node_id)
        lengths = []
        for _ in range(50):
            start = rng.choice(node_ids)
            key = rng.randrange(idspace_large.size)
            path = ring.ideal_route(start, key)
            assert path[-1] == ring.successor_of(key)
            lengths.append(len(path) - 1)
        assert max(lengths) <= 16  # O(log 256) = 8 expected, generous bound
        assert sum(lengths) / len(lengths) <= 10

    def test_route_path_nodes_are_members(self, ring: ChordRing):
        path = ring.ideal_route(10, 200)
        assert all(node in ring for node in path)

    def test_route_from_non_member_raises(self, ring: ChordRing):
        with pytest.raises(KeyError):
            ring.ideal_route(77, 10)
