"""Unit tests for the website catalogue and the Zipf popularity sampler."""

import random

import pytest

from repro.workload.catalog import Catalog, Website
from repro.workload.zipf import ZipfSampler


class TestWebsite:
    def test_validation(self):
        with pytest.raises(ValueError):
            Website(name="", num_objects=10)
        with pytest.raises(ValueError):
            Website(name="w.org", num_objects=0)

    def test_object_ids_are_urls_of_the_site(self):
        site = Website(name="w.org", num_objects=3)
        assert site.object_id(0) == "http://w.org/object/0"
        assert site.owns(site.object_id(2))
        assert not site.owns("http://other.org/object/2")

    def test_object_index_bounds(self):
        site = Website(name="w.org", num_objects=3)
        with pytest.raises(IndexError):
            site.object_id(3)
        with pytest.raises(IndexError):
            site.object_id(-1)

    def test_objects_iterates_all(self):
        site = Website(name="w.org", num_objects=5)
        assert len(list(site.objects())) == 5


class TestCatalog:
    def test_synthetic_catalog_shape(self):
        catalog = Catalog.synthetic(num_websites=7, objects_per_website=11)
        assert len(catalog) == 7
        assert catalog.total_objects() == 77
        assert len(catalog.names()) == 7

    def test_synthetic_requires_positive_count(self):
        with pytest.raises(ValueError):
            Catalog.synthetic(0, 10)

    def test_duplicate_website_names_rejected(self):
        site = Website(name="dup.org", num_objects=1)
        with pytest.raises(ValueError):
            Catalog(websites=[site, Website(name="dup.org", num_objects=2)])

    def test_website_lookup(self):
        catalog = Catalog.synthetic(3, 5)
        name = catalog.names()[1]
        assert catalog.website(name).name == name
        assert name in catalog
        with pytest.raises(KeyError):
            catalog.website("missing.org")

    def test_website_of_object(self):
        catalog = Catalog.synthetic(3, 5)
        site = catalog.websites[2]
        assert catalog.website_of_object(site.object_id(4)).name == site.name
        with pytest.raises(KeyError):
            catalog.website_of_object("http://unknown.org/object/0")


class TestZipfSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, alpha=-1)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, alpha=0.8)
        total = sum(sampler.probability(rank) for rank in range(50))
        assert total == pytest.approx(1.0)

    def test_probability_decreases_with_rank(self):
        sampler = ZipfSampler(100, alpha=0.8)
        probabilities = [sampler.probability(rank) for rank in range(100)]
        assert all(a >= b for a, b in zip(probabilities, probabilities[1:]))

    def test_probability_rank_bounds(self):
        sampler = ZipfSampler(10)
        with pytest.raises(IndexError):
            sampler.probability(10)

    def test_samples_within_population(self):
        sampler = ZipfSampler(20, alpha=1.0)
        rng = random.Random(3)
        ranks = sampler.sample_many(rng, 500)
        assert all(0 <= rank < 20 for rank in ranks)

    def test_low_ranks_dominate_samples(self):
        sampler = ZipfSampler(100, alpha=0.8)
        rng = random.Random(3)
        ranks = sampler.sample_many(rng, 3000)
        top_ten = sum(1 for rank in ranks if rank < 10)
        assert top_ten / len(ranks) > 0.3  # heavy head, as in web workloads

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(4, alpha=0.0)
        for rank in range(4):
            assert sampler.probability(rank) == pytest.approx(0.25)

    def test_expected_unique_fraction_monotone(self):
        sampler = ZipfSampler(50, alpha=0.8)
        fractions = [sampler.expected_unique_fraction(n) for n in (0, 10, 100, 1000)]
        assert fractions[0] == 0.0
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] <= 1.0

    def test_expected_unique_fraction_rejects_negative(self):
        with pytest.raises(ValueError):
            ZipfSampler(5).expected_unique_fraction(-1)
