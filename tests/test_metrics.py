"""Unit tests for histograms, time series, collectors and report formatting."""

import pytest

from repro.metrics.collectors import (
    BandwidthAccountant,
    MetricsCollector,
    QueryOutcome,
    QueryRecord,
)
from repro.metrics.histogram import Histogram
from repro.metrics.report import format_series, format_table, percentiles_table
from repro.metrics.timeseries import TimeSeries


def make_record(query_id=0, time=0.0, outcome=QueryOutcome.LOCAL_OVERLAY_HIT,
                latency=50.0, distance=30.0, hops=0, failures=0) -> QueryRecord:
    return QueryRecord(
        query_id=query_id,
        time=time,
        website="site-000.example.org",
        locality=0,
        outcome=outcome,
        lookup_latency_ms=latency,
        transfer_distance_ms=distance,
        overlay_hops=hops,
        redirection_failures=failures,
    )


class TestHistogram:
    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(bin_width=0, num_bins=5)
        with pytest.raises(ValueError):
            Histogram(bin_width=10, num_bins=0)
        with pytest.raises(ValueError):
            Histogram(bin_width=10, num_bins=5).add(-1)

    def test_values_fall_into_expected_bins(self):
        histogram = Histogram(bin_width=100, num_bins=3)
        histogram.extend([10, 150, 250, 500])
        counts = histogram.as_dict()
        assert counts["[0, 100)"] == 1
        assert counts["[100, 200)"] == 1
        assert counts["[200, 300)"] == 1
        assert counts[">=300"] == 1

    def test_mean_min_max(self):
        histogram = Histogram(bin_width=10, num_bins=10)
        histogram.extend([10.0, 20.0, 30.0])
        assert histogram.mean == pytest.approx(20.0)
        assert histogram.min == 10.0
        assert histogram.max == 30.0
        assert histogram.total == 3

    def test_fraction_below_and_above(self):
        histogram = Histogram(bin_width=150, num_bins=10)
        histogram.extend([50] * 87 + [2000] * 13)
        assert histogram.fraction_below(150) == pytest.approx(0.87)
        assert histogram.fraction_above(150) == pytest.approx(0.13)

    def test_fractions_of_empty_histogram(self):
        histogram = Histogram(bin_width=10, num_bins=2)
        assert histogram.fraction_below(10) == 0.0
        assert histogram.fraction_above(10) == 0.0
        assert all(fraction == 0.0 for _, fraction in histogram.as_fractions())

    def test_as_fractions_sums_to_one(self):
        histogram = Histogram(bin_width=10, num_bins=5)
        histogram.extend(range(0, 100, 7))
        assert sum(f for _, f in histogram.as_fractions()) == pytest.approx(1.0)


class TestTimeSeries:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeries(window_s=0)
        with pytest.raises(ValueError):
            TimeSeries(window_s=10).add(-1, 0)

    def test_window_means(self):
        series = TimeSeries(window_s=10)
        series.add(1, 1.0)
        series.add(2, 3.0)
        series.add(15, 10.0)
        means = dict(series.window_means())
        assert means[0.0] == pytest.approx(2.0)
        assert means[10.0] == pytest.approx(10.0)

    def test_cumulative_means_are_running_average(self):
        series = TimeSeries(window_s=10)
        series.add(5, 0.0)
        series.add(15, 1.0)
        series.add(25, 1.0)
        cumulative = [value for _, value in series.cumulative_means()]
        assert cumulative == pytest.approx([0.0, 0.5, 2.0 / 3.0])

    def test_overall_mean_and_count(self):
        series = TimeSeries(window_s=5)
        for i in range(10):
            series.add(i, float(i))
        assert series.total_count == 10
        assert series.overall_mean == pytest.approx(4.5)

    def test_values_after_warmup(self):
        series = TimeSeries(window_s=10)
        series.add(5, 100.0)
        series.add(25, 10.0)
        series.add(35, 20.0)
        assert series.values_after(20) == (10.0, 20.0)

    def test_empty_series(self):
        series = TimeSeries(window_s=10)
        assert series.windows() == []
        assert series.overall_mean == 0.0


class TestMetricsCollector:
    def test_hit_ratio_counts_all_hit_outcomes(self):
        collector = MetricsCollector(window_s=10)
        collector.record(make_record(0, outcome=QueryOutcome.LOCAL_OVERLAY_HIT))
        collector.record(make_record(1, outcome=QueryOutcome.REMOTE_OVERLAY_HIT))
        collector.record(make_record(2, outcome=QueryOutcome.PEER_HIT))
        collector.record(make_record(3, outcome=QueryOutcome.SERVER_MISS))
        assert collector.hit_ratio == pytest.approx(0.75)
        assert collector.num_queries == 4

    def test_transfer_distance_only_counts_hits(self):
        collector = MetricsCollector(window_s=10)
        collector.record(make_record(0, outcome=QueryOutcome.LOCAL_OVERLAY_HIT, distance=10))
        collector.record(make_record(1, outcome=QueryOutcome.SERVER_MISS, distance=500))
        assert collector.average_transfer_distance_ms == pytest.approx(10.0)

    def test_latency_includes_all_queries(self):
        collector = MetricsCollector(window_s=10)
        collector.record(make_record(0, latency=100))
        collector.record(make_record(1, outcome=QueryOutcome.SERVER_MISS, latency=500))
        assert collector.average_lookup_latency_ms == pytest.approx(300.0)

    def test_outcome_fractions(self):
        collector = MetricsCollector(window_s=10)
        collector.record_all(make_record(i) for i in range(3))
        fractions = collector.outcome_fractions()
        assert fractions[QueryOutcome.LOCAL_OVERLAY_HIT] == pytest.approx(1.0)

    def test_empty_collector_defaults(self):
        collector = MetricsCollector()
        assert collector.hit_ratio == 0.0
        assert collector.average_lookup_latency_ms == 0.0
        assert collector.average_overlay_hops == 0.0
        assert collector.outcome_fractions() == {}

    def test_redirection_failures_and_hops(self):
        collector = MetricsCollector(window_s=10)
        collector.record(make_record(0, hops=4, failures=1))
        collector.record(make_record(1, hops=2, failures=0))
        assert collector.average_overlay_hops == pytest.approx(3.0)
        assert collector.redirection_failures == 1

    def test_steady_state_helpers(self):
        collector = MetricsCollector(window_s=10)
        collector.record(make_record(0, time=5, latency=500))
        collector.record(make_record(1, time=25, latency=100))
        assert collector.steady_state_latency_ms(warmup_s=20) == pytest.approx(100.0)
        assert collector.steady_state_distance_ms(warmup_s=20) == pytest.approx(30.0)

    def test_outcome_is_hit_property(self):
        assert QueryOutcome.LOCAL_OVERLAY_HIT.is_hit
        assert QueryOutcome.REMOTE_OVERLAY_HIT.is_hit
        assert QueryOutcome.PEER_HIT.is_hit
        assert not QueryOutcome.SERVER_MISS.is_hit


class TestBandwidthAccountant:
    def test_both_endpoints_are_charged(self):
        accountant = BandwidthAccountant(window_s=10)
        accountant.record_message(1.0, "a", "b", 100, "gossip")
        assert accountant.num_peers == 2
        assert accountant.total_bytes == 200

    def test_average_bps_per_peer(self):
        accountant = BandwidthAccountant(window_s=10)
        accountant.record_message(1.0, "a", "b", 125, "gossip")  # 1000 bits each
        assert accountant.average_bps_per_peer(duration_s=10) == pytest.approx(100.0)

    def test_idle_observed_peers_dilute_the_average(self):
        accountant = BandwidthAccountant(window_s=10)
        accountant.record_message(1.0, "a", "b", 125, "gossip")
        accountant.observe_peer(0.0, "idle")
        assert accountant.average_bps_per_peer(10) == pytest.approx(200.0 / 3)

    def test_categories_are_validated_and_tracked(self):
        accountant = BandwidthAccountant(window_s=10)
        with pytest.raises(ValueError):
            accountant.record_message(0, "a", "b", 10, "video")
        with pytest.raises(ValueError):
            accountant.record_message(0, "a", "b", -1, "gossip")
        accountant.record_message(0, "a", "b", 10, "push")
        accountant.record_message(0, "a", "b", 10, "keepalive")
        assert accountant.messages_by_category() == {"push": 1, "keepalive": 1}
        assert accountant.total_bytes_by_category()["push"] == 20

    def test_bps_series_and_peak(self):
        accountant = BandwidthAccountant(window_s=10)
        accountant.record_message(5.0, "a", "b", 100, "gossip")
        accountant.record_message(15.0, "a", "b", 200, "gossip")
        series = accountant.bps_series()
        assert len(series) == 2
        assert accountant.peak_bps_per_peer(20) > 0
        with pytest.raises(ValueError):
            accountant.average_bps_per_peer(0)

    def test_empty_accountant(self):
        accountant = BandwidthAccountant()
        assert accountant.average_bps_per_peer(10) == 0.0
        assert accountant.peak_bps_per_peer(10) == 0.0


class TestReportFormatting:
    def test_format_table_alignment_and_title(self):
        text = format_table(["name", "value"], [("a", 1.5), ("bb", 2)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_handles_floats(self):
        text = format_table(["x"], [(0.123456,)])
        assert "0.123" in text

    def test_percentiles_table(self):
        text = percentiles_table("latency", [1.0, 2.0, 3.0, 4.0])
        assert "latency" in text and "p50" in text and "mean=2.5" in text

    def test_percentiles_table_empty(self):
        assert "no samples" in percentiles_table("x", [])

    def test_format_series(self):
        text = format_series("curve", [(0.0, 1.0), (10.0, 2.0)])
        assert "curve" in text
        assert "10" in text


class TestCompactMetricsCollector:
    """retain_records=False: identical aggregates, bounded memory."""

    def _fill(self, collector, count=9000):
        import random
        rng = random.Random(4)
        outcomes = list(QueryOutcome)
        for i in range(count):
            collector.record(
                make_record(
                    query_id=i,
                    time=rng.uniform(0, 7200),
                    outcome=outcomes[i % len(outcomes)],
                    latency=rng.uniform(0, 900),
                    distance=rng.uniform(0, 500),
                    hops=i % 4,
                    failures=i % 3,
                )
            )

    def test_aggregates_identical_to_retained_mode(self):
        retained = MetricsCollector(window_s=600.0)
        compact = MetricsCollector(window_s=600.0, retain_records=False)
        self._fill(retained)
        self._fill(compact)
        assert compact.num_queries == retained.num_queries
        assert compact.hit_ratio == retained.hit_ratio
        assert compact.average_lookup_latency_ms == retained.average_lookup_latency_ms
        assert compact.average_transfer_distance_ms == retained.average_transfer_distance_ms
        assert compact.average_overlay_hops == retained.average_overlay_hops
        assert compact.redirection_failures == retained.redirection_failures
        assert compact.outcome_counts() == retained.outcome_counts()
        assert compact.outcome_fractions() == retained.outcome_fractions()
        assert (
            compact.hit_ratio_series.window_means()
            == retained.hit_ratio_series.window_means()
        )
        assert (
            compact.lookup_latency_series.window_means()
            == retained.lookup_latency_series.window_means()
        )

    def test_interleaved_reads_do_not_change_aggregates(self):
        retained = MetricsCollector(window_s=600.0)
        compact = MetricsCollector(window_s=600.0, retain_records=False)
        for i in range(5000):
            record = make_record(query_id=i, time=float(i), latency=float(i % 100))
            retained.record(record)
            compact.record(record)
            if i % 777 == 0:
                compact.hit_ratio  # interleaved read forces an early fold
        assert compact.hit_ratio == retained.hit_ratio
        assert compact.num_queries == retained.num_queries

    def test_compact_buffer_stays_bounded(self):
        from repro.metrics.collectors import PENDING_FLUSH_THRESHOLD

        compact = MetricsCollector(window_s=600.0, retain_records=False)
        self._fill(compact, count=3 * PENDING_FLUSH_THRESHOLD)
        assert len(compact._records) < PENDING_FLUSH_THRESHOLD

    def test_records_unavailable_in_compact_mode(self):
        compact = MetricsCollector(retain_records=False)
        compact.record(make_record())
        with pytest.raises(RuntimeError, match="compact"):
            compact.records

    def test_retained_mode_still_exposes_records(self):
        retained = MetricsCollector()
        retained.record(make_record())
        assert retained.retains_records
        assert len(retained.records) == 1


class TestBandwidthPendingFlush:
    def test_pending_buffer_stays_bounded(self):
        from repro.metrics.collectors import PENDING_FLUSH_THRESHOLD

        accountant = BandwidthAccountant(window_s=600.0)
        for i in range(3 * PENDING_FLUSH_THRESHOLD):
            accountant.record_message(float(i % 1000), f"p{i % 7}", f"p{(i + 1) % 7}", 100, "gossip")
        assert len(accountant._pending) < PENDING_FLUSH_THRESHOLD
        assert accountant.total_bytes == 3 * PENDING_FLUSH_THRESHOLD * 200
