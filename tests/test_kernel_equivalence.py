"""Kernel/object backend equivalence.

The columnar kernel (``repro.core.columns``) must be *indistinguishable* from
the object backend in everything but speed.  Two layers of evidence:

* **end to end** — every standard-tier scenario, run on the kernel at the
  golden scale/seed, reproduces the committed golden digest byte for byte
  (the object backend is pinned to the same files by
  ``test_scenarios_golden.py``, so backend equality follows transitively);
* **per structure** — property tests drive the columnar view, the packed
  Bloom summaries and the kernel directory peer through random operation
  sequences in lockstep with their object counterparts and require equal
  observable state at every step.
"""

import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columns import (
    SUMMARY_NUM_HASHES,
    ColumnarView,
    KernelContentPeer,
    KernelDirectoryPeer,
)
from repro.core.config import FlowerConfig
from repro.core.content_peer import ContentPeer, PushMessage
from repro.core.directory_peer import DirectoryPeer
from repro.datastructures.aged_view import AgedEntry, AgedView
from repro.datastructures.bloom import BloomFilter, mask_for
from repro.scenarios import golden
from repro.scenarios.library import scenario_names
from repro.session import Session

GOLDEN_DIR = Path(__file__).parent / "goldens"


# -- end to end: every standard scenario, byte-identical ----------------------


@pytest.mark.parametrize("name", sorted(scenario_names(tier="standard")))
def test_kernel_reproduces_committed_golden_exactly(name):
    committed = golden.load_golden(name, GOLDEN_DIR)
    fresh = golden.compute_golden_digest(name, kernel=True)
    assert fresh == committed, (
        f"kernel backend diverged from the committed golden for {name!r}; "
        "the two backends must be digest-identical"
    )


def test_session_kernel_flag_round_trips():
    session = Session.from_name("paper-default", kernel=True)
    assert session.kernel is True
    assert session.setup.kernel is True
    _, system = session.build_flower()
    assert system.kernel is True
    assert isinstance(next(iter(system._directory_peers.values())), KernelDirectoryPeer)


def test_object_backend_remains_the_default():
    session = Session.from_name("paper-default")
    assert session.kernel is False
    _, system = session.build_flower()
    assert system.kernel is False
    directory = next(iter(system._directory_peers.values()))
    assert not isinstance(directory, KernelDirectoryPeer)


# -- property: columnar view vs aged view -------------------------------------

contacts = st.sampled_from([f"p{i}" for i in range(16)])
view_ops = st.lists(
    st.one_of(
        st.tuples(st.just("merge"), st.lists(st.tuples(contacts, st.integers(0, 12)), max_size=8)),
        st.tuples(st.just("put"), contacts),
        st.tuples(st.just("age"), st.none()),
        st.tuples(st.just("remove"), contacts),
    ),
    max_size=40,
)


def _payload(num_bits, seed):
    bloom = BloomFilter(num_bits, SUMMARY_NUM_HASHES)
    bloom.add(f"obj-{seed}")
    return bloom


def _view_state(view):
    return [(e.contact, e.age, None if e.payload is None else e.payload._bits)
            for e in view.entries()]


@settings(max_examples=60, deadline=None)
@given(view_ops, st.integers(1, 8), st.integers(0, 2**31))
def test_columnar_view_mirrors_aged_view(ops, capacity, seed):
    num_bits = 64
    aged = AgedView(capacity=capacity)
    cols = ColumnarView(capacity=capacity, num_bits=num_bits, num_hashes=SUMMARY_NUM_HASHES)
    for op, arg in ops:
        if op == "merge":
            entries = [
                AgedEntry(contact=c, age=a, payload=_payload(num_bits, a))
                for c, a in arg
            ]
            aged.merge(entries, self_contact="self")
            cols.merge_columns(
                [(c, a, _payload(num_bits, a)._bits) for c, a in arg],
                self_contact="self",
            )
        elif op == "put":
            bloom = _payload(num_bits, 99)
            aged.put(AgedEntry(contact=arg, age=0, payload=bloom))
            cols.put_fresh(arg, bloom._bits)
        elif op == "age":
            aged.increment_ages()
            cols.increment_ages()
        elif op == "remove":
            assert aged.remove(arg) == cols.remove(arg)
        assert _view_state(aged) == _view_state(cols)
        oldest = aged.select_oldest()
        assert (oldest.contact if oldest else None) == cols.select_oldest()


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(contacts, st.integers(0, 12)), min_size=0, max_size=20),
    st.integers(1, 10),
    st.integers(0, 2**31),
)
def test_columnar_subset_sampling_is_draw_identical(pairs, size, seed):
    num_bits = 64
    aged = AgedView(capacity=30)
    for c, a in pairs:
        bloom = _payload(num_bits, a)
        aged.put(AgedEntry(contact=c, age=a, payload=bloom))
    cols = ColumnarView(capacity=30, num_bits=num_bits, num_hashes=SUMMARY_NUM_HASHES)
    cols.merge_columns(
        [(e.contact, e.age, None if e.payload is None else e.payload._bits)
         for e in aged.entries()]
    )
    rng_a = random.Random(seed)
    rng_b = random.Random(seed)
    subset_aged = aged.select_subset(size, rng=rng_a)
    subset_cols = cols.select_subset_columns(size, rng=rng_b)
    assert [(e.contact, e.age) for e in subset_aged] == [
        (c, a) for c, a, _ in subset_cols
    ]
    assert rng_a.getstate() == rng_b.getstate()


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(contacts, st.integers(0, 12)), max_size=20),
       st.text(min_size=1, max_size=12))
def test_columnar_probe_matches_entries_maybe_containing(pairs, item):
    from repro.datastructures.bloom import entries_maybe_containing
    from operator import attrgetter

    num_bits = 64
    aged = AgedView(capacity=30)
    cols = ColumnarView(capacity=30, num_bits=num_bits, num_hashes=SUMMARY_NUM_HASHES)
    for index, (c, a) in enumerate(pairs):
        bloom = BloomFilter(num_bits, SUMMARY_NUM_HASHES)
        bloom.add(f"obj-{index}")
        if index % 3 == 0:
            bloom.add(item)  # some summaries genuinely contain the probe item
        aged.put(AgedEntry(contact=c, age=a, payload=bloom))
    cols.merge_columns(
        [(e.contact, e.age, e.payload._bits) for e in aged.entries()]
    )
    expected = entries_maybe_containing(aged, item)
    expected.sort(key=attrgetter("age", "contact"))
    assert [e.contact for e in expected] == cols.probe(
        mask_for(num_bits, SUMMARY_NUM_HASHES, item)
    )


# -- property: packed summaries vs Bloom filters ------------------------------


def _content_config():
    return FlowerConfig()


object_lists = st.lists(st.integers(0, 40), min_size=0, max_size=60)


@settings(max_examples=40, deadline=None)
@given(object_lists, object_lists)
def test_packed_summary_tracks_bloom_filter(stored, dropped):
    config = _content_config()
    kernel = KernelContentPeer(
        peer_id="c(k)@1", host_id=1, website="w", locality=0, config=config
    )
    plain = ContentPeer(
        peer_id="c(o)@1", host_id=1, website="w", locality=0, config=config
    )
    for rank in stored:
        object_id = f"http://site-000.example.org/object/{rank}"
        kernel.store_object(object_id)
        plain.store_object(object_id)
    for rank in dropped:
        object_id = f"http://site-000.example.org/object/{rank}"
        kernel.drop_object(object_id)
        plain.drop_object(object_id)
    assert kernel.summary_bits() == plain.content_summary()._bits
    assert kernel.content_summary() == plain.content_summary()
    rebuilt = BloomFilter.from_items(plain.objects, num_bits=config.summary_bits)
    assert kernel.summary_bits() == rebuilt._bits


@settings(max_examples=30, deadline=None)
@given(object_lists)
def test_packed_summary_incremental_add_is_bit_identical(stored):
    config = _content_config()
    peer = KernelContentPeer(
        peer_id="c(k)@1", host_id=1, website="w", locality=0, config=config
    )
    for rank in stored:
        peer.store_object(f"http://site-000.example.org/object/{rank}")
        # the incrementally maintained mask must equal a fresh rebuild at
        # every step, not just at the end
        fresh = 0
        for object_id in peer.objects:
            fresh |= mask_for(config.summary_bits, SUMMARY_NUM_HASHES, object_id)
        assert peer.summary_bits() == fresh


# -- property: kernel directory peer vs object directory peer -----------------

peer_ids = st.sampled_from([f"c{i}" for i in range(12)])
dir_ops = st.lists(
    st.one_of(
        st.tuples(st.just("register"), peer_ids, st.integers(0, 20)),
        st.tuples(st.just("push"), peer_ids, st.lists(st.integers(0, 20), max_size=5)),
        st.tuples(st.just("keepalive"), peer_ids, st.none()),
        st.tuples(st.just("age"), st.none(), st.none()),
        st.tuples(st.just("evict"), st.none(), st.none()),
        st.tuples(st.just("remove"), peer_ids, st.none()),
    ),
    max_size=50,
)


def _dir_state(directory):
    return {
        peer_id: (entry.age, sorted(entry.objects))
        for peer_id, entry in directory.export_state().items()
    }


@settings(max_examples=60, deadline=None)
@given(dir_ops)
def test_kernel_directory_mirrors_object_directory(ops):
    config = FlowerConfig()
    kwargs = dict(host_id=1, website="w", locality=0, node_id=0, config=config)
    plain = DirectoryPeer(peer_id="d(o)", **kwargs)
    kernel = KernelDirectoryPeer(peer_id="d(k)", **kwargs)
    for op, who, what in ops:
        if op == "register":
            object_id = f"http://site-000.example.org/object/{what}"
            assert plain.register_client(who, object_id) == kernel.register_client(
                who, object_id
            )
        elif op == "push":
            push_args = dict(
                added=tuple(f"http://site-000.example.org/object/{r}" for r in what),
                removed=(),
            )
            plain.handle_push(PushMessage(sender=who, **push_args))
            kernel.handle_push(PushMessage(sender=who, **push_args))
        elif op == "keepalive":
            plain.handle_keepalive(who)
            kernel.handle_keepalive(who)
        elif op == "age":
            plain.increment_ages()
            kernel.increment_ages()
        elif op == "evict":
            assert plain.evict_dead_entries() == kernel.evict_dead_entries()
        elif op == "remove":
            assert plain.remove_client(who) == kernel.remove_client(who)
        assert _dir_state(plain) == _dir_state(kernel)
        assert plain.indexed_objects() == kernel.indexed_objects()
        for rank in range(5):
            object_id = f"http://site-000.example.org/object/{rank}"
            assert plain.lookup_index(object_id) == kernel.lookup_index(object_id)
        assert plain.should_refresh_summary() == kernel.should_refresh_summary()
        assert plain.build_summary() == kernel.build_summary()


def test_kernel_directory_state_transfer_round_trip():
    config = FlowerConfig()
    kwargs = dict(host_id=1, website="w", locality=0, node_id=0, config=config)
    source = KernelDirectoryPeer(peer_id="d(a)", **kwargs)
    source.register_client("c1", "http://site-000.example.org/object/1")
    source.increment_ages()
    source.register_client("c2", "http://site-000.example.org/object/2")
    source.increment_ages()
    target = KernelDirectoryPeer(peer_id="d(b)", **kwargs)
    target.import_state(source.export_state())
    assert _dir_state(target) == _dir_state(source)
    target.increment_ages()
    assert target.entry("c1").age == 3
    assert target.entry("c2").age == 2
    assert target.lookup_index("http://site-000.example.org/object/1") == ["c1"]
