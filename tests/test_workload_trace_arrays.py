"""Array-backed trace generation: bit-identity with the object path.

The paper-scale fast path (``generate_trace`` / ``assign_trace`` /
``ResolvedTraceArrays.dispatcher``) must be a pure representation change:
same queries, same hosts, same random-stream states — the committed golden
digests depend on it.
"""

import pytest

from repro.network.topology import Topology, TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.assignment import ClientAssigner
from repro.workload.generator import QueryGenerator, WorkloadConfig


def _config(**overrides):
    defaults = dict(
        num_websites=12,
        active_websites=3,
        objects_per_website=40,
        num_localities=3,
        query_rate_per_s=3.0,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def _generators(config, seed=17):
    return (
        QueryGenerator(config, RandomStreams(seed)),
        QueryGenerator(config, RandomStreams(seed)),
    )


STREAMS = (
    "workload:arrival",
    "workload:website",
    "workload:zipf",
    "workload:locality",
    "workload:originator",
)


class TestGenerateTrace:
    def test_queries_identical_to_object_path(self):
        object_gen, array_gen = _generators(_config())
        expected = list(object_gen.generate(1200.0))
        trace = array_gen.generate_trace(1200.0)
        assert len(trace) == len(expected)
        assert list(trace.iter_queries()) == expected

    def test_stream_states_identical_after_generation(self):
        object_gen, array_gen = _generators(_config())
        list(object_gen.generate(600.0))
        array_gen.generate_trace(600.0)
        assert object_gen.queries_generated == array_gen.queries_generated
        for name in STREAMS:
            assert (
                object_gen._streams.stream(name).random()
                == array_gen._streams.stream(name).random()
            ), name

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(arrival_process="uniform"),
            dict(locality_weights=(5.0, 2.0, 1.0)),
            dict(zipf_alpha=0.0),
            dict(new_client_bias=1.0),
        ],
    )
    def test_variants_identical(self, overrides):
        config = _config(**overrides)
        object_gen, array_gen = _generators(config, seed=23)
        expected = list(object_gen.generate(600.0))
        trace = array_gen.generate_trace(600.0)
        assert list(trace.iter_queries()) == expected

    def test_start_time_offset(self):
        object_gen, array_gen = _generators(_config())
        expected = list(object_gen.generate(300.0, start_time=100.0))
        trace = array_gen.generate_trace(300.0, start_time=100.0)
        assert list(trace.iter_queries()) == expected

    def test_invalid_duration_rejected(self):
        _, array_gen = _generators(_config())
        with pytest.raises(ValueError):
            array_gen.generate_trace(0.0)

    def test_columns_are_compact(self):
        _, array_gen = _generators(_config())
        trace = array_gen.generate_trace(1200.0)
        # A handful of bytes per query, not hundreds.
        assert trace.nbytes / len(trace) < 32


class TestAssignTrace:
    @pytest.fixture()
    def topology(self):
        return Topology(TopologyConfig(num_hosts=240, num_localities=3), RandomStreams(5))

    def _assigners(self, topology, seed=29):
        kwargs = dict(max_clients_per_overlay=15, reserved_hosts={0, 1, 2})
        return (
            ClientAssigner(topology, RandomStreams(seed), **kwargs),
            ClientAssigner(topology, RandomStreams(seed), **kwargs),
        )

    def test_resolved_identical_to_object_path(self, topology):
        object_gen, array_gen = _generators(_config())
        object_assigner, array_assigner = self._assigners(topology)
        expected = object_assigner.assign_all(object_gen.generate(1800.0))
        resolved = array_assigner.assign_trace(array_gen.generate_trace(1800.0))
        assert len(resolved) == len(expected)
        assert list(resolved.iter_queries()) == expected

    def test_dispatcher_replays_in_order(self, topology):
        _, array_gen = _generators(_config())
        _, array_assigner = self._assigners(topology)
        resolved = array_assigner.assign_trace(array_gen.generate_trace(900.0))
        seen = []
        fire = resolved.dispatcher(seen.append)
        sim = Simulator(seed=1)
        sim.schedule_trace(resolved.times, fire, chunk_size=64)
        sim.run()
        assert seen == list(resolved.iter_queries())

    def test_overlay_capacity_respected(self, topology):
        _, array_gen = _generators(_config())
        _, array_assigner = self._assigners(topology)
        resolved = array_assigner.assign_trace(array_gen.generate_trace(3600.0))
        for website, locality in {
            (resolved.websites[resolved.website_index[i]].name, resolved.locality[i])
            for i in range(len(resolved))
        }:
            assert array_assigner.num_clients(website, locality) <= 15
