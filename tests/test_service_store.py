"""Unit tests for the on-disk content-addressed run store.

Covers the durability invariants :mod:`repro.service.store` promises:
atomic publication (tmp + rename), crash recovery on open (stale staging
cleanup, dropped dangling index entries, orphan-bundle adoption) and LRU
eviction under a byte budget.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.service.store import RunStore, request_digest

DOCS = {"digest.json": '{"a": 1}\n', "result.json": '{"b": 2}\n'}


def digest_of(tag: str) -> str:
    return request_digest({"tag": tag})


@pytest.fixture
def store(tmp_path: Path) -> RunStore:
    return RunStore(tmp_path / "store")


class TestRequestDigest:
    def test_is_canonical_sha256_hex(self) -> None:
        digest = request_digest({"kind": "scenario", "seed": 42})
        assert len(digest) == 64
        assert all(character in "0123456789abcdef" for character in digest)

    def test_key_order_does_not_matter(self) -> None:
        assert request_digest({"a": 1, "b": 2}) == request_digest({"b": 2, "a": 1})

    def test_distinct_payloads_distinct_digests(self) -> None:
        assert request_digest({"seed": 1}) != request_digest({"seed": 2})

    def test_matches_sweep_engine_scheme(self) -> None:
        # The store must address with the exact canonical-JSON + sha256
        # scheme the sweep engine uses for per-cell digests.
        import hashlib

        payload = {"kind": "scenario", "seed": 7, "scale": 0.25}
        blob = json.dumps(payload, sort_keys=True)
        assert request_digest(payload) == hashlib.sha256(
            blob.encode("utf-8")
        ).hexdigest()


class TestPutGet:
    def test_roundtrip(self, store: RunStore) -> None:
        digest = digest_of("run-1")
        entry = store.put(digest, DOCS, kind="scenario", meta={"label": "x"})
        assert entry.digest == digest
        assert entry.bytes == sum(len(text) for text in DOCS.values())
        assert digest in store
        assert len(store) == 1
        assert store.read_document(digest, "digest.json") == DOCS["digest.json"]

    def test_put_is_idempotent(self, store: RunStore) -> None:
        digest = digest_of("run-1")
        first = store.put(digest, DOCS)
        second = store.put(digest, {"digest.json": "different\n"})
        assert second is first
        assert store.read_document(digest, "digest.json") == DOCS["digest.json"]

    def test_rejects_non_digest_keys(self, store: RunStore) -> None:
        with pytest.raises(ValueError):
            store.put("not-a-digest", DOCS)
        with pytest.raises(ValueError):
            store.put("A" * 64, DOCS)  # uppercase: not canonical hex

    def test_rejects_empty_bundles_and_bad_filenames(self, store: RunStore) -> None:
        with pytest.raises(ValueError):
            store.put(digest_of("x"), {})
        with pytest.raises(ValueError):
            store.put(digest_of("x"), {"../escape": "nope"})

    def test_read_document_rejects_traversal(self, store: RunStore) -> None:
        digest = digest_of("run-1")
        store.put(digest, DOCS)
        for name in ("../index.json", "..\\index.json", ".hidden"):
            with pytest.raises(KeyError):
                store.read_document(digest, name)

    def test_read_unknown_digest_raises(self, store: RunStore) -> None:
        with pytest.raises(KeyError):
            store.read_document(digest_of("missing"), "digest.json")

    def test_remove(self, store: RunStore) -> None:
        digest = digest_of("run-1")
        store.put(digest, DOCS)
        assert store.remove(digest)
        assert digest not in store
        assert not store.remove(digest)
        assert not store.run_dir(digest).exists()


class TestAtomicity:
    def test_no_staging_residue_after_put(self, store: RunStore) -> None:
        store.put(digest_of("run-1"), DOCS)
        assert list((store.root / "tmp").iterdir()) == []

    def test_bundle_published_as_one_directory(self, store: RunStore) -> None:
        digest = digest_of("run-1")
        store.put(digest, DOCS)
        assert sorted(
            path.name for path in store.run_dir(digest).iterdir()
        ) == sorted(DOCS)

    def test_index_survives_put(self, store: RunStore) -> None:
        store.put(digest_of("run-1"), DOCS)
        document = json.loads((store.root / "index.json").read_text())
        assert digest_of("run-1") in document["entries"]


class TestCrashRecovery:
    def test_stale_staging_is_cleaned_on_open(self, tmp_path: Path) -> None:
        root = tmp_path / "store"
        store = RunStore(root)
        store.put(digest_of("run-1"), DOCS)
        # Simulate a crash mid-publication: a staged bundle under tmp/.
        staging = root / "tmp" / f"put-{digest_of('half')}"
        staging.mkdir(parents=True)
        (staging / "digest.json").write_text("partial")
        reopened = RunStore(root)
        assert list((root / "tmp").iterdir()) == []
        assert digest_of("run-1") in reopened
        assert digest_of("half") not in reopened

    def test_dangling_index_entry_is_dropped(self, tmp_path: Path) -> None:
        root = tmp_path / "store"
        store = RunStore(root)
        store.put(digest_of("run-1"), DOCS)
        store.put(digest_of("run-2"), DOCS)
        # Simulate a crash between bundle deletion and index rewrite.
        shutil.rmtree(store.run_dir(digest_of("run-1")))
        reopened = RunStore(root)
        assert digest_of("run-1") not in reopened
        assert digest_of("run-2") in reopened
        assert len(reopened) == 1

    def test_orphan_bundle_is_adopted(self, tmp_path: Path) -> None:
        root = tmp_path / "store"
        store = RunStore(root)
        store.put(digest_of("run-1"), DOCS)
        # Simulate a crash between bundle publication and index rewrite.
        orphan = digest_of("orphan")
        orphan_dir = root / "runs" / orphan
        orphan_dir.mkdir()
        (orphan_dir / "digest.json").write_text(DOCS["digest.json"])
        reopened = RunStore(root)
        assert orphan in reopened
        assert reopened.read_document(orphan, "digest.json") == DOCS["digest.json"]

    def test_corrupt_index_is_rebuilt_from_bundles(self, tmp_path: Path) -> None:
        root = tmp_path / "store"
        store = RunStore(root)
        store.put(digest_of("run-1"), DOCS)
        (root / "index.json").write_text("{ not json")
        reopened = RunStore(root)
        assert digest_of("run-1") in reopened
        assert reopened.read_document(
            digest_of("run-1"), "digest.json"
        ) == DOCS["digest.json"]


class TestEviction:
    def bundle(self, size: int) -> dict:
        return {"digest.json": "x" * size}

    def test_lru_eviction_under_byte_budget(self, tmp_path: Path) -> None:
        store = RunStore(tmp_path / "store", max_bytes=250)
        for tag in ("a", "b", "c"):
            store.put(digest_of(tag), self.bundle(100))
        assert len(store) == 2
        assert store.evictions == 1
        assert digest_of("a") not in store  # oldest goes first
        assert digest_of("c") in store
        assert store.total_bytes() <= 250

    def test_get_refreshes_lru_position(self, tmp_path: Path) -> None:
        store = RunStore(tmp_path / "store", max_bytes=250)
        store.put(digest_of("a"), self.bundle(100))
        store.put(digest_of("b"), self.bundle(100))
        assert store.get(digest_of("a")) is not None  # touch: b is now LRU
        store.put(digest_of("c"), self.bundle(100))
        assert digest_of("a") in store
        assert digest_of("b") not in store

    def test_never_evicts_the_bundle_being_published(self, tmp_path: Path) -> None:
        store = RunStore(tmp_path / "store", max_bytes=50)
        store.put(digest_of("big"), self.bundle(100))
        assert digest_of("big") in store  # over budget, but never self-evicted
        store.put(digest_of("next"), self.bundle(100))
        assert digest_of("big") not in store
        assert digest_of("next") in store

    def test_eviction_removes_bundle_directories(self, tmp_path: Path) -> None:
        store = RunStore(tmp_path / "store", max_bytes=150)
        store.put(digest_of("a"), self.bundle(100))
        store.put(digest_of("b"), self.bundle(100))
        assert not store.run_dir(digest_of("a")).exists()

    def test_lru_order_survives_reopen(self, tmp_path: Path) -> None:
        root = tmp_path / "store"
        store = RunStore(root, max_bytes=None)
        for tag in ("a", "b", "c"):
            store.put(digest_of(tag), self.bundle(10))
        store.get(digest_of("a"))
        reopened = RunStore(root, max_bytes=None)
        assert reopened.digests() == [digest_of("b"), digest_of("c"), digest_of("a")]

    def test_invalid_max_bytes_rejected(self, tmp_path: Path) -> None:
        with pytest.raises(ValueError):
            RunStore(tmp_path / "store", max_bytes=0)
