"""Fixture: DET006 violations (mutable default arguments)."""


def extend(items, seen=[]):  # expect: DET006
    seen.extend(items)
    return seen


def index(rows, table=dict()):  # expect: DET006
    return table


def tag(values, *, marks={1}):  # expect: DET006
    return marks
