"""Fixture: DET004 violation silenced by an inline suppression."""


def seed_streams(streams, websites):
    return streams.stream(f"gossip:{set(websites)}")  # repro: allow(DET004)
