"""Fixture: DET001-clean (seeded, injected Random instances only)."""
import random
from random import Random


def make(seed: int) -> random.Random:
    return random.Random(seed)


def make_from_class(seed: int) -> Random:
    return Random(seed)


def draw(rng: random.Random) -> float:
    return rng.random()
