"""Fixture: DET003 violation silenced by a standalone comment above."""


def merge(ids: set) -> list:
    # repro: allow(DET003)
    return [peer for peer in ids]
