"""Fixture: wall-clock reads are allowed inside the perf package.

This file is analyzed under a virtual ``src/repro/perf/...`` path.
"""
import time


def measure() -> float:
    return time.perf_counter()
