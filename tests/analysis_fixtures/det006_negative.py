"""Fixture: DET006-clean (None defaults, immutable defaults)."""


def extend(items, seen=None):
    seen = list(seen or [])
    seen.extend(items)
    return seen


def window(size: int = 10, label: str = "w", bounds: tuple = ()) -> str:
    return f"{label}:{size}:{bounds}"
