"""Fixture: DET002 violation silenced by a standalone comment above."""
import time


def wall_stats() -> float:
    # repro: allow(DET002)
    started = time.perf_counter()
    return started
