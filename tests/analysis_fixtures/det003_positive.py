"""Fixture: DET003 violations (unordered iteration on draw/merge paths)."""


def merge(ids: set) -> list:
    result = []
    for peer in ids:  # expect: DET003
        result.append(peer)
    members = {1, 2, 3}
    ordered = [x for x in members]  # expect: DET003
    listed = list({"a", "b"} | {"c"})  # expect: DET003
    keys = [k for k in {"k": 1}.keys()]  # expect: DET003
    return result + ordered + listed + keys
