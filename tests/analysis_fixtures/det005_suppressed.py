"""Fixture: DET005 violation silenced by an inline suppression."""


class LegacyView:  # repro: allow(DET005)
    def __init__(self, contact: str) -> None:
        self.contact = contact
