"""Fixture: malformed / unknown / unused suppressions are findings."""
import random


def draw() -> float:
    return random.random()  # repro: allow()


def other() -> int:
    return 1  # repro: allow(NOTARULE)


def unknown() -> int:
    return 2  # repro: allow(DET999)


def unused() -> int:
    return 3  # repro: allow(DET001)
