"""Fixture: DET005-clean (slotted value class; non-value classes skipped)."""


class SlottedView:
    __slots__ = ("contact", "age")

    def __init__(self, contact: str, age: int) -> None:
        self.contact = contact
        self.age = age


class Stateful:
    """Not a simple value class: __init__ does work beyond assignment."""

    def __init__(self, registry: dict) -> None:
        self.registry = dict(registry)
        self._rebuild()

    def _rebuild(self) -> None:
        pass


class Derived(SlottedView):
    """Classes with bases are skipped (base layout may require __dict__)."""

    def __init__(self, contact: str) -> None:
        super().__init__(contact, 0)
