"""Fixture: DET006 violation silenced by an inline suppression."""


def memo(key, cache={}):  # repro: allow(DET006)
    return cache.setdefault(key, key)
