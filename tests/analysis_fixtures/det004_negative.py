"""Fixture: DET004-clean (literal or ordered-field stream names)."""
from repro.sim.rng import derive_seed


def seed_streams(streams, website: str, locality: int):
    streams.stream("gossip:global")
    streams.stream(f"gossip:{website}:{locality}")
    streams.randint(f"churn:{website}", 0, 10)
    return derive_seed(42, f"bootstrap:{website}")
