"""Fixture: DET001 violation silenced by an inline suppression."""
import random


def entropy() -> float:
    return random.random()  # repro: allow(DET001)
