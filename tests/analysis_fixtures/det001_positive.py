"""Fixture: DET001 violations (module-level random, unseeded Random)."""
import random
from random import choice  # expect: DET001


def draw() -> float:
    return random.random()  # expect: DET001


def pick(items):
    return choice(items)


def make_rng():
    return random.Random()  # expect: DET001


def shuffle_in_place(items):
    random.shuffle(items)  # expect: DET001
