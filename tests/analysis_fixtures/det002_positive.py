"""Fixture: DET002 violations (wall-clock reads outside repro.perf)."""
import datetime
import time
from datetime import datetime as dt
from time import monotonic


def stamp() -> float:
    return time.time()  # expect: DET002


def mono() -> float:
    return monotonic()  # expect: DET002


def now():
    return datetime.datetime.now()  # expect: DET002


def utc():
    return dt.utcnow()  # expect: DET002
