"""Fixture: DET004 violations (unstable RNG stream names)."""
from repro.sim.rng import derive_seed


def seed_streams(streams, websites):
    streams.stream(f"gossip:{set(websites)}")  # expect: DET004
    streams.uniform(f"w:{ {1, 2} }", 0.0, 1.0)  # expect: DET004
    return derive_seed(42, f"s:{hash('x')}")  # expect: DET004
