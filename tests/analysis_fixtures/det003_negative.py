"""Fixture: DET003-clean (sorted wraps, ordered structures, reductions)."""


def merge(ids: set) -> list:
    ordered = [peer for peer in sorted(ids)]
    table = {"a": 1, "b": 2}
    rows = [key for key in table]
    total = len(ids)
    present = "a" in ids
    return ordered + rows + [total, present]


def reuse_of_name_outside_scope(ids: list) -> list:
    # `ids` is a set in `merge` above but a list here; per-scope inference
    # must not leak between functions.
    return [peer for peer in ids]
