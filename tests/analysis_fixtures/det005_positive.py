"""Fixture: DET005 violation (hot-path value class without __slots__)."""


class PeerView:  # expect: DET005
    """A value class whose __init__ only assigns fields."""

    def __init__(self, contact: str, age: int) -> None:
        if age < 0:
            raise ValueError("age must be non-negative")
        self.contact = contact
        self.age = age
