"""Unit tests for the synthetic latency topology."""

import pytest

from repro.network.topology import Topology, TopologyConfig
from repro.sim.rng import RandomStreams


@pytest.fixture
def topology() -> Topology:
    config = TopologyConfig(num_hosts=300, num_localities=4, intra_locality_spread_ms=20.0)
    return Topology(config, RandomStreams(5))


class TestTopologyConfig:
    def test_rejects_invalid_host_count(self):
        with pytest.raises(ValueError):
            TopologyConfig(num_hosts=0)

    def test_rejects_invalid_latency_bounds(self):
        with pytest.raises(ValueError):
            TopologyConfig(min_latency_ms=100.0, max_latency_ms=50.0)
        with pytest.raises(ValueError):
            TopologyConfig(min_latency_ms=0.0)

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            TopologyConfig(num_localities=3, locality_weights=(0.5, 0.5))

    def test_default_weights_are_normalised_and_skewed(self):
        config = TopologyConfig(num_localities=4)
        weights = config.effective_weights()
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] > weights[-1]

    def test_explicit_weights_are_normalised(self):
        config = TopologyConfig(num_localities=2, locality_weights=(3.0, 1.0))
        assert config.effective_weights() == pytest.approx((0.75, 0.25))


class TestTopologyStructure:
    def test_every_host_gets_a_locality(self, topology: Topology):
        assert topology.num_hosts == 300
        for host in topology.hosts():
            assert 0 <= host.locality < topology.num_localities

    def test_locality_populations_cover_all_hosts(self, topology: Topology):
        populations = topology.locality_populations()
        assert sum(populations.values()) == topology.num_hosts
        assert set(populations) == set(range(topology.num_localities))

    def test_populations_are_non_uniform_by_default(self, topology: Topology):
        populations = topology.locality_populations()
        assert max(populations.values()) > min(populations.values())

    def test_hosts_in_locality_consistent_with_locality_of(self, topology: Topology):
        for locality in range(topology.num_localities):
            for host_id in topology.hosts_in_locality(locality):
                assert topology.locality_of(host_id) == locality

    def test_landmark_hosts_one_per_populated_locality(self, topology: Topology):
        landmarks = topology.landmark_hosts()
        assert len(landmarks) == topology.num_localities
        assert len({topology.locality_of(l) for l in landmarks}) == topology.num_localities

    def test_same_seed_reproduces_topology(self):
        config = TopologyConfig(num_hosts=100, num_localities=3)
        a = Topology(config, RandomStreams(9))
        b = Topology(config, RandomStreams(9))
        assert [h.locality for h in a.hosts()] == [h.locality for h in b.hosts()]
        assert a.latency_ms(3, 77) == b.latency_ms(3, 77)


class TestLatencies:
    def test_latency_is_zero_to_self(self, topology: Topology):
        assert topology.latency_ms(5, 5) == 0.0

    def test_latency_is_symmetric(self, topology: Topology):
        for a, b in [(0, 10), (3, 250), (100, 299)]:
            assert topology.latency_ms(a, b) == pytest.approx(topology.latency_ms(b, a))

    def test_latency_within_configured_bounds(self, topology: Topology):
        config = topology.config
        for a in range(0, 300, 37):
            for b in range(1, 300, 41):
                if a == b:
                    continue
                latency = topology.latency_ms(a, b)
                assert config.min_latency_ms <= latency <= config.max_latency_ms

    def test_intra_locality_latency_lower_than_inter(self, topology: Topology):
        intra = topology.average_intra_locality_latency(0)
        hosts_0 = topology.hosts_in_locality(0)
        hosts_2 = topology.hosts_in_locality(2)
        inter = sum(
            topology.latency_ms(a, b) for a, b in zip(hosts_0[:50], hosts_2[:50])
        ) / min(50, len(hosts_0), len(hosts_2))
        assert intra < inter

    def test_latency_is_deterministic_for_a_pair(self, topology: Topology):
        assert topology.latency_ms(10, 20) == topology.latency_ms(10, 20)

    def test_average_intra_latency_of_singleton_locality_is_zero(self):
        config = TopologyConfig(num_hosts=1, num_localities=1)
        topo = Topology(config, RandomStreams(1))
        assert topo.average_intra_locality_latency(0) == 0.0
