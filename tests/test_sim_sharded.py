"""Determinism tests for the space-parallel shard engine.

The shard engine's contract is exact: a sharded run must reproduce the
single-process run *byte for byte* at full precision — metrics, phases and
every series point — independent of the shard count, the worker-pool size
and the protocol backend.  These tests pin that contract, plus the shard
planning, the conservative window barriers and the RNG stream scoping the
contract rests on.
"""

from dataclasses import replace

import pytest

from repro.core.sharding import (
    MAX_WINDOWS,
    ShardMessage,
    conservative_lookahead_s,
    merge_messages,
    plan_shards,
    queryable_websites,
    validate_shardable,
    window_boundaries,
)
from repro.scenarios.library import get_scenario
from repro.scenarios.runner import run_scenario
from repro.session import Session
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.sharded import run_sharded_flower

SEED = 42


def _result_dict(name, scale, **kwargs):
    spec = get_scenario(name).scaled(scale)
    return run_scenario(spec, seed=SEED, **kwargs).to_dict()


class TestShardCountIndependence:
    """A sharded run equals the single-process run at full precision."""

    def test_shard_counts_reproduce_single_process(self):
        baseline = _result_dict("paper-default", 0.25)
        for shards in (2, 4):
            assert _result_dict("paper-default", 0.25, shards=shards) == baseline

    def test_more_shards_than_websites_reproduces_single_process(self):
        # paper-default at scale 0.25 has 5 websites; 7 shards leave at
        # least two shard engines with no websites at all.
        spec = get_scenario("paper-default").scaled(0.25)
        assert spec.num_websites < 7
        baseline = _result_dict("paper-default", 0.25)
        assert _result_dict("paper-default", 0.25, shards=7) == baseline

    def test_pooled_workers_match_inline(self):
        spec = get_scenario("paper-default").scaled(0.1)
        inline = run_scenario(spec, seed=SEED, shards=2, shard_jobs=1).to_dict()
        pooled = run_scenario(spec, seed=SEED, shards=2, shard_jobs=2).to_dict()
        assert pooled == inline

    def test_kernel_backend_sharded_matches_kernel_single_process(self):
        baseline = _result_dict("paper-default", 0.25, kernel=True)
        sharded = _result_dict("paper-default", 0.25, kernel=True, shards=2)
        assert sharded == baseline

    def test_session_records_shard_stats(self):
        spec = get_scenario("paper-default").scaled(0.1)
        session = Session(spec, seed=SEED, shards=2, shard_jobs=1)
        run = session.run_system("flower")
        stats = session.last_shard_stats
        assert stats is not None
        assert stats.num_shards == 2
        assert stats.total_events == run.events_fired
        assert stats.num_windows == len(
            window_boundaries(spec.duration_s, conservative_lookahead_s(spec))
        )
        assert sum(stats.queries_per_shard) == run.num_queries
        assert stats.critical_path_s == max(stats.dispatch_s_per_shard)


class TestResilienceComposition:
    """PR 7's partition-aware reachability composes with sharding."""

    def test_locality_partition_sharded_matches_incl_resilience(self):
        baseline = _result_dict("locality-partition", 0.25)
        assert _result_dict("locality-partition", 0.25, shards=2) == baseline

    def test_sharded_run_emits_the_resilience_block(self):
        spec = get_scenario("locality-partition").scaled(0.25)
        session = Session(spec, seed=SEED, shards=2, shard_jobs=1)
        run = session.run_system("flower")
        assert run.resilience is not None

    def test_reconcile_on_heal_sharded_matches(self):
        # partition-heal-reconcile republishes *every* alive directory's
        # summary at the heal — the scenario that forces shard ownership to
        # cover the whole catalogue, not just the queryable websites.
        baseline = _result_dict("partition-heal-reconcile", 0.25)
        assert _result_dict("partition-heal-reconcile", 0.25, shards=2) == baseline


class TestRngStreamScoping:
    """Website/overlay-scoped streams are what make shards independent."""

    def test_identically_named_streams_agree_across_processes(self):
        first = RandomStreams(master_seed=SEED)
        second = RandomStreams(master_seed=SEED)
        name = "gossip:subset:ws-3:1"
        assert [first.stream(name).random() for _ in range(20)] == [
            second.stream(name).random() for _ in range(20)
        ]

    def test_streams_are_isolated_from_other_streams_draws(self):
        # Draining another website's stream must not perturb this one:
        # that is precisely the property that lets a shard skip the
        # websites it does not own.
        noisy = RandomStreams(master_seed=SEED)
        for _ in range(100):
            noisy.stream("gossip:subset:ws-0:0").random()
        quiet = RandomStreams(master_seed=SEED)
        name = "gossip:subset:ws-1:2"
        assert [noisy.stream(name).random() for _ in range(20)] == [
            quiet.stream(name).random() for _ in range(20)
        ]

    def test_differently_scoped_streams_differ(self):
        streams = RandomStreams(master_seed=SEED)
        draws = {
            name: tuple(streams.stream(name).random() for _ in range(5))
            for name in (
                "gossip:subset:ws-0:0",
                "gossip:subset:ws-0:1",
                "gossip:subset:ws-1:0",
                "dring:bootstrap:ws-0",
            )
        }
        assert len(set(draws.values())) == len(draws)


class TestConservativeWindows:
    def test_final_boundary_is_exactly_the_duration(self):
        boundaries = window_boundaries(100.0, 7.0)
        assert boundaries[-1] == 100.0
        assert all(b1 < b2 for b1, b2 in zip(boundaries, boundaries[1:]))

    def test_degenerate_lookaheads_collapse_to_one_window(self):
        assert window_boundaries(100.0, 0.0) == (100.0,)
        assert window_boundaries(100.0, 100.0) == (100.0,)
        assert window_boundaries(100.0, 500.0) == (100.0,)

    def test_pathological_lookahead_is_capped(self):
        boundaries = window_boundaries(10_000.0, 1e-3)
        assert len(boundaries) <= MAX_WINDOWS
        assert boundaries[-1] == 10_000.0

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            window_boundaries(0.0, 1.0)

    def test_boundary_event_fires_exactly_once(self):
        # An event scheduled exactly on a window barrier belongs to the
        # window that barrier closes; the windowed run must fire it once
        # and reproduce the single run's schedule.
        def windowed_times():
            sim = Simulator(seed=1, end_time=10.0)
            fired = []
            for t in (1.0, 2.0, 2.0, 4.0, 9.5, 10.0):
                sim.at(t, lambda t=t: fired.append((t, sim.now)))
            for boundary in window_boundaries(10.0, 2.0):
                sim.run(until=boundary)
            return fired, sim.events_fired

        sim = Simulator(seed=1, end_time=10.0)
        fired_single = []
        for t in (1.0, 2.0, 2.0, 4.0, 9.5, 10.0):
            sim.at(t, lambda t=t: fired_single.append((t, sim.now)))
        sim.run(until=10.0)

        fired_windowed, events_windowed = windowed_times()
        assert fired_windowed == fired_single
        assert events_windowed == sim.events_fired
        assert len(fired_windowed) == 6

    def test_lookahead_includes_latency_floor(self):
        spec = get_scenario("paper-default").scaled(0.1)
        period = min(spec.gossip_period_s, spec.effective_keepalive_period_s)
        lookahead = conservative_lookahead_s(spec)
        assert lookahead > period


class TestShardPlanning:
    def test_plan_covers_the_whole_catalog_disjointly(self):
        spec = get_scenario("paper-default").scaled(0.25)
        plan = plan_shards(spec, 3)
        owned = [name for shard in plan.assignments for name in shard]
        assert len(owned) == len(set(owned)) == spec.num_websites
        assert set(queryable_websites(spec)) <= set(owned)

    def test_plan_is_deterministic_and_shards_may_be_empty(self):
        spec = get_scenario("paper-default").scaled(0.25)
        plan = plan_shards(spec, spec.num_websites + 2)
        assert plan.assignments == plan_shards(spec, spec.num_websites + 2).assignments
        assert sum(1 for shard in plan.assignments if not shard) == 2

    def test_rotating_programs_expand_the_queryable_set(self):
        spec = get_scenario("partition-heal-reconcile").scaled(0.25)
        assert len(queryable_websites(spec)) >= spec.active_websites


class TestValidation:
    def test_churn_specs_are_rejected(self):
        spec = get_scenario("heavy-churn")
        with pytest.raises(ValueError, match="churn"):
            validate_shardable(spec)
        with pytest.raises(ValueError, match="churn"):
            replace(spec, shards=2)

    def test_multi_system_specs_are_rejected(self):
        with pytest.raises(ValueError, match="flower-only"):
            validate_shardable(get_scenario("squirrel-head-to-head"))

    def test_stream_drawing_fault_models_are_rejected(self):
        with pytest.raises(ValueError, match="fault model"):
            validate_shardable(get_scenario("cascading-directory-failures"))

    def test_shardable_library_scenarios_validate(self):
        for name in (
            "paper-default",
            "multi-locality",
            "locality-partition",
            "partition-heal-reconcile",
            "paper-default-scale10",
        ):
            validate_shardable(get_scenario(name))

    def test_spec_and_session_reject_bad_shard_counts(self):
        spec = get_scenario("paper-default")
        with pytest.raises(ValueError, match="shards"):
            replace(spec, shards=0)
        with pytest.raises(ValueError, match="shards"):
            Session(spec.scaled(0.1), shards=0)
        with pytest.raises(ValueError, match="shards"):
            run_sharded_flower(spec.scaled(0.1), shards=1)


class TestShardMessages:
    def test_merge_is_deterministic_across_arrival_orders(self):
        messages = [
            ShardMessage(timestamp=2.0, shard=1, seq=0),
            ShardMessage(timestamp=1.0, shard=0, seq=1),
            ShardMessage(timestamp=1.0, shard=0, seq=0),
            ShardMessage(timestamp=1.0, shard=2, seq=0),
        ]
        merged = merge_messages([messages[:2], messages[2:]])
        assert merged == merge_messages([messages[2:], messages[:2]])
        assert [m.sort_key for m in merged] == sorted(m.sort_key for m in messages)
