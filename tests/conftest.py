"""Shared fixtures for the test suite.

Most tests use a deliberately small configuration (few websites, few
localities, short durations) so the whole suite stays fast while still
exercising the same code paths as the paper-scale experiments.
"""

from __future__ import annotations

import pytest

from repro.core.config import FlowerConfig, GossipConfig
from repro.network.latency import LatencyModel
from repro.network.topology import Topology, TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.catalog import Catalog


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(master_seed=1234)


@pytest.fixture
def small_topology(streams: RandomStreams) -> Topology:
    config = TopologyConfig(num_hosts=120, num_localities=3, intra_locality_spread_ms=20.0)
    return Topology(config, streams)


@pytest.fixture
def latency_model(small_topology: Topology) -> LatencyModel:
    return LatencyModel(small_topology)


@pytest.fixture
def simulator() -> Simulator:
    return Simulator(seed=7)


@pytest.fixture
def small_config() -> FlowerConfig:
    return FlowerConfig(
        num_websites=4,
        active_websites=2,
        objects_per_website=30,
        num_localities=3,
        max_content_overlay_size=10,
        locality_bits=3,
        website_bits=13,
        gossip=GossipConfig(
            gossip_period_s=60.0,
            view_size=8,
            gossip_length=4,
            push_threshold=0.2,
            keepalive_period_s=60.0,
            dead_age=3,
        ),
        simulation_duration_s=1800.0,
        metrics_window_s=300.0,
        seed=11,
    )


@pytest.fixture
def small_catalog(small_config: FlowerConfig) -> Catalog:
    return Catalog.synthetic(small_config.num_websites, small_config.objects_per_website)
