"""End-to-end and unit tests for the ``repro serve`` HTTP job service.

The expensive guarantees run once against a real ephemeral-port server with
real process-isolated workers (submit → poll → result byte-identical to a
direct :class:`repro.session.Session` run).  Queue mechanics (backpressure,
dedup counters, cancellation, failure detail) run against servers with an
injected in-thread executor so they are fast and fully deterministic.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

import pytest

from repro.scenarios.artifacts import DIGEST_FILENAME, run_documents
from repro.scenarios.spec import ScenarioSpec
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    JobManager,
    QueueFullError,
    ReproService,
    RunStore,
    ServiceClosedError,
    ServiceConfig,
    canonical_scenario_payload,
    request_digest,
)
from repro.session import Session

#: a deliberately tiny scenario: ~0.3 s end to end, still the full pipeline
TINY_SPEC: Dict[str, object] = {
    "name": "tiny",
    "duration_s": 900.0,
    "num_hosts": 60,
    "num_websites": 4,
    "active_websites": 2,
    "objects_per_website": 20,
    "max_content_overlay_size": 8,
    "query_rate_per_s": 0.5,
}
TINY_SEED = 7

Response = Tuple[int, Dict[str, str], str]


class Client:
    """A minimal urllib client against one service instance."""

    def __init__(self, service: ReproService) -> None:
        self.base = service.url

    def request(self, method: str, path: str, body: Optional[dict] = None) -> Response:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, dict(response.headers), response.read().decode()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read().decode()

    def get_json(self, path: str) -> Tuple[int, dict]:
        status, _, text = self.request("GET", path)
        return status, json.loads(text)

    def poll(self, run_id: str, timeout_s: float = 60.0) -> dict:
        deadline_event = threading.Event()
        for _ in range(int(timeout_s / 0.05)):
            _, document = self.get_json(f"/runs/{run_id}")
            if document["state"] in (DONE, FAILED, CANCELLED):
                return document
            deadline_event.wait(0.05)
        raise AssertionError(f"run {run_id} never reached a terminal state")


def make_service(
    tmp_path: Path,
    executor=None,
    workers: int = 2,
    max_queue: int = 4,
    store_max_bytes: Optional[int] = None,
) -> ReproService:
    config = ServiceConfig(
        port=0,
        workers=workers,
        max_queue=max_queue,
        store_dir=tmp_path / "store",
        store_max_bytes=store_max_bytes,
        timeout_s=None,
    )
    service = ReproService(config, executor=executor)
    service.start()
    return service


@pytest.fixture
def live_service(tmp_path: Path) -> Iterator[ReproService]:
    """A real server with real process-isolated workers."""
    service = make_service(tmp_path)
    yield service
    service.stop(drain=False)


# -- the end-to-end guarantee --------------------------------------------------


class TestEndToEnd:
    def test_submit_poll_result_byte_identical_to_session(
        self, live_service: ReproService
    ) -> None:
        client = Client(live_service)
        status, _, text = client.request(
            "POST", "/runs", {"spec": TINY_SPEC, "seed": TINY_SEED}
        )
        assert status == 202
        submitted = json.loads(text)
        assert submitted["cached"] is False
        run_id = submitted["id"]

        final = client.poll(run_id)
        assert final["state"] == DONE

        status, _, served_digest = client.request("GET", f"/runs/{run_id}/result")
        assert status == 200

        direct = Session.from_spec(
            ScenarioSpec.from_dict(TINY_SPEC), seed=TINY_SEED
        ).run()
        expected = run_documents(direct, scale=1.0)
        assert served_digest == expected[DIGEST_FILENAME]

        # Every artifact download is byte-identical to the shared bundle.
        for kind, filename in (("json", "result.json"), ("csv", "series.csv"),
                               ("md", "summary.md")):
            status, _, text = client.request(
                "GET", f"/runs/{run_id}/artifacts/{kind}"
            )
            assert status == 200
            assert text == expected[filename]

    def test_resubmission_is_cached_and_executes_once(
        self, live_service: ReproService
    ) -> None:
        client = Client(live_service)
        _, _, text = client.request("POST", "/runs", {"spec": TINY_SPEC, "seed": TINY_SEED})
        first = json.loads(text)
        client.poll(first["id"])

        status, _, text = client.request(
            "POST", "/runs", {"spec": TINY_SPEC, "seed": TINY_SEED}
        )
        second = json.loads(text)
        assert status == 200  # no new execution: answered immediately
        assert second["cached"] is True
        assert second["id"] == first["id"]
        assert second["digest"] == first["digest"]

        _, stats = client.get_json("/stats")
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["dedup_hits"] + stats["cache"]["store_hits"] == 1
        assert stats["jobs"][DONE] == 1  # one job object, one execution

    def test_restart_serves_from_warm_store(self, tmp_path: Path) -> None:
        service = make_service(tmp_path)
        try:
            client = Client(service)
            _, _, text = client.request(
                "POST", "/runs", {"spec": TINY_SPEC, "seed": TINY_SEED}
            )
            run_id = json.loads(text)["id"]
            client.poll(run_id)
            _, _, first_digest = client.request("GET", f"/runs/{run_id}/result")
        finally:
            assert service.stop() is True

        restarted = make_service(tmp_path)
        try:
            client = Client(restarted)
            status, _, text = client.request(
                "POST", "/runs", {"spec": TINY_SPEC, "seed": TINY_SEED}
            )
            document = json.loads(text)
            assert status == 200
            assert document["cached"] is True
            _, stats = client.get_json("/stats")
            assert stats["cache"]["store_hits"] == 1
            _, _, second_digest = client.request(
                "GET", f"/runs/{document['id']}/result"
            )
            assert second_digest == first_digest
        finally:
            restarted.stop(drain=False)

    def test_metrics_listing_and_streaming(self, live_service: ReproService) -> None:
        client = Client(live_service)
        _, _, text = client.request("POST", "/runs", {"spec": TINY_SPEC, "seed": TINY_SEED})
        run_id = json.loads(text)["id"]
        client.poll(run_id)

        status, listing = client.get_json(f"/runs/{run_id}/metrics")
        assert status == 200
        assert "hit_ratio_cumulative" in listing["series"]

        status, headers, body = client.request(
            "GET", f"/runs/{run_id}/metrics?series=hit_ratio_cumulative"
        )
        assert status == 200
        assert headers.get("Transfer-Encoding") == "chunked"
        points = [json.loads(line) for line in body.splitlines() if line]
        assert points
        assert all(set(point) == {"t", "v"} for point in points)

        status, _ = client.get_json(f"/runs/{run_id}/metrics?series=nope")
        assert status == 404


# -- queue mechanics (deterministic in-thread executor) ------------------------


def _payload(seed: int) -> Dict[str, object]:
    return canonical_scenario_payload(
        ScenarioSpec.from_dict(TINY_SPEC), seed=seed
    )


DUMMY_DOCS = {
    "digest.json": '{"ok": true}\n',
    "result.json": '{"systems": {"flower": {"series": {"s": [[0.0, 1.0]]}}}}\n',
    "series.csv": "system,series,time_s,value\n",
    "summary.md": "# run\n",
}


class TestBackpressure:
    def test_full_queue_yields_429_with_retry_after(self, tmp_path: Path) -> None:
        started = threading.Event()
        release = threading.Event()

        def blocking_executor(payload: dict, execution: dict) -> Dict[str, str]:
            started.set()
            release.wait(timeout=30)
            return DUMMY_DOCS

        service = make_service(
            tmp_path, executor=blocking_executor, workers=1, max_queue=2
        )
        try:
            client = Client(service)
            statuses = []
            # 1 running + 2 queued fit; the 4th distinct submission must bounce.
            for seed in range(4):
                status, headers, text = client.request(
                    "POST", "/runs", {"spec": TINY_SPEC, "seed": seed}
                )
                statuses.append(status)
                if seed == 0:  # wait until the worker owns job 0, freeing a slot
                    assert started.wait(timeout=10)
            assert statuses[:3] == [202, 202, 202]
            assert statuses[3] == 429
            assert int(headers["Retry-After"]) >= 1
            assert "retry_after_s" in json.loads(text)
            release.set()
        finally:
            service.stop(drain=False)

    def test_duplicates_dedupe_and_do_not_consume_queue_slots(
        self, tmp_path: Path
    ) -> None:
        release = threading.Event()

        def blocking_executor(payload: dict, execution: dict) -> Dict[str, str]:
            release.wait(timeout=30)
            return DUMMY_DOCS

        service = make_service(
            tmp_path, executor=blocking_executor, workers=1, max_queue=1
        )
        try:
            client = Client(service)
            ids = set()
            for _ in range(5):  # identical submissions: all join one run
                status, _, text = client.request(
                    "POST", "/runs", {"spec": TINY_SPEC, "seed": 1}
                )
                assert status in (200, 202)
                ids.add(json.loads(text)["id"])
            assert len(ids) == 1
            _, stats = client.get_json("/stats")
            assert stats["cache"]["misses"] == 1
            assert stats["cache"]["dedup_hits"] == 4
            release.set()
        finally:
            service.stop(drain=False)


class TestFailureIsolation:
    def test_executor_failure_reports_task_error_detail(
        self, tmp_path: Path
    ) -> None:
        def failing_executor(payload: dict, execution: dict) -> Dict[str, str]:
            raise RuntimeError("synthetic scenario failure")

        service = make_service(tmp_path, executor=failing_executor, workers=1)
        try:
            client = Client(service)
            _, _, text = client.request(
                "POST", "/runs", {"spec": TINY_SPEC, "seed": 1}
            )
            run_id = json.loads(text)["id"]
            final = client.poll(run_id)
            assert final["state"] == FAILED
            # The detail is the TaskError text: task label + worker traceback.
            assert "tiny" in final["detail"]
            assert "RuntimeError: synthetic scenario failure" in final["detail"]

            status, document = client.get_json(f"/runs/{run_id}/result")
            assert status == 409
            assert document["state"] == FAILED

            # The server survives the failure and keeps answering.
            status, _ = client.get_json("/healthz")
            assert status == 200
        finally:
            service.stop(drain=False)

    def test_worker_process_crash_is_contained(self, tmp_path: Path) -> None:
        # Real process isolation: a payload whose execution raises in the
        # child comes back as a failed job with the traceback, not a dead
        # server.  (Unknown request kinds only arise here, by construction.)
        store = RunStore(tmp_path / "store")
        manager = JobManager(store, workers=1, max_queue=4)
        try:
            payload = {"kind": "unknown-kind"}
            job, cached = manager.submit(payload, label="broken")
            assert cached is False
            for _ in range(600):
                if job.state in (DONE, FAILED, CANCELLED):
                    break
                threading.Event().wait(0.05)
            assert job.state == FAILED
            assert "unknown request kind" in (job.detail or "")
        finally:
            manager.shutdown(drain=False)


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path: Path) -> None:
        release = threading.Event()

        def blocking_executor(payload: dict, execution: dict) -> Dict[str, str]:
            release.wait(timeout=30)
            return DUMMY_DOCS

        service = make_service(
            tmp_path, executor=blocking_executor, workers=1, max_queue=4
        )
        try:
            client = Client(service)
            client.request("POST", "/runs", {"spec": TINY_SPEC, "seed": 1})
            _, _, text = client.request(
                "POST", "/runs", {"spec": TINY_SPEC, "seed": 2}
            )
            queued_id = json.loads(text)["id"]
            status, _, text = client.request("DELETE", f"/runs/{queued_id}")
            assert status == 200
            assert json.loads(text)["state"] == CANCELLED
            release.set()
        finally:
            service.stop(drain=False)

    def test_cancelled_digest_is_resubmittable(self, tmp_path: Path) -> None:
        store = RunStore(tmp_path / "store")
        manager = JobManager(
            store, workers=1, max_queue=4, executor=lambda p, e: DUMMY_DOCS
        )
        try:
            digest = request_digest(_payload(1))
            job, _ = manager.submit(_payload(1), label="tiny")
            manager.cancel(job.id)
            if job.state != CANCELLED:  # a worker may have already grabbed it
                pytest.skip("job started before the cancel landed")
            requeued, cached = manager.submit(_payload(1), label="tiny")
            assert cached is False
            assert requeued.digest == digest
        finally:
            manager.shutdown(drain=False)


class TestValidation:
    @pytest.fixture
    def service(self, tmp_path: Path) -> Iterator[ReproService]:
        service = make_service(tmp_path, executor=lambda p, e: DUMMY_DOCS)
        yield service
        service.stop(drain=False)

    def test_scenario_and_spec_are_mutually_exclusive(
        self, service: ReproService
    ) -> None:
        client = Client(service)
        status, _, _ = client.request("POST", "/runs", {})
        assert status == 400
        status, _, _ = client.request(
            "POST", "/runs", {"scenario": "paper-default", "spec": TINY_SPEC}
        )
        assert status == 400

    def test_unknown_scenario_is_400(self, service: ReproService) -> None:
        status, _, text = Client(service).request(
            "POST", "/runs", {"scenario": "no-such-scenario"}
        )
        assert status == 400
        assert "no-such-scenario" in json.loads(text)["error"]

    def test_unknown_spec_field_is_400(self, service: ReproService) -> None:
        bad = dict(TINY_SPEC)
        bad["not_a_field"] = 1
        status, _, text = Client(service).request("POST", "/runs", {"spec": bad})
        assert status == 400
        assert "not_a_field" in json.loads(text)["error"]

    def test_unknown_sweep_is_400(self, service: ReproService) -> None:
        status, _, _ = Client(service).request(
            "POST", "/sweeps", {"sweep": "no-such-sweep"}
        )
        assert status == 400

    def test_malformed_json_is_400(self, service: ReproService) -> None:
        client = Client(service)
        request = urllib.request.Request(
            client.base + "/runs",
            data=b"{ not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_routes_are_404(self, service: ReproService) -> None:
        client = Client(service)
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("GET", "/runs/" + "0" * 16)[0] == 404
        _, _, text = client.request("POST", "/runs", {"spec": TINY_SPEC, "seed": 1})
        run_id = json.loads(text)["id"]
        assert client.request("GET", f"/runs/{run_id}/artifacts/exe")[0] == 404

    def test_result_of_unfinished_run_is_409(self, tmp_path: Path) -> None:
        release = threading.Event()

        def blocking_executor(payload: dict, execution: dict) -> Dict[str, str]:
            release.wait(timeout=30)
            return DUMMY_DOCS

        service = make_service(tmp_path, executor=blocking_executor, workers=1)
        try:
            client = Client(service)
            _, _, text = client.request(
                "POST", "/runs", {"spec": TINY_SPEC, "seed": 1}
            )
            run_id = json.loads(text)["id"]
            status, document = client.get_json(f"/runs/{run_id}/result")
            assert status == 409
            assert document["state"] in ("queued", "running")
            release.set()
        finally:
            service.stop(drain=False)


class TestRegistriesAndStats:
    @pytest.fixture
    def service(self, tmp_path: Path) -> Iterator[ReproService]:
        service = make_service(tmp_path, executor=lambda p, e: DUMMY_DOCS)
        yield service
        service.stop(drain=False)

    def test_healthz(self, service: ReproService) -> None:
        status, document = Client(service).get_json("/healthz")
        assert status == 200
        assert document["status"] == "ok"

    def test_scenarios_lists_the_registry(self, service: ReproService) -> None:
        from repro.scenarios.library import scenario_names

        _, document = Client(service).get_json("/scenarios")
        assert sorted(entry["name"] for entry in document["scenarios"]) == sorted(
            scenario_names()
        )

    def test_sweeps_lists_the_registry(self, service: ReproService) -> None:
        from repro.sweeps.library import sweep_names

        _, document = Client(service).get_json("/sweeps")
        assert sorted(entry["name"] for entry in document["sweeps"]) == sorted(
            sweep_names()
        )

    def test_stats_shape(self, service: ReproService) -> None:
        _, stats = Client(service).get_json("/stats")
        assert stats["workers"] >= 1
        assert stats["max_queue"] == 4
        assert stats["accepting"] is True
        assert set(stats["cache"]) == {
            "dedup_hits", "store_hits", "misses", "hit_ratio"
        }
        assert set(stats["store"]) == {"entries", "bytes", "max_bytes", "evictions"}


class TestDrain:
    def test_drain_finishes_in_flight_work(self, tmp_path: Path) -> None:
        started = threading.Event()
        release = threading.Event()

        def slow_executor(payload: dict, execution: dict) -> Dict[str, str]:
            started.set()
            release.wait(timeout=30)
            return DUMMY_DOCS

        service = make_service(tmp_path, executor=slow_executor, workers=1)
        client = Client(service)
        _, _, text = client.request("POST", "/runs", {"spec": TINY_SPEC, "seed": 1})
        run_id = json.loads(text)["id"]
        assert started.wait(timeout=10)

        stopper = threading.Thread(target=service.stop, daemon=True)
        stopper.start()
        release.set()
        stopper.join(timeout=30)
        assert not stopper.is_alive()
        # The job finished (drain waited for it) and its bundle is durable.
        job = service.manager.get(run_id)
        assert job is not None and job.state == DONE
        assert job.digest in service.store

    def test_draining_manager_rejects_submissions(self, tmp_path: Path) -> None:
        store = RunStore(tmp_path / "store")
        manager = JobManager(
            store, workers=1, max_queue=4, executor=lambda p, e: DUMMY_DOCS
        )
        manager.shutdown(drain=True)
        with pytest.raises(ServiceClosedError):
            manager.submit(_payload(1), label="tiny")


class TestQueueFullErrorUnit:
    def test_retry_after_is_positive(self, tmp_path: Path) -> None:
        store = RunStore(tmp_path / "store")
        started = threading.Event()
        release = threading.Event()

        def blocking_executor(payload: dict, execution: dict) -> Dict[str, str]:
            started.set()
            release.wait(timeout=30)
            return DUMMY_DOCS

        manager = JobManager(
            store, workers=1, max_queue=1, executor=blocking_executor
        )
        try:
            manager.submit(_payload(1), label="tiny")
            assert started.wait(timeout=10)  # the worker owns job 1
            manager.submit(_payload(2), label="tiny")
            with pytest.raises(QueueFullError) as excinfo:
                manager.submit(_payload(3), label="tiny")
            assert excinfo.value.retry_after_s >= 1
            release.set()
        finally:
            manager.shutdown(drain=False)
