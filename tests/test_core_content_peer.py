"""Unit tests for content peers: storage, views, gossip (Alg. 4) and push (Alg. 5)."""

import random

import pytest

from repro.core.config import FlowerConfig, GossipConfig
from repro.core.content_peer import ContentPeer, GossipMessage
from repro.datastructures.aged_view import AgedEntry
from repro.datastructures.bloom import BloomFilter


@pytest.fixture
def config() -> FlowerConfig:
    return FlowerConfig(
        num_websites=2,
        active_websites=1,
        objects_per_website=20,
        num_localities=2,
        max_content_overlay_size=10,
        locality_bits=2,
        website_bits=10,
        gossip=GossipConfig(
            gossip_period_s=60.0, view_size=6, gossip_length=3, push_threshold=0.25,
            keepalive_period_s=60.0, dead_age=3,
        ),
    )


def make_peer(config: FlowerConfig, name: str = "c1", host: int = 0) -> ContentPeer:
    return ContentPeer(
        peer_id=name, host_id=host, website="site-000.example.org", locality=0, config=config
    )


def obj(i: int) -> str:
    return f"http://site-000.example.org/object/{i}"


class TestContentStorage:
    def test_store_and_has_object(self, config):
        peer = make_peer(config)
        peer.store_object(obj(1))
        assert peer.has_object(obj(1))
        assert peer.num_objects == 1

    def test_store_is_idempotent(self, config):
        peer = make_peer(config)
        peer.store_object(obj(1))
        peer.store_object(obj(1))
        assert peer.num_objects == 1

    def test_drop_object(self, config):
        peer = make_peer(config)
        peer.store_object(obj(1))
        peer.drop_object(obj(1))
        assert not peer.has_object(obj(1))
        peer.drop_object(obj(2))  # dropping an absent object is a no-op

    def test_content_summary_contains_stored_objects(self, config):
        peer = make_peer(config)
        for i in range(5):
            peer.store_object(obj(i))
        summary = peer.content_summary()
        assert all(summary.might_contain(obj(i)) for i in range(5))

    def test_content_summary_cache_invalidated_on_change(self, config):
        peer = make_peer(config)
        peer.store_object(obj(1))
        first = peer.content_summary()
        assert first is peer.content_summary()  # cached
        peer.store_object(obj(2))
        second = peer.content_summary()
        assert second is not first
        assert second.might_contain(obj(2))

    def test_lru_capacity_evicts_and_reports_removal(self):
        config = FlowerConfig(
            num_websites=2, active_websites=1, objects_per_website=20, num_localities=2,
            locality_bits=2, website_bits=10, content_cache_capacity=2,
        )
        peer = make_peer(config)
        peer.store_object(obj(1))
        peer.store_object(obj(2))
        peer.store_object(obj(3))
        assert peer.num_objects == 2
        assert not peer.has_object(obj(1))


class TestView:
    def test_initialize_view_excludes_self(self, config):
        peer = make_peer(config, name="me")
        peer.initialize_view([AgedEntry("me", 0), AgedEntry("other", 0)])
        assert "me" not in peer.view
        assert "other" in peer.view

    def test_view_respects_capacity(self, config):
        peer = make_peer(config)
        peer.initialize_view([AgedEntry(f"p{i}", age=i) for i in range(20)])
        assert len(peer.view) == config.gossip.view_size

    def test_increment_ages_also_ages_directory_entry(self, config):
        peer = make_peer(config)
        peer.note_directory("d0")
        peer.initialize_view([AgedEntry("p1", 0)])
        peer.increment_ages()
        assert peer.view.get("p1").age == 1
        assert peer.directory_age == 1

    def test_note_directory_resets_age(self, config):
        peer = make_peer(config)
        peer.note_directory("d0")
        peer.increment_ages()
        peer.note_directory("d0")
        assert peer.directory_age == 0

    def test_forget_contact(self, config):
        peer = make_peer(config)
        peer.note_directory("d0")
        peer.initialize_view([AgedEntry("p1", 0)])
        peer.forget_contact("p1")
        assert "p1" not in peer.view
        peer.forget_contact("d0")
        assert peer.directory_peer_id is None


class TestLocalResolution:
    def test_candidates_ordered_by_freshness(self, config):
        peer = make_peer(config)
        fresh = BloomFilter.from_items([obj(7)], num_bits=config.summary_bits)
        stale = BloomFilter.from_items([obj(7)], num_bits=config.summary_bits)
        peer.initialize_view(
            [AgedEntry("stale", age=5, payload=stale), AgedEntry("fresh", age=0, payload=fresh)]
        )
        assert peer.resolve_locally(obj(7)) == ["fresh", "stale"]

    def test_entries_without_summaries_are_skipped(self, config):
        peer = make_peer(config)
        peer.initialize_view([AgedEntry("unknown", age=0, payload=None)])
        assert peer.resolve_locally(obj(1)) == []

    def test_non_matching_summaries_are_skipped(self, config):
        peer = make_peer(config)
        summary = BloomFilter.from_items([obj(1)], num_bits=config.summary_bits)
        peer.initialize_view([AgedEntry("p", age=0, payload=summary)])
        assert peer.resolve_locally(obj(15)) == []


class TestGossip:
    def test_partner_is_oldest_view_entry(self, config):
        peer = make_peer(config)
        peer.initialize_view([AgedEntry("young", age=0), AgedEntry("old", age=7)])
        assert peer.select_gossip_partner() == "old"

    def test_partner_none_when_view_empty(self, config):
        assert make_peer(config).select_gossip_partner() is None

    def test_gossip_message_contains_summary_and_subset(self, config):
        peer = make_peer(config)
        peer.store_object(obj(1))
        peer.initialize_view([AgedEntry(f"p{i}", age=i) for i in range(5)])
        message = peer.build_gossip_message(rng=random.Random(0))
        assert isinstance(message, GossipMessage)
        assert message.sender == peer.peer_id
        assert message.num_entries == config.gossip.gossip_length
        assert message.content_summary.might_contain(obj(1))

    def test_exchange_adds_partner_with_fresh_summary(self, config):
        alice = make_peer(config, "alice", 0)
        bob = make_peer(config, "bob", 1)
        alice.store_object(obj(1))
        bob.store_object(obj(2))
        message = alice.build_gossip_message()
        reply = bob.handle_gossip(message)
        alice.apply_gossip(reply)
        assert "alice" in bob.view
        assert "bob" in alice.view
        assert alice.view.get("bob").age == 0
        assert alice.view.get("bob").payload.might_contain(obj(2))
        assert bob.gossip_received == 1

    def test_exchange_disseminates_third_party_entries(self, config):
        alice = make_peer(config, "alice")
        bob = make_peer(config, "bob")
        carol_summary = BloomFilter.from_items([obj(9)], num_bits=config.summary_bits)
        alice.initialize_view([AgedEntry("carol", age=1, payload=carol_summary)])
        reply = bob.handle_gossip(alice.build_gossip_message())
        alice.apply_gossip(reply)
        assert "carol" in bob.view
        assert bob.resolve_locally(obj(9)) == ["carol"]

    def test_view_never_contains_self_after_gossip(self, config):
        alice = make_peer(config, "alice")
        bob = make_peer(config, "bob")
        bob.initialize_view([AgedEntry("alice", age=2)])
        reply = bob.handle_gossip(alice.build_gossip_message())
        alice.apply_gossip(reply)
        assert "alice" not in alice.view


class TestPush:
    def test_needs_push_respects_threshold(self, config):
        peer = make_peer(config)
        assert not peer.needs_push()
        peer.store_object(obj(1))
        # one change over one object = 100% >= 25% threshold
        assert peer.needs_push()

    def test_threshold_is_relative_to_content_size(self, config):
        peer = make_peer(config)
        for i in range(8):
            peer.store_object(obj(i))
        peer.build_push()  # flush
        peer.store_object(obj(9))
        # 1 change / 9 objects ≈ 11% < 25%
        assert not peer.needs_push()
        peer.store_object(obj(10))
        peer.store_object(obj(11))
        assert peer.needs_push()

    def test_build_push_carries_delta_and_resets(self, config):
        peer = make_peer(config)
        peer.store_object(obj(1))
        peer.store_object(obj(2))
        peer.drop_object(obj(2))
        push = peer.build_push()
        assert push.sender == peer.peer_id
        assert obj(1) in push.added
        assert obj(2) in push.removed
        assert not peer.needs_push()
        assert peer.pushes_sent == 1
        assert peer.directory_age == 0

    def test_pending_change_fraction_empty_peer(self, config):
        assert make_peer(config).pending_change_fraction() == 0.0


class TestLifecycle:
    def test_fail_and_recover(self, config):
        peer = make_peer(config)
        peer.fail()
        assert not peer.alive
        peer.recover()
        assert peer.alive
