"""Unit tests for the Pastry substrate and D-ring integration on top of it."""

import random

import pytest

from repro.core.dring import DRing
from repro.core.keys import KeyScheme
from repro.overlay.idspace import IdSpace
from repro.overlay.pastry import PastryNode, PastryRing
from repro.overlay.router import KBRRouter, RoutingPolicy


@pytest.fixture
def idspace() -> IdSpace:
    return IdSpace(bits=16)


@pytest.fixture
def ring(idspace: IdSpace) -> PastryRing:
    rng = random.Random(5)
    node_ids = sorted(rng.sample(range(idspace.size), 64))
    return PastryRing.build(idspace, node_ids)


class TestPastryNode:
    def test_digit_extraction(self, idspace: IdSpace):
        node = PastryNode(0xABCD, idspace, digit_bits=4)
        assert node.num_digits == 4
        assert [node.digit(0xABCD, row) for row in range(4)] == [0xA, 0xB, 0xC, 0xD]

    def test_shared_prefix_length(self, idspace: IdSpace):
        node = PastryNode(0xAB00, idspace, digit_bits=4)
        assert node.shared_prefix_length(0xABFF) == 2
        assert node.shared_prefix_length(0xAB00) == 4
        assert node.shared_prefix_length(0x0000) == 0

    def test_validation(self, idspace: IdSpace):
        with pytest.raises(ValueError):
            PastryNode(1, idspace, digit_bits=0)
        with pytest.raises(ValueError):
            PastryNode(1, idspace, leaf_set_size=3)

    def test_forget_removes_from_all_state(self, idspace: IdSpace):
        node = PastryNode(0, idspace)
        node.leaf_set = [10, 20]
        node.routing_table = {0: {1: 10, 2: 30}}
        node.forget(10)
        assert 10 not in node.known_nodes()
        assert 30 in node.known_nodes()


class TestPastryRing:
    def test_membership_and_ownership(self, ring: PastryRing, idspace: IdSpace):
        assert len(ring) == 64
        key = 1234
        owner = ring.owner_of(key)
        live = ring.live_ids()
        assert owner.node_id == idspace.closest_to(key, live)

    def test_leaf_sets_are_the_numeric_neighbours(self, ring: PastryRing):
        live = ring.live_ids()
        node = ring.node(live[10])
        expected_neighbours = set(live[6:10] + live[11:15])
        assert set(node.leaf_set) == expected_neighbours

    def test_routing_table_rows_index_shared_prefixes(self, ring: PastryRing):
        node = ring.node(ring.live_ids()[0])
        for row, slots in node.routing_table.items():
            for node_id in slots.values():
                assert node.shared_prefix_length(node_id) == row

    def test_duplicate_join_rejected(self, ring: PastryRing):
        with pytest.raises(ValueError):
            ring.join(ring.live_ids()[0])

    def test_leave_and_fail(self, ring: PastryRing):
        victim = ring.live_ids()[5]
        ring.leave(victim)
        assert victim not in ring
        failed = ring.live_ids()[5]
        ring.fail(failed)
        assert failed not in ring
        ring.stabilize()
        assert all(failed not in ring.node(nid).known_nodes() for nid in ring.live_ids())

    def test_owner_matching(self, ring: PastryRing):
        owner = ring.owner_matching(100, lambda nid: nid > 30000)
        assert owner is not None and owner.node_id > 30000


class TestPastryRouting:
    def test_router_delivers_to_numerically_closest(self, ring: PastryRing, idspace: IdSpace):
        router = KBRRouter(ring)
        rng = random.Random(9)
        for _ in range(30):
            start = rng.choice(ring.live_ids())
            key = rng.randrange(idspace.size)
            result = router.route(start, key)
            assert result.destination == idspace.closest_to(key, ring.live_ids())

    def test_hop_counts_are_logarithmic(self, ring: PastryRing, idspace: IdSpace):
        router = KBRRouter(ring)
        rng = random.Random(11)
        hops = []
        for _ in range(30):
            start = rng.choice(ring.live_ids())
            key = rng.randrange(idspace.size)
            hops.append(router.route(start, key).hops)
        assert sum(hops) / len(hops) <= 6  # log16(64) ≈ 1.5 digits; generous bound

    def test_constrained_routing_works_on_pastry(self, ring: PastryRing):
        router = KBRRouter(ring)
        constraint = lambda nid: nid >= 32768  # noqa: E731
        result = router.route(
            ring.live_ids()[0], 40000, policy=RoutingPolicy.CONSTRAINED, constraint=constraint
        )
        assert result.destination >= 32768


class TestDRingOverPastry:
    def test_dring_queries_reach_the_right_directory(self):
        keys = KeyScheme(website_bits=13, locality_bits=3)
        dring = DRing(keys, ring=PastryRing(keys.idspace))
        websites = ["http://alpha.org", "http://beta.org"]
        for website in websites:
            for locality in range(4):
                dring.register_directory(website, locality, f"d({website},{locality})")
        for website in websites:
            for locality in range(4):
                placement, result = dring.resolve_directory(website, locality)
                assert placement.website == website
                assert placement.locality == locality
                assert result.delivered

    def test_missing_directory_stays_within_the_website(self):
        keys = KeyScheme(website_bits=13, locality_bits=3)
        dring = DRing(keys, ring=PastryRing(keys.idspace))
        for locality in range(4):
            dring.register_directory("http://alpha.org", locality, f"d(alpha,{locality})")
            dring.register_directory("http://beta.org", locality, f"d(beta,{locality})")
        dring.remove_directory("http://alpha.org", 2, failed=True)
        dring.ring.stabilize()
        placement, _ = dring.resolve_directory("http://alpha.org", 2)
        assert placement is not None
        assert placement.website == "http://alpha.org"
