"""The `scenarios diff` digest-comparison tooling."""

import io
import json

import pytest

from repro import cli
from repro.scenarios import diffing


def _digest(hit_ratio=0.7, latency=150.0, queries=1000, scenario="paper-default"):
    return {
        "scenario": scenario,
        "seed": 42,
        "scale": 0.25,
        "systems": {
            "flower": {
                "metrics": {
                    "num_queries": queries,
                    "hit_ratio": hit_ratio,
                    "average_lookup_latency_ms": latency,
                    "fraction_local_overlay_hit": hit_ratio,
                },
                "phases": {
                    "steady": {"hit_ratio": hit_ratio},
                    "warmup": {"hit_ratio": hit_ratio / 2},
                },
            }
        },
    }


class TestDiffDigests:
    def test_identical_digests_have_no_changes(self):
        diff = diffing.diff_digests(_digest(), _digest())
        assert diff.changed == []
        assert diff.out_of_tolerance == []

    def test_within_tolerance_change_is_reported_but_passes(self):
        diff = diffing.diff_digests(_digest(hit_ratio=0.70), _digest(hit_ratio=0.71))
        changed = [d.metric for d in diff.changed]
        assert "flower.metrics.hit_ratio" in changed
        assert all(d.within_tolerance for d in diff.changed if "hit_ratio" in d.metric)

    def test_out_of_tolerance_change_is_flagged(self):
        diff = diffing.diff_digests(_digest(hit_ratio=0.70), _digest(hit_ratio=0.40))
        failing = [d.metric for d in diff.out_of_tolerance]
        assert "flower.metrics.hit_ratio" in failing

    def test_exact_mode_flags_any_change(self):
        diff = diffing.diff_digests(
            _digest(hit_ratio=0.70), _digest(hit_ratio=0.700001), exact=True
        )
        assert diff.out_of_tolerance

    def test_deltas_carry_values_and_relative_change(self):
        diff = diffing.diff_digests(_digest(latency=100.0), _digest(latency=110.0))
        delta = next(d for d in diff.deltas if d.metric.endswith("lookup_latency_ms"))
        assert delta.left == 100.0 and delta.right == 110.0
        assert delta.delta == pytest.approx(10.0)
        assert delta.relative_delta == pytest.approx(0.10)

    def test_missing_fraction_compares_as_zero(self):
        left = _digest()
        right = _digest()
        del right["systems"]["flower"]["metrics"]["fraction_local_overlay_hit"]
        diff = diffing.diff_digests(left, right)
        delta = next(d for d in diff.deltas if "fraction_local" in d.metric)
        assert delta.right == 0.0
        assert not delta.within_tolerance  # 0.7 -> 0.0 is far outside the band

    def test_cross_scenario_context_is_reported_not_rejected(self):
        diff = diffing.diff_digests(_digest(), _digest(scenario="flash-crowd"))
        assert diff.context["scenario"] == ("paper-default", "flash-crowd")

    def test_format_lists_only_changes_by_default(self):
        text = diffing.format_diff(diffing.diff_digests(_digest(), _digest(hit_ratio=0.71)))
        assert "hit_ratio" in text
        assert "num_queries" not in text
        full = diffing.format_diff(
            diffing.diff_digests(_digest(), _digest(hit_ratio=0.71)), all_rows=True
        )
        assert "num_queries" in full


class TestDiffCli:
    def _write(self, path, digest):
        path.write_text(json.dumps(digest), encoding="utf-8")
        return str(path)

    def test_within_tolerance_exits_zero(self, tmp_path):
        left = self._write(tmp_path / "a.json", _digest())
        right = self._write(tmp_path / "b.json", _digest(hit_ratio=0.705))
        out = io.StringIO()
        assert cli.main(["scenarios", "diff", left, right], out=out) == 0
        assert "hit_ratio" in out.getvalue()

    def test_out_of_tolerance_exits_one(self, tmp_path):
        left = self._write(tmp_path / "a.json", _digest())
        right = self._write(tmp_path / "b.json", _digest(hit_ratio=0.4))
        out = io.StringIO()
        assert cli.main(["scenarios", "diff", left, right], out=out) == 1
        assert "!" in out.getvalue()

    def test_exact_flag(self, tmp_path):
        left = self._write(tmp_path / "a.json", _digest())
        right = self._write(tmp_path / "b.json", _digest(hit_ratio=0.700001))
        assert cli.main(["scenarios", "diff", left, right], out=io.StringIO()) == 0
        assert (
            cli.main(["scenarios", "diff", left, right, "--exact"], out=io.StringIO()) == 1
        )

    def test_missing_file_is_a_usage_error(self, tmp_path):
        left = self._write(tmp_path / "a.json", _digest())
        assert (
            cli.main(["scenarios", "diff", left, str(tmp_path / "nope.json")],
                     out=io.StringIO())
            == 2
        )

    def test_non_digest_json_rejected(self, tmp_path):
        left = self._write(tmp_path / "a.json", _digest())
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"not": "a digest"}), encoding="utf-8")
        assert (
            cli.main(["scenarios", "diff", left, str(bogus)], out=io.StringIO()) == 2
        )

    def test_diff_of_two_real_runs(self, tmp_path):
        """End to end: run a scenario twice at different seeds and diff."""
        a, b = io.StringIO(), io.StringIO()
        assert cli.main(
            ["scenarios", "run", "paper-default", "--scale", "0.1", "--seed", "42"], out=a
        ) == 0
        assert cli.main(
            ["scenarios", "run", "paper-default", "--scale", "0.1", "--seed", "43"], out=b
        ) == 0
        left = self._write(tmp_path / "a.json", json.loads(a.getvalue()))
        right = self._write(tmp_path / "b.json", json.loads(b.getvalue()))
        out = io.StringIO()
        code = cli.main(["scenarios", "diff", left, right], out=out)
        assert code in (0, 1)  # different seeds legitimately differ
        assert "num_queries" in out.getvalue() or "no metric differences" in out.getvalue()
