"""Calendar event-queue backend: equivalence with the heap, pooling, engine wiring.

The calendar queue is a drop-in replacement for the tuple heap — every test
here nails the contract down: identical pop order (including cancellation and
reschedule interleavings), identical engine behaviour, and byte-identical
scenario digests across backends.
"""

import random

import pytest

from repro.sim.calendar import CalendarEventQueue
from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import EventQueue


def _drain(queue):
    order = []
    while True:
        event = queue.pop()
        if event is None:
            return order
        order.append((event.time, event.sequence, event.label))


class TestOrderEquivalence:
    def test_random_pushes_pop_in_heap_order(self):
        rng = random.Random(11)
        heap, calendar = EventQueue(), CalendarEventQueue()
        for i in range(4000):
            t = rng.uniform(0.0, 500.0)
            heap.push(t, lambda: None, label=str(i))
            calendar.push(t, lambda: None, label=str(i))
        assert _drain(calendar) == _drain(heap)

    def test_cancellations_are_equivalent(self):
        rng = random.Random(5)
        heap, calendar = EventQueue(), CalendarEventQueue()
        handles = []
        for i in range(3000):
            t = rng.uniform(0.0, 100.0)
            handles.append((heap.push(t, lambda: None), calendar.push(t, lambda: None)))
        for h, c in handles[::3]:
            heap.cancel(h)
            calendar.cancel(c)
        assert len(calendar) == len(heap)
        assert _drain(calendar) == _drain(heap)

    def test_interleaved_push_pop_reschedule(self):
        rng = random.Random(3)
        heap, calendar = EventQueue(), CalendarEventQueue()
        for step in range(2000):
            t = rng.uniform(0.0, 50.0)
            heap.push(t, lambda: None)
            calendar.push(t, lambda: None)
            if step % 5 == 4:
                h, c = heap.pop(), calendar.pop()
                assert (h.time, h.sequence) == (c.time, c.sequence)
                # Re-arm the popped handles identically.
                heap.reschedule(h, h.time + 10.0)
                calendar.reschedule(c, c.time + 10.0)
        assert _drain(calendar) == _drain(heap)

    def test_extend_matches_heap_extend(self):
        times = [float(i % 97) * 1.5 for i in range(1000)]
        heap, calendar = EventQueue(), CalendarEventQueue()
        heap.extend((t, lambda: None) for t in times)
        calendar.extend((t, lambda: None) for t in times)
        assert _drain(calendar) == _drain(heap)

    def test_pop_before_horizon_semantics(self):
        calendar = CalendarEventQueue()
        calendar.push(1.0, lambda: None)
        calendar.push(5.0, lambda: None)
        assert calendar.pop_before(0.5) is None
        assert bool(calendar)  # distinguishable from empty
        assert calendar.pop_before(2.0).time == 1.0
        assert calendar.pop_before(2.0) is None
        assert calendar.pop_before(None).time == 5.0
        assert calendar.pop_before(None) is None
        assert not calendar


class TestCalendarInternals:
    def test_width_tunes_on_first_bulk_extend(self):
        calendar = CalendarEventQueue()
        default_width = calendar.bucket_width
        calendar.extend((float(i), lambda: None) for i in range(1000))
        assert calendar.bucket_width != default_width
        # ~4 events per bucket over a 0..999 span
        assert 1.0 <= calendar.bucket_width <= 16.0

    def test_explicit_width_is_not_retuned(self):
        calendar = CalendarEventQueue(bucket_width=2.5)
        calendar.extend((float(i), lambda: None) for i in range(1000))
        assert calendar.bucket_width == 2.5

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            CalendarEventQueue(bucket_width=0.0)

    def test_push_behind_the_sorted_head_bucket(self):
        # Sort the head bucket by popping once, then insert an earlier entry.
        calendar = CalendarEventQueue(bucket_width=1.0)
        calendar.push(10.0, lambda: None, label="late")
        assert calendar.peek_time() == 10.0  # materialises the head bucket
        calendar.push(1.0, lambda: None, label="early")
        order = _drain(calendar)
        assert [label for _, _, label in order] == ["early", "late"]

    def test_compaction_drops_cancelled_entries(self):
        calendar = CalendarEventQueue(bucket_width=1.0)
        handles = [calendar.push(float(i % 50), lambda: None) for i in range(1000)]
        for handle in handles[:900]:
            calendar.cancel(handle)
        # Automatic compaction keeps the dead backlog below the trigger
        # threshold (mirroring the heap backend's lazy-deletion policy) ...
        assert calendar.dead_entries < 64
        # ... and an explicit compact drops every cancelled entry.
        calendar.compact()
        assert calendar.dead_entries == 0
        assert calendar.heap_size == len(calendar) == 100

    def test_negative_time_rejected(self):
        calendar = CalendarEventQueue()
        with pytest.raises(ValueError):
            calendar.push(-1.0, lambda: None)
        with pytest.raises(ValueError):
            calendar.extend([(-1.0, lambda: None)])
        with pytest.raises(ValueError):
            calendar.extend_transient([-1.0], lambda: None)


class TestTransientPooling:
    @pytest.mark.parametrize("queue_cls", [EventQueue, CalendarEventQueue])
    def test_handles_are_recycled(self, queue_cls):
        queue = queue_cls()
        queue.extend_transient([float(i) for i in range(100)], lambda: None)
        seen = set()
        while True:
            event = queue.pop()
            if event is None:
                break
            assert event.poolable
            seen.add(id(event))
            queue.recycle(event)
        assert queue.pool_size == len(seen) == 100
        # The next transient batch reuses the pooled handles.
        queue.extend_transient([float(i) for i in range(100)], lambda: None)
        assert queue.pool_size == 0
        reused = set()
        while (event := queue.pop()) is not None:
            reused.add(id(event))
        assert reused == seen

    def test_regular_push_is_not_poolable(self):
        queue = CalendarEventQueue()
        event = queue.push(1.0, lambda: None)
        assert not event.poolable


class TestEngineIntegration:
    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(queue_backend="btree")

    @pytest.mark.parametrize("backend", ["heap", "calendar"])
    def test_schedule_trace_fires_in_order_with_bounded_handles(self, backend):
        sim = Simulator(seed=1, queue_backend=backend)
        times = sorted(random.Random(9).uniform(0.0, 100.0) for _ in range(5000))
        fired = []
        sim.schedule_trace(times, lambda: fired.append(sim.now), chunk_size=512)
        # Live trace handles never exceed one chunk (plus its feeder).
        assert len(sim._queue) <= 513
        sim.run(until=100.0)
        assert fired == times
        # events_fired counts the trace plus one feeder per full chunk
        assert sim.events_fired >= len(times)

    def test_schedule_trace_rejects_times_behind_the_clock(self):
        sim = Simulator(seed=1)
        sim.schedule_trace([1.0, 2.0], lambda: None, chunk_size=1)
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_trace([1.0], lambda: None)

    def test_call_every_and_cancel_work_on_calendar_backend(self):
        sim = Simulator(seed=1, queue_backend="calendar")
        ticks = []
        handle = sim.call_every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=5.5)
        handle.cancel()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    @pytest.mark.parametrize("backend", ["heap", "calendar"])
    def test_deterministic_across_backends(self, backend):
        sim = Simulator(seed=7, queue_backend=backend)
        log = []
        sim.schedule_batch(((float(i) * 0.37, lambda i=i: log.append(i)) for i in range(500)))
        sim.call_every(13.0, lambda: log.append(-1))
        sim.run(until=100.0)
        if backend == "heap":
            type(self).reference = log  # noqa: B010 - stash for the next param
        else:
            assert log == type(self).reference
