"""Tests for sweep specifications: axes, grids and per-cell seed derivation."""

import pytest

from repro.scenarios.spec import ChurnProfile
from repro.sweeps.spec import (
    KNOWN_SEED_POLICIES,
    SweepAxis,
    SweepSpec,
    derive_cell_seed,
    jsonify_value,
)


class TestSweepAxis:
    def test_single_wraps_scalars(self):
        axis = SweepAxis.single("Lgossip", "gossip_length", (5, 10, 20))
        assert axis.fields == ("gossip_length",)
        assert axis.values == ((5,), (10,), (20,))
        assert len(axis) == 3
        assert axis.display_value(0) == "5"

    def test_multi_field_axis(self):
        axis = SweepAxis(
            label="Tgossip(s)",
            fields=("gossip_period_s", "keepalive_period_s"),
            values=((60.0, 60.0), (3600.0, 3600.0)),
        )
        assert axis.display_value(1) == "3600"

    def test_explicit_display_labels(self):
        axis = SweepAxis(
            label="churn",
            fields=("churn",),
            values=((ChurnProfile(),), (ChurnProfile(content_failures_per_hour=30.0),)),
            display=("none", "heavy"),
        )
        assert axis.display_value(0) == "none"
        assert axis.display_value(1) == "heavy"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ScenarioSpec field"):
            SweepAxis.single("x", "gossip_lenth", (5,))

    def test_unsweepable_fields_rejected(self):
        for name in ("name", "description", "seed", "tier"):
            with pytest.raises(ValueError, match="must not vary"):
                SweepAxis.single("x", name, ("value",))

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="empty value grid"):
            SweepAxis(label="x", fields=("gossip_length",), values=())

    def test_value_arity_must_match_fields(self):
        with pytest.raises(ValueError, match="tuple of 2"):
            SweepAxis(
                label="x",
                fields=("gossip_period_s", "keepalive_period_s"),
                values=((60.0,),),
            )

    def test_display_arity_must_match_values(self):
        with pytest.raises(ValueError, match="one entry per grid point"):
            SweepAxis.single("x", "gossip_length", (5, 10), display=("five",))

    def test_to_dict_is_json_ready(self):
        import json

        axis = SweepAxis(
            label="churn",
            fields=("churn",),
            values=((ChurnProfile(content_failures_per_hour=30.0),),),
        )
        json.dumps(axis.to_dict())


class TestSweepSpec:
    def test_grid_shape_and_cell_count(self):
        sweep = SweepSpec(
            name="grid",
            axes=(
                SweepAxis.single("L", "gossip_length", (5, 10)),
                SweepAxis.single("V", "view_size", (20, 50, 70)),
            ),
        )
        assert sweep.grid_shape == (2, 3)
        assert sweep.num_cells == 6

    def test_zero_axis_sweep_has_one_cell(self):
        sweep = SweepSpec(name="point", base="squirrel-head-to-head")
        assert sweep.num_cells == 1
        compiled = sweep.compile()
        (cell,) = compiled.cells
        assert cell.assignments == ()
        assert cell.spec.name == "squirrel-head-to-head"

    def test_duplicate_field_across_axes_rejected(self):
        with pytest.raises(ValueError, match="set by both"):
            SweepSpec(
                name="dup",
                axes=(
                    SweepAxis.single("a", "gossip_length", (5,)),
                    SweepAxis.single("b", "gossip_length", (10,)),
                ),
            )

    def test_unknown_seed_policy_rejected(self):
        with pytest.raises(ValueError, match="seed policy"):
            SweepSpec(name="bad", seed_policy="psychic")
        assert set(KNOWN_SEED_POLICIES) == {"shared", "derived"}

    def test_compile_applies_assignments(self):
        sweep = SweepSpec(
            name="grid", axes=(SweepAxis.single("L", "gossip_length", (5, 20)),)
        )
        compiled = sweep.compile()
        assert [cell.spec.gossip_length for cell in compiled.cells] == [5, 20]
        # Untouched fields come from the base scenario.
        assert all(cell.spec.view_size == 50 for cell in compiled.cells)

    def test_compile_scales_the_base_before_pinning(self):
        sweep = SweepSpec(
            name="grid", axes=(SweepAxis.single("V", "view_size", (70,)),)
        )
        compiled = sweep.compile(scale=0.25)
        (cell,) = compiled.cells
        assert compiled.scale == 0.25
        assert cell.spec.num_hosts == 150  # 600 * 0.25
        assert cell.spec.view_size == 70  # axis value is absolute

    def test_compile_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            SweepSpec(name="grid").compile(scale=0.0)

    def test_base_spec_override(self):
        from repro.scenarios.library import get_scenario

        sweep = SweepSpec(
            name="grid", axes=(SweepAxis.single("L", "gossip_length", (5,)),)
        )
        compiled = sweep.compile(base_spec=get_scenario("flash-crowd"))
        assert compiled.base_name == "flash-crowd"
        assert compiled.cells[0].spec.query_rate_per_s == 6.0


class TestSeedDerivation:
    def test_shared_policy_uses_one_seed(self):
        sweep = SweepSpec(
            name="grid",
            seed_policy="shared",
            axes=(SweepAxis.single("L", "gossip_length", (5, 10, 20)),),
        )
        compiled = sweep.compile(seed=7)
        assert {cell.seed for cell in compiled.cells} == {7}

    def test_derived_policy_gives_independent_seeds(self):
        sweep = SweepSpec(
            name="grid",
            seed_policy="derived",
            axes=(SweepAxis.single("L", "gossip_length", (5, 10, 20)),),
        )
        compiled = sweep.compile(seed=7)
        seeds = [cell.seed for cell in compiled.cells]
        assert len(set(seeds)) == 3

    def test_derived_seeds_are_stable_across_axis_reordering(self):
        length_axis = SweepAxis.single("L", "gossip_length", (5, 10))
        view_axis = SweepAxis.single("V", "view_size", (20, 50))
        forward = SweepSpec(
            name="fwd", seed_policy="derived", axes=(length_axis, view_axis)
        ).compile(seed=42)
        backward = SweepSpec(
            name="bwd", seed_policy="derived", axes=(view_axis, length_axis)
        ).compile(seed=42)
        by_assignment_fwd = {
            frozenset(cell.assignments): cell.seed for cell in forward.cells
        }
        by_assignment_bwd = {
            frozenset(cell.assignments): cell.seed for cell in backward.cells
        }
        assert by_assignment_fwd == by_assignment_bwd

    def test_derived_seed_depends_on_base_seed_and_values(self):
        pins = (("gossip_length", 5),)
        assert derive_cell_seed(42, pins) != derive_cell_seed(43, pins)
        assert derive_cell_seed(42, pins) != derive_cell_seed(
            42, (("gossip_length", 10),)
        )

    def test_derived_seed_handles_dataclass_values(self):
        light = ChurnProfile(content_failures_per_hour=30.0)
        first = derive_cell_seed(42, (("churn", light),))
        second = derive_cell_seed(42, (("churn", ChurnProfile(content_failures_per_hour=30.0)),))
        assert first == second


class TestJsonify:
    def test_dataclasses_become_dicts(self):
        profile = ChurnProfile(content_failures_per_hour=30.0)
        assert jsonify_value(profile) == {
            "content_failures_per_hour": 30.0,
            "directory_failures_per_hour": 0.0,
            "locality_changes_per_hour": 0.0,
        }

    def test_tuples_become_lists(self):
        assert jsonify_value((1, (2, 3))) == [1, [2, 3]]

    def test_scalars_pass_through(self):
        assert jsonify_value(5) == 5
        assert jsonify_value("x") == "x"
