"""Golden-metrics regression suite.

Every library scenario is re-run at the pinned golden scale/seed and its
rounded metrics digest is compared against the committed file under
``tests/goldens/`` with per-metric tolerances.  A pure refactor of the hot
path (core/system.py, sim/engine.py, overlay routing, workload generation)
must keep these green; an intentional behaviour change is recorded by
running ``make goldens`` (``python -m repro.scenarios.golden --update``) and
committing the diff.
"""

import io
import json
from pathlib import Path

import pytest

from repro.scenarios import golden
from repro.scenarios.library import scenario_names

GOLDEN_DIR = Path(__file__).parent / "goldens"


def test_every_scenario_has_a_committed_golden():
    committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert set(scenario_names()) <= committed, (
        "missing goldens; run `python -m repro.scenarios.golden --update`"
    )


def test_goldens_do_not_outlive_the_library():
    committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    stale = committed - set(scenario_names())
    assert not stale, f"goldens without a library scenario: {sorted(stale)}"


@pytest.mark.parametrize("name", sorted(scenario_names(tier="standard")))
def test_scenario_matches_committed_golden(name):
    # Standard tier only: paper-scale goldens take minutes per scenario and
    # are verified by the nightly workflow (`... golden --tier paper-scale`).
    mismatches = golden.verify_golden(name, GOLDEN_DIR)
    assert not mismatches, "golden drift for {}:\n{}".format(name, "\n".join(mismatches))


def test_paper_scale_tier_goldens_are_pinned_at_full_scale():
    for name in scenario_names(tier="paper-scale"):
        assert golden.golden_scale_for(name) == 1.0
        committed = golden.load_golden(name, GOLDEN_DIR)
        assert committed["scale"] == 1.0
        assert committed["seed"] == golden.GOLDEN_SEED


# -- unit tests of the comparison machinery ---------------------------------


def _digest(hit_ratio=0.7, latency=150.0, queries=1000):
    return {
        "scenario": "paper-default",
        "seed": 42,
        "scale": golden.GOLDEN_SCALE,
        "systems": {
            "flower": {
                "metrics": {
                    "num_queries": queries,
                    "hit_ratio": hit_ratio,
                    "average_lookup_latency_ms": latency,
                },
                "phases": {"steady": {"hit_ratio": hit_ratio}},
            }
        },
    }


class TestCompareDigests:
    def test_identical_digests_match(self):
        assert golden.compare_digests(_digest(), _digest()) == []

    def test_within_tolerance_passes(self):
        # hit_ratio tolerance is ±0.02 absolute; latency ±5% relative.
        assert golden.compare_digests(
            _digest(hit_ratio=0.700, latency=150.0),
            _digest(hit_ratio=0.715, latency=155.0),
        ) == []

    def test_out_of_tolerance_fails_with_metric_name(self):
        mismatches = golden.compare_digests(_digest(hit_ratio=0.70), _digest(hit_ratio=0.60))
        assert any("hit_ratio" in m for m in mismatches)

    def test_num_queries_is_exact(self):
        mismatches = golden.compare_digests(_digest(queries=1000), _digest(queries=1001))
        assert any("num_queries" in m for m in mismatches)

    def test_missing_system_reported(self):
        actual = _digest()
        actual["systems"] = {}
        mismatches = golden.compare_digests(_digest(), actual)
        assert any("missing" in m for m in mismatches)

    def test_vanished_rare_fraction_compares_as_zero(self):
        # An outcome fraction only appears when observed; a tiny fraction
        # disappearing entirely must be judged by tolerance, not "missing".
        expected = _digest()
        expected["systems"]["flower"]["metrics"]["fraction_remote_overlay_hit"] = 0.0102
        assert golden.compare_digests(expected, _digest()) == []
        expected["systems"]["flower"]["metrics"]["fraction_remote_overlay_hit"] = 0.05
        mismatches = golden.compare_digests(expected, _digest())
        assert any("fraction_remote_overlay_hit" in m for m in mismatches)

    def test_missing_metric_reported(self):
        actual = _digest()
        del actual["systems"]["flower"]["metrics"]["hit_ratio"]
        mismatches = golden.compare_digests(_digest(), actual)
        assert any("hit_ratio" in m and "missing" in m for m in mismatches)

    def test_seed_and_scale_are_pinned(self):
        actual = _digest()
        actual["seed"] = 43
        assert golden.compare_digests(_digest(), actual)

    def test_tolerance_band(self):
        tolerance = golden.Tolerance(relative=0.1, absolute=1.0)
        assert tolerance.allows(100.0, 109.0)
        assert not tolerance.allows(100.0, 112.0)
        assert golden.EXACT.allows(5.0, 5.0)
        assert not golden.EXACT.allows(5.0, 5.0001)


class TestGoldenWorkflow:
    def test_load_golden_missing_file_is_actionable(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--update"):
            golden.load_golden("paper-default", tmp_path)

    def test_update_then_verify_roundtrip(self, tmp_path):
        # Use the committed digest as the "fresh run" to avoid a re-simulation:
        # writing and re-reading must be lossless.
        committed = golden.load_golden("cold-start", GOLDEN_DIR)
        path = tmp_path / "cold-start.json"
        path.write_text(json.dumps(committed, indent=2, sort_keys=True) + "\n")
        assert golden.compare_digests(golden.load_golden("cold-start", tmp_path), committed) == []

    def test_main_reports_ok_for_committed_goldens(self):
        buffer = io.StringIO()
        code = golden.main(["cold-start", "--golden-dir", str(GOLDEN_DIR)], out=buffer)
        assert code == 0
        assert "ok   cold-start" in buffer.getvalue()

    def test_main_fails_on_missing_golden(self, tmp_path):
        buffer = io.StringIO()
        code = golden.main(["cold-start", "--golden-dir", str(tmp_path)], out=buffer)
        assert code == 1
        assert "FAIL cold-start" in buffer.getvalue()

    def test_main_update_writes_files(self, tmp_path):
        buffer = io.StringIO()
        code = golden.main(
            ["cold-start", "--update", "--golden-dir", str(tmp_path)], out=buffer
        )
        assert code == 0
        digest = json.loads((tmp_path / "cold-start.json").read_text())
        assert digest["scenario"] == "cold-start"
        assert digest["seed"] == golden.GOLDEN_SEED
        assert digest["scale"] == golden.GOLDEN_SCALE
