"""Tests for the declarative scenario layer: spec, library, runner, CLI verbs.

Every library scenario is exercised at a strongly reduced scale so the whole
module stays fast while still running the full pipeline (topology → workload
→ systems → metrics) end to end, and every scenario is checked to be
byte-for-byte deterministic for a fixed seed.
"""

import dataclasses
import io
import json

import pytest

from repro import cli
from repro.experiments.driver import ExperimentSetup
from repro.scenarios import (
    ChurnProfile,
    ScenarioRunner,
    ScenarioSpec,
    get_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    scenario_names,
    unregister_scenario,
)

#: scale used for the per-scenario smoke/determinism runs (keep them fast)
TINY_SCALE = 0.1

EXPECTED_LIBRARY = {
    "paper-default",
    "flash-crowd",
    "heavy-churn",
    "cold-start",
    "squirrel-head-to-head",
    "large-catalog",
    "multi-locality",
    "gossip-starved",
    # scenario-program workloads (phased / faulted / cache-bounded)
    "adversarial-hotspots",
    "diurnal-cycle",
    "correlated-failures",
    "cache-bounded-peers",
}


class TestScenarioSpec:
    def test_invalid_system_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            ScenarioSpec(name="bad", systems=("flower", "akamai"))

    def test_duplicate_systems_rejected(self):
        with pytest.raises(ValueError, match="must not repeat"):
            ScenarioSpec(name="bad", systems=("flower", "flower"))

    def test_invalid_population_rejected_eagerly(self):
        # Validation of the composed configs happens at spec construction.
        with pytest.raises(ValueError):
            ScenarioSpec(name="bad", active_websites=50, num_websites=10)

    def test_negative_churn_rejected(self):
        with pytest.raises(ValueError):
            ChurnProfile(content_failures_per_hour=-1.0)

    def test_churn_with_squirrel_rejected(self):
        # Squirrel has no churn injection; a churned head-to-head would be
        # an unfair comparison presented as same-conditions.
        with pytest.raises(ValueError, match="churn profiles only apply"):
            ScenarioSpec(
                name="bad",
                systems=("flower", "squirrel"),
                churn=ChurnProfile(content_failures_per_hour=1.0),
            )

    def test_to_setup_mirrors_the_spec(self):
        spec = get_scenario("paper-default")
        setup = spec.to_setup()
        assert isinstance(setup, ExperimentSetup)
        assert setup.flower.num_websites == spec.num_websites
        assert setup.flower.simulation_duration_s == spec.duration_s
        assert setup.flower.gossip.gossip_period_s == spec.gossip_period_s
        assert setup.topology.num_hosts == spec.num_hosts
        assert setup.workload.query_rate_per_s == spec.query_rate_per_s
        assert setup.seed == spec.seed
        assert setup.squirrel.metrics_window_s == setup.flower.metrics_window_s

    def test_to_setup_seed_override(self):
        setup = get_scenario("paper-default").to_setup(seed=9)
        assert setup.seed == 9
        assert setup.flower.seed == 9

    def test_scaled_preserves_ratios_and_validity(self):
        for spec in iter_scenarios():
            small = spec.scaled(TINY_SCALE)
            assert small.num_hosts < spec.num_hosts
            assert small.duration_s <= spec.duration_s
            assert small.active_websites == spec.active_websites
            assert small.query_rate_per_s == spec.query_rate_per_s
            assert small.gossip_period_s == spec.gossip_period_s
            small.to_setup()  # must still validate

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            get_scenario("paper-default").scaled(0.0)

    def test_locality_bits_cover_the_localities(self):
        spec = get_scenario("multi-locality")
        assert 2 ** spec.locality_bits() >= spec.num_localities

    def test_to_dict_is_json_serialisable(self):
        payload = json.dumps(get_scenario("multi-locality").to_dict())
        assert "multi-locality" in payload


class TestLibrary:
    def test_expected_scenarios_present(self):
        assert EXPECTED_LIBRARY <= set(scenario_names())
        assert len(scenario_names()) >= 8

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError, match="known scenarios"):
            get_scenario("does-not-exist")

    def test_register_and_unregister(self):
        spec = dataclasses.replace(get_scenario("paper-default"), name="tmp-test-scenario")
        try:
            register_scenario(spec)
            assert get_scenario("tmp-test-scenario") is spec
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(spec)
        finally:
            unregister_scenario("tmp-test-scenario")
        assert "tmp-test-scenario" not in scenario_names()

    def test_only_head_to_head_runs_squirrel(self):
        assert get_scenario("squirrel-head-to-head").systems == ("flower", "squirrel")
        assert get_scenario("heavy-churn").churn.is_enabled


@pytest.mark.parametrize("name", sorted(EXPECTED_LIBRARY))
def test_every_scenario_runs_and_is_deterministic(name):
    """Each library scenario runs at reduced scale; two runs agree exactly."""
    spec = get_scenario(name).scaled(TINY_SCALE)
    runner = ScenarioRunner(spec, seed=7)
    first = runner.run()
    second = run_scenario(spec, seed=7)

    assert first.to_dict() == second.to_dict()  # byte-for-byte determinism

    for system in spec.systems:
        metrics = first[system].metrics
        assert metrics["num_queries"] > 50
        assert 0.0 <= metrics["hit_ratio"] <= 1.0
        assert metrics["average_lookup_latency_ms"] >= 0.0
        assert set(first[system].phases) == {"warmup", "steady"}
        assert first[system].series["hit_ratio_cumulative"]

    if spec.churn.is_enabled:
        # Churn scenarios must actually injure the system: dead content
        # peers and/or directory replacements prove the injector ran.
        flower_system = runner.experiment.last_flower_system
        assert flower_system is not None
        dead_peers = sum(
            1 for peer in flower_system._content_peers.values() if not peer.alive  # noqa: SLF001
        )
        assert dead_peers + flower_system.directory_replacements > 0


def test_different_seeds_produce_different_results():
    spec = get_scenario("paper-default").scaled(TINY_SCALE)
    first = run_scenario(spec, seed=1)
    second = run_scenario(spec, seed=2)
    assert first.to_dict() != second.to_dict()


def test_digest_is_seed_and_name_stamped():
    spec = get_scenario("cold-start").scaled(TINY_SCALE)
    digest = run_scenario(spec, seed=5).metrics_digest()
    assert digest["scenario"] == "cold-start"
    assert digest["seed"] == 5
    assert "series" not in digest["systems"]["flower"]


class TestScenarioCli:
    def run_cli(self, args) -> str:
        buffer = io.StringIO()
        assert cli.main(args, out=buffer) == 0
        return buffer.getvalue()

    def test_scenarios_list_names_every_scenario(self):
        output = self.run_cli(["scenarios", "list"])
        for name in EXPECTED_LIBRARY:
            assert name in output

    def test_scenarios_run_prints_metrics_json(self):
        output = self.run_cli(
            ["scenarios", "run", "cold-start", "--seed", "3", "--scale", str(TINY_SCALE)]
        )
        digest = json.loads(output)
        assert digest["scenario"] == "cold-start"
        assert digest["seed"] == 3
        assert "hit_ratio" in digest["systems"]["flower"]["metrics"]

    def test_scenarios_run_is_deterministic_across_invocations(self):
        args = ["scenarios", "run", "cold-start", "--seed", "42", "--scale", str(TINY_SCALE)]
        assert self.run_cli(args) == self.run_cli(args)

    def test_scenarios_run_table_output(self):
        output = self.run_cli(
            ["scenarios", "run", "cold-start", "--scale", str(TINY_SCALE), "--table"]
        )
        assert "cold-start — flower" in output
        assert "hit_ratio" in output

    def test_golden_flags_reject_overridden_seed_and_scale(self, capsys):
        code = cli.main(
            ["scenarios", "run", "cold-start", "--check-golden", "--seed", "7"],
            out=io.StringIO(),
        )
        assert code == 2
        assert "pinned" in capsys.readouterr().err

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        code = cli.main(["scenarios", "run", "no-such-thing"], out=io.StringIO())
        assert code == 2
        assert "known scenarios" in capsys.readouterr().err

    def test_adhoc_setup_flows_through_the_spec_layer(self):
        args = cli.build_parser().parse_args(
            ["run", "--websites", "6", "--active-websites", "2", "--seed", "5"]
        )
        setup = cli.setup_from_args(args)
        assert setup.flower.num_websites == 6
        assert setup.seed == 5


class TestScenarioTiers:
    def test_default_tier_is_standard(self):
        assert get_scenario("paper-default").tier == "standard"

    def test_full_scale_scenario_is_registered_in_the_paper_tier(self):
        spec = get_scenario("paper-default-full-scale")
        assert spec.tier == "paper-scale"
        assert spec.num_hosts == 5000
        assert spec.duration_s == 24 * 3600.0
        assert spec.query_rate_per_s == 6.0
        assert spec.num_websites == 100
        assert spec.queue_backend == "calendar"
        assert spec.compact_metrics

    def test_tier_filtering(self):
        standard = scenario_names(tier="standard")
        paper = scenario_names(tier="paper-scale")
        assert "paper-default" in standard
        assert "paper-default-full-scale" not in standard
        assert "paper-default-full-scale" in paper
        assert sorted(standard + paper) == scenario_names()

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):
            scenario_names(tier="galactic")
        with pytest.raises(ValueError, match="unknown tier"):
            dataclasses.replace(get_scenario("paper-default"), tier="galactic")

    def test_unknown_queue_backend_rejected(self):
        with pytest.raises(ValueError, match="queue backend"):
            dataclasses.replace(get_scenario("paper-default"), queue_backend="btree")

    def test_full_scale_matches_the_legacy_paper_scale_setup(self):
        """paper_default_full_scale() stays the Table 1 ExperimentSetup."""
        from repro.experiments.driver import ExperimentSetup
        from repro.scenarios.library import paper_default_full_scale

        via_spec = paper_default_full_scale(seed=42)
        legacy = ExperimentSetup.paper_scale(seed=42)
        assert via_spec.flower == legacy.flower
        assert via_spec.topology == legacy.topology
        assert via_spec.workload == legacy.workload
        assert via_spec.seed == legacy.seed

    def test_run_all_defaults_exclude_the_paper_tier(self):
        from repro.scenarios.parallel import resolve_names

        names = resolve_names(None)
        assert "paper-default-full-scale" not in names
        assert "paper-default" in names
        # Explicit naming still works.
        assert resolve_names(["paper-default-full-scale"]) == ["paper-default-full-scale"]


class TestBackendEquivalence:
    def test_calendar_and_compact_modes_reproduce_the_heap_digest(self):
        """The fast-path run modes are byte-identical, not merely close."""
        spec = get_scenario("paper-default").scaled(TINY_SCALE)
        baseline = ScenarioRunner(spec, seed=11).run().metrics_digest()
        fast = ScenarioRunner(
            dataclasses.replace(spec, queue_backend="calendar", compact_metrics=True),
            seed=11,
        ).run().metrics_digest()
        assert fast == baseline
