"""Unit tests for the Squirrel baseline."""

import pytest

from repro.baselines.squirrel import Squirrel, SquirrelConfig, SquirrelStrategy
from repro.metrics.collectors import QueryOutcome
from repro.network.topology import Topology, TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.assignment import ResolvedQuery


@pytest.fixture
def topology() -> Topology:
    return Topology(
        TopologyConfig(num_hosts=150, num_localities=3, locality_weights=(1.0, 1.0, 1.0)),
        RandomStreams(19),
    )


@pytest.fixture
def squirrel(topology: Topology) -> Squirrel:
    system = Squirrel(SquirrelConfig(id_bits=16), Simulator(seed=2), topology)
    system.bootstrap()
    return system


def query(query_id: int, host: int, object_index: int = 0, time: float = 0.0) -> ResolvedQuery:
    return ResolvedQuery(
        query_id=query_id,
        time=time,
        website="site-000.example.org",
        object_id=f"http://site-000.example.org/object/{object_index}",
        locality=0,
        client_host=host,
        is_new_client=True,
    )


class TestSquirrelConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"id_bits": 4},
            {"directory_capacity": 0},
            {"cache_capacity": 0},
            {"metrics_window_s": 0},
            {"max_redirection_attempts": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SquirrelConfig(**kwargs)


class TestDirectoryStrategy:
    def test_requires_bootstrap(self, topology):
        system = Squirrel(SquirrelConfig(), Simulator(seed=1), topology)
        with pytest.raises(RuntimeError):
            system.handle_query(query(0, 0))

    def test_first_query_misses_and_registers_downloader(self, squirrel):
        record = squirrel.handle_query(query(0, host=0))
        assert record.outcome is QueryOutcome.SERVER_MISS
        assert record.provider is None
        assert squirrel.num_peers == 1
        # The requester is now a downloader pointer for the object.
        second = squirrel.handle_query(query(1, host=1))
        assert second.outcome is QueryOutcome.PEER_HIT

    def test_second_requester_is_redirected_to_first_downloader(self, squirrel):
        squirrel.handle_query(query(0, host=0))
        record = squirrel.handle_query(query(1, host=1))
        assert record.provider == "sq@0"
        assert record.transfer_distance_ms == squirrel.topology.latency_ms(1, 0)

    def test_repeat_query_served_from_own_cache(self, squirrel):
        squirrel.handle_query(query(0, host=0))
        record = squirrel.handle_query(query(1, host=0))
        assert record.outcome is QueryOutcome.PEER_HIT
        assert record.lookup_latency_ms == 0.0
        assert record.overlay_hops == 0

    def test_lookup_latency_accumulates_dht_hops(self, squirrel):
        for host in range(20):
            squirrel.handle_query(query(host, host=host, object_index=host))
        record = squirrel.handle_query(query(99, host=30, object_index=5))
        assert record.overlay_hops >= 1
        assert record.lookup_latency_ms > 0

    def test_every_query_routes_through_dht(self, squirrel):
        """Squirrel has no locality shortcut: non-cached queries always pay DHT hops."""
        squirrel.handle_query(query(0, host=0, object_index=7))
        for i, host in enumerate(range(1, 10)):
            record = squirrel.handle_query(query(i + 1, host=host, object_index=7))
            assert record.outcome is QueryOutcome.PEER_HIT
            assert record.lookup_latency_ms > 0

    def test_directory_capacity_bounds_pointers(self, topology):
        system = Squirrel(SquirrelConfig(id_bits=16, directory_capacity=2),
                          Simulator(seed=3), topology)
        system.bootstrap()
        for host in range(5):
            system.handle_query(query(host, host=host, object_index=0))
        pointers = list(system._directories.values())  # noqa: SLF001
        assert pointers and all(len(p) <= 2 for p in pointers)

    def test_stale_pointer_is_dropped_after_failure(self, squirrel):
        squirrel.handle_query(query(0, host=0))
        provider = squirrel.peer_for_host(0)
        provider.alive = False
        record = squirrel.handle_query(query(1, host=1))
        assert record.outcome is QueryOutcome.SERVER_MISS
        assert record.redirection_failures >= 1

    def test_metrics_recorded_per_query(self, squirrel):
        squirrel.handle_query(query(0, host=0))
        squirrel.handle_query(query(1, host=1))
        assert squirrel.metrics.num_queries == 2
        assert 0 < squirrel.metrics.hit_ratio < 1


class TestHomeStoreStrategy:
    @pytest.fixture
    def home_store(self, topology) -> Squirrel:
        system = Squirrel(
            SquirrelConfig(id_bits=16, strategy=SquirrelStrategy.HOME_STORE),
            Simulator(seed=4),
            topology,
        )
        system.bootstrap()
        return system

    def test_home_node_serves_after_first_miss(self, home_store):
        home_store.handle_query(query(0, host=0))
        record = home_store.handle_query(query(1, host=1))
        assert record.outcome is QueryOutcome.PEER_HIT
        assert record.provider is not None and record.provider.startswith("sq@")

    def test_home_node_caches_the_object_itself(self, home_store):
        home_store.handle_query(query(0, host=0))
        record = home_store.handle_query(query(1, host=1))
        provider_host = int(record.provider.split("@")[1])
        provider = home_store.peer_for_host(provider_host)
        assert provider.has_object("http://site-000.example.org/object/0")


class TestMembership:
    def test_peers_join_on_first_query_only(self, squirrel):
        squirrel.handle_query(query(0, host=0))
        squirrel.handle_query(query(1, host=0))
        assert squirrel.num_peers == 1
        squirrel.handle_query(query(2, host=1))
        assert squirrel.num_peers == 2

    def test_node_ids_are_unique(self, squirrel):
        for host in range(40):
            squirrel.handle_query(query(host, host=host))
        node_ids = [peer.node_id for peer in squirrel._peers.values()]  # noqa: SLF001
        assert len(node_ids) == len(set(node_ids))
