"""Tests for the reachability layer: models, the delivery gate, recovery.

Covers the pure models (`repro.network.reachability`), the FlowerCDN
delivery gate (suspicion backoff, graceful degradation, reconciliation) and
the two golden-pinned invariants of the subsystem:

* with no model attached — or with a non-emitting adapter such as the
  re-routed gossip-loss filter — digests stay byte-identical to the
  pre-gate code;
* the partition-heal-reconcile golden records an actual dip-and-recovery.
"""

import random

import pytest

from repro.core.config import FlowerConfig, GossipConfig
from repro.core.system import FlowerCDN
from repro.metrics.collectors import QueryOutcome
from repro.network.reachability import (
    MESSAGE_KINDS,
    DeliveryStats,
    HostOutage,
    LinkLoss,
    LocalityPartition,
    ReachabilityModel,
)
from repro.network.topology import Topology, TopologyConfig
from repro.scenarios.golden import compute_golden_digest, load_golden
from repro.scenarios.library import get_scenario
from repro.scenarios.models import (
    ModelRef,
    register_fault_model,
    unregister_fault_model,
)
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import replace
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.assignment import ResolvedQuery

TINY_SCALE = 0.1


# -- pure models --------------------------------------------------------------


def locality_of_map(mapping):
    return lambda host: mapping[host]


class TestLocalityPartition:
    def partition(self, asymmetric=False):
        # hosts 0-1 in locality 0 (partitioned), hosts 2-3 in locality 1
        return LocalityPartition(
            episodes=((100.0, 200.0),),
            localities=frozenset({0}),
            locality_of=locality_of_map({0: 0, 1: 0, 2: 1, 3: 1}),
            asymmetric=asymmetric,
        )

    def test_blocks_cross_boundary_only_during_episode(self):
        model = self.partition()
        assert model.allows("gossip", 0, 2, None, None, 50.0)
        assert not model.allows("gossip", 0, 2, None, None, 150.0)
        assert not model.allows("gossip", 2, 0, None, None, 150.0)
        assert model.allows("gossip", 0, 2, None, None, 250.0)

    def test_intra_partition_and_outside_traffic_unaffected(self):
        model = self.partition()
        assert model.allows("keepalive", 0, 1, None, None, 150.0)
        assert model.allows("keepalive", 2, 3, None, None, 150.0)

    def test_episodes_are_half_open(self):
        # A heal action scheduled exactly at the episode end must already
        # see the network whole.
        model = self.partition()
        assert not model.allows("push", 0, 2, None, None, 100.0)
        assert model.allows("push", 0, 2, None, None, 200.0)

    def test_asymmetric_blocks_only_outbound(self):
        model = self.partition(asymmetric=True)
        assert not model.allows("query", 0, 2, None, None, 150.0)
        assert model.allows("query", 2, 0, None, None, 150.0)

    def test_fault_windows_are_the_episodes(self):
        assert self.partition().fault_windows() == ((100.0, 200.0),)

    def test_rejects_bad_episodes_and_empty_localities(self):
        with pytest.raises(ValueError, match="start < end"):
            LocalityPartition(((200.0, 100.0),), frozenset({0}), lambda h: 0)
        with pytest.raises(ValueError, match="at least one locality"):
            LocalityPartition(((0.0, 1.0),), frozenset(), lambda h: 0)


class TestHostOutage:
    def test_blocks_messages_touching_a_down_host(self):
        model = HostOutage(((7, 100.0, 200.0),))
        assert model.allows("summary", 7, 8, None, None, 50.0)
        assert not model.allows("summary", 7, 8, None, None, 150.0)
        assert not model.allows("summary", 8, 7, None, None, 150.0)
        assert model.allows("summary", 8, 9, None, None, 150.0)
        assert model.allows("summary", 7, 8, None, None, 200.0)

    def test_fault_windows_merge_and_sort_all_spans(self):
        model = HostOutage(((9, 300.0, 400.0), (7, 100.0, 200.0)))
        assert model.fault_windows() == ((100.0, 200.0), (300.0, 400.0))

    def test_rejects_inverted_windows(self):
        with pytest.raises(ValueError, match="start < end"):
            HostOutage(((1, 5.0, 5.0),))


class TestLinkLoss:
    def test_total_loss_blocks_everything(self):
        model = LinkLoss(1.0, random.Random(1))
        assert not any(
            model.allows(kind, 0, 1, None, None, 0.0) for kind in MESSAGE_KINDS
        )

    def test_zero_loss_blocks_nothing(self):
        model = LinkLoss(0.0, random.Random(1))
        assert all(
            model.allows(kind, 0, 1, None, None, 0.0) for kind in MESSAGE_KINDS
        )

    def test_kind_filter_never_draws_for_other_kinds(self):
        model = LinkLoss(1.0, random.Random(1), kinds=("redirect",))
        assert model.allows("gossip", 0, 1, None, None, 0.0)
        assert not model.allows("redirect", 0, 1, None, None, 0.0)

    def test_rejects_bad_probability_and_unknown_kind(self):
        with pytest.raises(ValueError, match="drop_probability"):
            LinkLoss(1.5, random.Random(1))
        with pytest.raises(ValueError, match="unknown message kind"):
            LinkLoss(0.5, random.Random(1), kinds=("carrier-pigeon",))


class TestDeliveryStats:
    def test_counting_and_totals(self):
        stats = DeliveryStats()
        stats.count_delivered("gossip")
        stats.count_delivered("gossip")
        stats.count_blocked("redirect")
        assert stats.total_delivered == 2
        assert stats.total_blocked == 1
        document = stats.to_dict()
        assert document["delivered"] == {"gossip": 2}
        assert document["blocked"] == {"redirect": 1}


# -- the system-level delivery gate -------------------------------------------


class _BlockKinds(ReachabilityModel):
    """Test model: block the given kinds unconditionally."""

    def __init__(self, *kinds: str) -> None:
        self._kinds = frozenset(kinds)

    def allows(self, kind, src_host, dst_host, src_id, dst_id, now) -> bool:
        return kind not in self._kinds


class _SilentAllowAll(ReachabilityModel):
    """Always-allow model that, like the gossip-loss adapter, emits no
    resilience metrics — runs under it must stay byte-identical."""

    emits_metrics = False


@pytest.fixture
def config() -> FlowerConfig:
    return FlowerConfig(
        num_websites=3,
        active_websites=2,
        objects_per_website=25,
        num_localities=3,
        max_content_overlay_size=8,
        locality_bits=2,
        website_bits=12,
        content_miss_fallback="directory",
        gossip=GossipConfig(
            gossip_period_s=60.0, view_size=6, gossip_length=3, push_threshold=0.2,
            keepalive_period_s=60.0, dead_age=3,
        ),
        simulation_duration_s=3600.0,
        metrics_window_s=300.0,
    )


@pytest.fixture
def system(config: FlowerConfig) -> FlowerCDN:
    topology = Topology(
        TopologyConfig(
            num_hosts=300,
            num_localities=config.num_localities,
            locality_weights=(1.0, 1.0, 1.0),
        ),
        RandomStreams(31),
    )
    sim = Simulator(seed=5, end_time=config.simulation_duration_s)
    cdn = FlowerCDN(config, sim, topology)
    cdn.bootstrap()
    return cdn


def enroll_peer(system: FlowerCDN, locality: int = 0):
    website = system.catalog.websites[0].name
    host = next(
        h for h in system.topology.hosts_in_locality(locality)
        if h not in system.reserved_hosts
    )
    system.handle_query(
        ResolvedQuery(
            query_id=0,
            time=0.0,
            website=website,
            object_id=system.catalog.websites[0].object_id(0),
            locality=locality,
            client_host=host,
            is_new_client=True,
        )
    )
    return system.content_peer(f"c({website})@{host}")


class TestDeliveryGate:
    def test_attach_detach_round_trip(self, system: FlowerCDN):
        model = ReachabilityModel()
        system.attach_reachability(model)
        assert system.reachability is model
        assert system.detach_reachability() is model
        assert system.reachability is None
        # stats survive detachment for end-of-run reporting
        assert system.delivery_stats is not None

    def test_double_attach_rejected(self, system: FlowerCDN):
        system.attach_reachability(ReachabilityModel())
        with pytest.raises(RuntimeError, match="already attached"):
            system.attach_reachability(ReachabilityModel())

    def test_suspicion_backoff_doubles_and_saturates(self, system: FlowerCDN):
        base = system.config.suspicion_backoff_s
        cap = system.config.suspicion_backoff_max_s
        for _ in range(20):
            system._suspect("c(x)@1", 0.0)
        assert system._suspicion_until["c(x)@1"] == cap
        system._suspect("c(y)@2", 10.0)
        system._suspect("c(y)@2", 10.0)
        assert system._suspicion_until["c(y)@2"] == 10.0 + 2 * base
        system._clear_suspicion("c(y)@2")
        assert "c(y)@2" not in system._suspicion_until
        assert "c(y)@2" not in system._suspicion_streak

    def test_unreachable_directory_degrades_to_server_without_replacement(
        self, system: FlowerCDN
    ):
        peer = enroll_peer(system)
        website = peer.website
        directory_before = system.directory_for(website, 0)
        system.attach_reachability(_BlockKinds("query", "redirect"))
        record = system.handle_query(
            ResolvedQuery(
                query_id=1,
                time=10.0,
                website=website,
                object_id=system.catalog.websites[0].object_id(1),
                locality=0,
                client_host=peer.host_id,
                is_new_client=False,
            )
        )
        assert record.outcome is QueryOutcome.SERVER_MISS
        assert record.lookup_latency_ms >= system.config.redirect_timeout_ms
        assert system.delivery_stats.server_fallbacks == 1
        # Graceful degradation: the directory is alive-but-unreachable and
        # must NOT be replaced via the Section 5.2 protocol.
        directory_after = system.directory_for(website, 0)
        assert directory_after is directory_before
        assert directory_after.alive
        assert system.directory_replacements == 0

    def test_reconcile_counts_and_clears_suspicion(self, system: FlowerCDN):
        enroll_peer(system)
        system.attach_reachability(ReachabilityModel())
        system._suspect("c(x)@1", 0.0)
        system.reconcile((0,))
        assert system.delivery_stats.reconciliations == 1
        assert not system._suspicion_until
        # reconciliation keepalives went through the gate
        assert system.delivery_stats.delivered.get("keepalive", 0) >= 1


# -- end-to-end invariants ----------------------------------------------------


class TestGateInvariants:
    def test_non_emitting_allow_all_model_is_byte_identical(self):
        class _AlwaysReachable:
            """Attaches the silent allow-all model for the whole run."""

            def attach(self, system, spec):
                class _Injector:
                    def __init__(self):
                        self.log = []

                    def start(self):
                        system.attach_reachability(_SilentAllowAll())

                    def stop(self):
                        system.detach_reachability()

                return _Injector()

        register_fault_model("test-always-reachable", _AlwaysReachable)
        try:
            base = get_scenario("paper-default").scaled(TINY_SCALE)
            gated = replace(base, fault_model=ModelRef.of("test-always-reachable"))
            baseline = run_scenario(base, seed=7).metrics_digest()
            through_gate = run_scenario(gated, seed=7).metrics_digest()
            through_gate["scenario"] = baseline["scenario"]
            assert through_gate == baseline
        finally:
            unregister_fault_model("test-always-reachable")

    def test_gossip_lossy_golden_still_byte_identical(self):
        # Satellite pin: PR 5's gossip-loss filter now routes through the
        # delivery gate; its committed golden must match without refresh.
        assert compute_golden_digest("gossip-lossy") == load_golden("gossip-lossy")

    def test_stationary_link_loss_reports_counters_without_windows(self):
        spec = replace(
            get_scenario("paper-default").scaled(TINY_SCALE),
            fault_model=ModelRef.of(
                "link-loss", drop_probability=1.0, kinds=("redirect",)
            ),
        )
        metrics = run_scenario(spec, seed=7).flower.metrics
        assert metrics["resilience_messages_blocked"] > 0
        assert metrics["resilience_retries_exhausted"] > 0
        assert metrics["resilience_time_to_recover_s"] == -1.0
        assert metrics["resilience_hit_ratio_pre_fault"] == -1.0

    def test_partition_heal_golden_shows_dip_and_recovery(self):
        metrics = load_golden("partition-heal-reconcile")["systems"]["flower"]["metrics"]
        assert metrics["resilience_reconciliations"] == 1
        assert metrics["resilience_messages_blocked"] > 0
        # availability dips inside the fault window...
        assert (
            metrics["resilience_availability_during_fault"]
            < metrics["resilience_hit_ratio_pre_fault"]
        )
        # ...and the hit ratio recovers within a bounded time after the heal
        assert metrics["resilience_time_to_recover_s"] >= 0.0

    def test_faulted_runs_are_deterministic(self):
        spec = get_scenario("partition-heal-reconcile").scaled(TINY_SCALE)
        first = run_scenario(spec, seed=11).metrics_digest()
        second = run_scenario(spec, seed=11).metrics_digest()
        assert first == second
