"""Tests for parallel scenario execution (multiprocessing over the registry)."""

import io

import pytest

from repro import cli
from repro.scenarios import parallel


#: small, fast scenarios used to keep the multiprocessing tests cheap
FAST = ["cold-start", "paper-default"]
#: the scale the fast tests run at (well above every scaling floor)
SCALE = 0.25


class TestRunScenarios:
    def test_parallel_matches_sequential(self):
        sequential = parallel.run_scenarios(FAST, jobs=1, scale=SCALE)
        parallelised = parallel.run_scenarios(FAST, jobs=2, scale=SCALE)
        assert sequential == parallelised

    def test_results_keyed_and_ordered_by_request(self):
        digests = parallel.run_scenarios(FAST, jobs=1, scale=SCALE)
        assert list(digests) == FAST
        for name, digest in digests.items():
            assert digest["scenario"] == name
            assert "systems" in digest

    def test_seed_override_propagates(self):
        digests = parallel.run_scenarios(["cold-start"], jobs=1, seed=7, scale=SCALE)
        assert digests["cold-start"]["seed"] == 7

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            parallel.run_scenarios(["no-such-scenario"], jobs=1)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            parallel.run_scenarios(FAST, jobs=0)

    def test_default_jobs_positive(self):
        assert parallel.default_jobs() >= 1

    def test_default_jobs_respects_cpu_affinity(self):
        import os

        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no sched_getaffinity")
        assert parallel.default_jobs() == max(1, len(os.sched_getaffinity(0)))


def _double(x):
    return 2 * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom on three")
    return x


class TestMapTasks:
    def test_sequential_and_parallel_agree(self):
        tasks = list(range(8))
        assert parallel.map_tasks(_double, tasks, jobs=1) == [
            2 * x for x in tasks
        ]
        assert parallel.map_tasks(_double, tasks, jobs=2) == [
            2 * x for x in tasks
        ]

    def test_chunksize_preserves_order(self):
        tasks = list(range(16))
        chunked = parallel.map_tasks(_double, tasks, jobs=2, chunksize=4)
        assert chunked == [2 * x for x in tasks]

    def test_invalid_chunksize_rejected(self):
        with pytest.raises(ValueError):
            parallel.map_tasks(_double, [1, 2], jobs=2, chunksize=0)

    def test_worker_exception_identifies_task_sequential(self):
        with pytest.raises(parallel.TaskError) as excinfo:
            parallel.map_tasks(_fail_on_three, [1, 2, 3, 4], jobs=1)
        assert excinfo.value.index == 2
        assert "3" in excinfo.value.task_repr
        assert "boom on three" in str(excinfo.value)

    def test_worker_exception_identifies_task_parallel(self):
        with pytest.raises(parallel.TaskError) as excinfo:
            parallel.map_tasks(_fail_on_three, [0, 1, 2, 3], jobs=2)
        assert excinfo.value.index == 3
        assert "ValueError" in excinfo.value.cause_text


class TestCheckGoldens:
    def test_all_goldens_pass_in_parallel(self):
        results = parallel.check_goldens(jobs=2)
        failing = {name: m for name, m in results.items() if m}
        assert not failing, failing


class TestCli:
    def _run(self, args):
        buffer = io.StringIO()
        code = cli.main(args, out=buffer)
        return code, buffer.getvalue()

    def test_run_all_prints_digest_per_scenario(self):
        code, output = self._run(
            ["scenarios", "run", "--all", "--jobs", "1", "--scale", str(SCALE)]
        )
        assert code == 0
        assert "paper-default" in output
        assert "gossip-starved" in output

    def test_all_with_name_rejected(self):
        code = cli.main(
            ["scenarios", "run", "paper-default", "--all"], out=io.StringIO()
        )
        assert code == 2

    def test_jobs_without_all_rejected(self):
        code = cli.main(
            ["scenarios", "run", "paper-default", "--jobs", "2"], out=io.StringIO()
        )
        assert code == 2

    def test_missing_name_without_all_rejected(self):
        code = cli.main(["scenarios", "run"], out=io.StringIO())
        assert code == 2

    def test_check_golden_all(self):
        code, output = self._run(
            ["scenarios", "run", "--all", "--check-golden", "--jobs", "1"]
        )
        assert code == 0
        assert output.count("ok") >= 8
