"""Integration: the paper's qualitative head-to-head claims, locked in.

Runs the ``squirrel-head-to-head`` scenario (the paper-default workload with
both systems over the *same* resolved trace) once at a moderate scale and
asserts the Section 6 comparison figures qualitatively:

* Figure 6 — Squirrel's cumulative hit ratio converges faster and finishes
  at or above Flower-CDN's (the paper reports a ≈13 % gap after 24 h), while
  Flower-CDN still relieves the origin server at steady state;
* Figure 7 — Flower-CDN's average lookup latency is strictly below
  Squirrel's (the paper reports ≈9×);
* Figure 8 — Flower-CDN's average transfer distance is strictly below
  Squirrel's (the paper reports ≈2×), because content is served from the
  requester's own locality.
"""

import pytest

from repro.scenarios import get_scenario, run_scenario


@pytest.fixture(scope="module")
def head_to_head():
    return run_scenario(get_scenario("squirrel-head-to-head").scaled(0.25), seed=42)


def test_both_systems_process_the_same_trace(head_to_head):
    flower = head_to_head.flower.metrics
    squirrel = head_to_head.squirrel.metrics
    assert flower["num_queries"] == squirrel["num_queries"] > 1000


def test_fig6_hit_ratio_shape(head_to_head):
    flower = head_to_head.flower
    squirrel = head_to_head.squirrel

    # Squirrel searches the whole overlay, so it converges faster/higher.
    assert squirrel.metrics["hit_ratio"] >= flower.metrics["hit_ratio"]

    # Both cumulative curves rise, and Flower-CDN's steady-state hit ratio
    # strictly exceeds its warm-up hit ratio and stays useful (> 0.5).
    for system in (flower, squirrel):
        curve = [value for _, value in system.series["hit_ratio_cumulative"]]
        assert curve[-1] > curve[0]
    assert flower.phases["steady"]["hit_ratio"] > flower.phases["warmup"]["hit_ratio"]
    assert flower.phases["steady"]["hit_ratio"] > 0.5


def test_fig7_flower_lookup_latency_strictly_beats_squirrel(head_to_head):
    flower = head_to_head.flower.metrics
    squirrel = head_to_head.squirrel.metrics
    assert flower["average_lookup_latency_ms"] < squirrel["average_lookup_latency_ms"]
    # The steady-state gap is substantial (paper: ≈9×; require ≥ 2× here).
    assert (
        head_to_head.flower.phases["steady"]["lookup_latency_ms"] * 2.0
        < head_to_head.squirrel.phases["steady"]["lookup_latency_ms"]
    )


def test_fig8_flower_transfer_distance_strictly_beats_squirrel(head_to_head):
    flower = head_to_head.flower.metrics
    squirrel = head_to_head.squirrel.metrics
    assert (
        flower["average_transfer_distance_ms"] < squirrel["average_transfer_distance_ms"]
    )


def test_locality_hits_dominate_at_steady_state(head_to_head):
    """Flower-CDN's wins come from serving within the requester's locality."""
    flower = head_to_head.flower.metrics
    assert flower["fraction_local_overlay_hit"] > flower.get(
        "fraction_remote_overlay_hit", 0.0
    )
