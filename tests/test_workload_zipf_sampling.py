"""Statistical and equivalence tests for the O(1) Zipf sampling strategies."""

import bisect
import random

import pytest

from repro.workload.zipf import ZipfSampler


class TestAliasStatistics:
    def test_alias_matches_analytic_masses_chi_squared(self):
        """Alias-method draws must follow the analytic probability() masses.

        Chi-squared goodness of fit with dof = n - 1 = 49; the statistic
        concentrates around dof with standard deviation sqrt(2*dof) ~ 9.9, so
        a threshold of dof + 5 sigma ~ 98.5 gives a deterministic test (fixed
        seed) with a wide safety margin against false failures.
        """
        population = 50
        draws = 200_000
        sampler = ZipfSampler(population, alpha=0.8, method="alias")
        rng = random.Random(7)
        counts = [0] * population
        for rank in sampler.sample_many(rng, draws):
            counts[rank] += 1
        chi_squared = sum(
            (counts[rank] - draws * sampler.probability(rank)) ** 2
            / (draws * sampler.probability(rank))
            for rank in range(population)
        )
        assert chi_squared < 98.5, f"chi-squared {chi_squared:.1f} too large for dof 49"

    def test_alias_uniform_case(self):
        sampler = ZipfSampler(4, alpha=0.0, method="alias")
        rng = random.Random(5)
        counts = [0] * 4
        for rank in sampler.sample_many(rng, 40_000):
            counts[rank] += 1
        for count in counts:
            assert count == pytest.approx(10_000, rel=0.05)

    def test_alias_heavy_head(self):
        sampler = ZipfSampler(100, alpha=0.8, method="alias")
        rng = random.Random(3)
        ranks = sampler.sample_many(rng, 3000)
        top_ten = sum(1 for rank in ranks if rank < 10)
        assert top_ten / len(ranks) > 0.3

    def test_alias_singleton_population(self):
        sampler = ZipfSampler(1, alpha=0.8, method="alias")
        rng = random.Random(1)
        assert sampler.sample(rng) == 0


class TestCdfEquivalence:
    @pytest.mark.parametrize(
        "population,alpha", [(200, 0.8), (50, 1.1), (4, 0.0), (1, 0.8), (500, 0.7)]
    )
    def test_cdf_method_bit_identical_to_bisect(self, population, alpha):
        """The guide-table path must reproduce bisect_left draws exactly:
        the committed goldens are defined over this mapping."""
        sampler = ZipfSampler(population, alpha, method="cdf")
        cdf = sampler._cdf
        rng_fast, rng_reference = random.Random(123), random.Random(123)
        for _ in range(20_000):
            assert sampler.sample(rng_fast) == bisect.bisect_left(
                cdf, rng_reference.random()
            )

    def test_both_methods_consume_one_variate_per_draw(self):
        for method in ("alias", "cdf"):
            sampler = ZipfSampler(64, 0.8, method=method)
            rng = random.Random(42)
            sampler.sample_many(rng, 100)
            # After 100 draws the stream must sit exactly 100 variates in:
            # a fresh stream advanced by 100 raw draws agrees on the next one.
            reference = random.Random(42)
            for _ in range(100):
                reference.random()
            assert rng.random() == reference.random(), method

    def test_sample_many_equals_repeated_sample(self):
        for method in ("alias", "cdf"):
            sampler = ZipfSampler(80, 0.9, method=method)
            batched = sampler.sample_many(random.Random(9), 500)
            single_rng = random.Random(9)
            singles = [sampler.sample(single_rng) for _ in range(500)]
            assert list(batched) == singles, method


class TestValidation:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(10, method="magic")

    def test_method_property(self):
        assert ZipfSampler(10).method == "alias"
        assert ZipfSampler(10, method="cdf").method == "cdf"

    def test_probabilities_identical_across_methods(self):
        alias_sampler = ZipfSampler(30, 0.8, method="alias")
        cdf_sampler = ZipfSampler(30, 0.8, method="cdf")
        for rank in range(30):
            assert alias_sampler.probability(rank) == cdf_sampler.probability(rank)
