"""End-to-end integration tests exercising the whole stack against paper claims.

These run one small but complete experiment and assert the qualitative
findings of Section 6 (who wins, in which direction), which is what the
reproduction is expected to preserve.
"""

import pytest

from repro.experiments.driver import ExperimentRunner, ExperimentSetup
from repro.metrics.collectors import QueryOutcome


@pytest.fixture(scope="module")
def setup() -> ExperimentSetup:
    return ExperimentSetup.laptop_scale(
        seed=123,
        duration_s=2400.0,
        query_rate_per_s=1.5,
        num_websites=8,
        active_websites=2,
        objects_per_website=60,
        num_localities=3,
        max_content_overlay_size=20,
        num_hosts=400,
    )


@pytest.fixture(scope="module")
def runner(setup: ExperimentSetup) -> ExperimentRunner:
    return ExperimentRunner(setup)


@pytest.fixture(scope="module")
def flower(runner: ExperimentRunner):
    return runner.run_flower()


@pytest.fixture(scope="module")
def squirrel(runner: ExperimentRunner):
    return runner.run_squirrel()


class TestWorkloadIntegrity:
    def test_same_queries_for_both_systems(self, runner, flower, squirrel):
        assert flower.num_queries == squirrel.num_queries
        assert flower.num_queries == len(runner.resolved_queries())

    def test_only_active_websites_get_queries(self, runner, setup):
        websites = {q.website for q in runner.resolved_queries()}
        assert len(websites) == setup.workload.active_websites

    def test_clients_respect_the_overlay_cap(self, runner, setup):
        from collections import defaultdict

        clients = defaultdict(set)
        for q in runner.resolved_queries():
            clients[(q.website, q.locality)].add(q.client_host)
        assert all(
            len(hosts) <= setup.flower.max_content_overlay_size for hosts in clients.values()
        )


class TestPaperClaims:
    def test_flower_lookup_latency_is_much_lower_than_squirrel(self, flower, squirrel):
        """Figure 7: Flower-CDN resolves lookups several times faster than Squirrel."""
        assert flower.average_lookup_latency_ms * 2 < squirrel.average_lookup_latency_ms

    def test_flower_transfer_distance_is_much_lower_than_squirrel(self, flower, squirrel):
        """Figure 8: transfers happen much closer to the requester in Flower-CDN."""
        assert flower.average_transfer_distance_ms * 2 < squirrel.average_transfer_distance_ms

    def test_squirrel_hit_ratio_is_higher(self, flower, squirrel):
        """Figure 6: Squirrel converges faster, Flower-CDN trails at the end."""
        assert squirrel.hit_ratio >= flower.hit_ratio

    def test_flower_hit_ratio_keeps_rising(self, flower):
        """Figure 5: the cumulative hit ratio is (close to) non-decreasing."""
        curve = [v for _, v in flower.metrics.hit_ratio_series.cumulative_means()]
        assert len(curve) >= 3
        assert all(b >= a - 0.05 for a, b in zip(curve, curve[1:]))
        assert curve[-1] > curve[0]

    def test_flower_lookup_latency_decreases_after_warmup(self, flower):
        """Figure 7(a): the average lookup latency drops once overlays are populated."""
        curve = [v for _, v in flower.metrics.lookup_latency_series.window_means()]
        assert curve[-1] < curve[0]

    def test_background_traffic_is_modest(self, flower, setup):
        """Table 2 / Figure 5: background traffic is tens of bps per peer, not kbps."""
        assert 0 < flower.background_bps_per_peer < 1000

    def test_most_flower_hits_are_local(self, flower):
        """Locality awareness: hits are overwhelmingly served inside the locality."""
        counts = flower.metrics.outcome_counts()
        local = counts.get(QueryOutcome.LOCAL_OVERLAY_HIT, 0)
        remote = counts.get(QueryOutcome.REMOTE_OVERLAY_HIT, 0)
        assert local > remote

    def test_flower_latency_distribution_is_concentrated_low(self, flower, squirrel):
        """Figure 7(b): Flower's latency mass sits in the low bins, Squirrel's does not."""
        threshold = 300.0
        flower_fast = flower.metrics.lookup_latency_histogram.fraction_below(threshold)
        squirrel_fast = squirrel.metrics.lookup_latency_histogram.fraction_below(threshold)
        assert flower_fast > squirrel_fast

    def test_transfer_distribution_is_concentrated_close(self, flower, squirrel):
        """Figure 8(b): most Flower transfers are close; few Squirrel ones are."""
        threshold = 100.0
        flower_close = flower.metrics.transfer_distance_histogram.fraction_below(threshold)
        squirrel_close = squirrel.metrics.transfer_distance_histogram.fraction_below(threshold)
        assert flower_close > squirrel_close


class TestSystemConsistency:
    def test_directory_indexes_only_reference_live_members(self, runner, flower):
        system = runner.last_flower_system
        for website in system.catalog:
            for locality in range(system.config.num_localities):
                directory = system.directory_for(website.name, locality)
                if directory is None:
                    continue
                members = set(system.overlay_members(website.name, locality))
                assert set(directory.members()) <= members

    def test_content_peers_hold_only_their_websites_objects(self, runner, flower):
        system = runner.last_flower_system
        for peer in system._content_peers.values():  # noqa: SLF001
            site = system.catalog.website(peer.website)
            assert all(site.owns(obj) for obj in peer.objects)

    def test_every_query_was_recorded_once(self, runner, flower):
        record_ids = [record.query_id for record in flower.metrics.records]
        assert len(record_ids) == len(set(record_ids))

    def test_bandwidth_accounting_covers_content_peers(self, runner, flower):
        system = runner.last_flower_system
        assert flower.bandwidth.num_peers >= system.num_content_peers
