"""Unit tests for the D-ring: placement, routing (Algorithm 2) and replacement."""

import random

import pytest

from repro.core.dring import DRing
from repro.core.keys import KeyScheme

WEBSITES = ["http://alpha.org", "http://beta.org", "http://gamma.org"]
NUM_LOCALITIES = 4


@pytest.fixture
def keys() -> KeyScheme:
    return KeyScheme(website_bits=13, locality_bits=3)


@pytest.fixture
def dring(keys: KeyScheme) -> DRing:
    ring = DRing(keys)
    for website in WEBSITES:
        for locality in range(NUM_LOCALITIES):
            ring.register_directory(website, locality, f"d({website},{locality})")
    return ring


class TestPlacement:
    def test_one_directory_per_pair(self, dring: DRing):
        assert dring.size == len(WEBSITES) * NUM_LOCALITIES
        for website in WEBSITES:
            for locality in range(NUM_LOCALITIES):
                placement = dring.placement_for(website, locality)
                assert placement is not None
                assert placement.peer_id == f"d({website},{locality})"

    def test_node_id_matches_key_scheme(self, dring: DRing, keys: KeyScheme):
        placement = dring.placement_for(WEBSITES[0], 2)
        assert placement.node_id == keys.key_for(WEBSITES[0], 2)

    def test_duplicate_registration_rejected(self, dring: DRing):
        with pytest.raises(ValueError):
            dring.register_directory(WEBSITES[0], 0, "other")

    def test_website_directories_ordered_by_locality(self, dring: DRing):
        placements = dring.website_directories(WEBSITES[1])
        assert [p.locality for p in placements] == list(range(NUM_LOCALITIES))

    def test_directory_peer_id_lookup(self, dring: DRing):
        assert dring.directory_peer_id(WEBSITES[0], 1) == f"d({WEBSITES[0]},1)"
        assert dring.directory_peer_id("http://unknown.org", 0) is None

    def test_placement_at_node_id(self, dring: DRing, keys: KeyScheme):
        node_id = keys.key_for(WEBSITES[2], 3)
        assert dring.placement_at(node_id).website == WEBSITES[2]


class TestRouting:
    def test_query_reaches_exact_directory(self, dring: DRing):
        """The engineered key delivers the query to d(ws, loc) exactly."""
        for website in WEBSITES:
            for locality in range(NUM_LOCALITIES):
                placement, result = dring.resolve_directory(website, locality)
                assert placement is not None
                assert placement.website == website
                assert placement.locality == locality
                assert result.delivered

    def test_routing_from_arbitrary_bootstrap_node(self, dring: DRing):
        rng = random.Random(3)
        for _ in range(10):
            start = dring.random_bootstrap_node(rng)
            placement, _ = dring.resolve_directory(WEBSITES[0], 2, start_node_id=start)
            assert placement.website == WEBSITES[0]
            assert placement.locality == 2

    def test_missing_directory_redirects_within_same_website(self, dring: DRing):
        """Algorithm 2: when d(ws, loc) is absent the query stays with ws's peers."""
        dring.remove_directory(WEBSITES[0], 2, failed=True)
        dring.ring.stabilize()
        placement, _ = dring.resolve_directory(WEBSITES[0], 2)
        assert placement is not None
        assert placement.website == WEBSITES[0]
        assert placement.locality != 2

    def test_route_query_returns_hops_and_key(self, dring: DRing, keys: KeyScheme):
        result = dring.route_query(WEBSITES[1], 1)
        assert result.key == keys.key_for(WEBSITES[1], 1)
        assert result.hops >= 0

    def test_empty_dring_cannot_route(self, keys: KeyScheme):
        empty = DRing(keys)
        with pytest.raises(RuntimeError):
            empty.route_query("http://alpha.org", 0)

    def test_random_bootstrap_on_empty_ring_is_none(self, keys: KeyScheme):
        assert DRing(keys).random_bootstrap_node(random.Random(1)) is None


class TestNeighbors:
    def test_neighbors_are_adjacent_localities_same_website(self, dring: DRing):
        neighbors = dring.neighbors_of(WEBSITES[0], 1)
        assert {p.locality for p in neighbors} == {0, 2}
        assert all(p.website == WEBSITES[0] for p in neighbors)

    def test_neighbors_wrap_around(self, dring: DRing):
        neighbors = dring.neighbors_of(WEBSITES[0], 0)
        assert {p.locality for p in neighbors} == {NUM_LOCALITIES - 1, 1}

    def test_single_locality_website_has_no_neighbors(self, keys: KeyScheme):
        ring = DRing(keys)
        ring.register_directory("http://solo.org", 0, "d0")
        assert ring.neighbors_of("http://solo.org", 0) == []

    def test_missing_neighbor_is_skipped(self, dring: DRing):
        dring.remove_directory(WEBSITES[0], 0)
        neighbors = dring.neighbors_of(WEBSITES[0], 1)
        assert {p.locality for p in neighbors} == {2}


class TestReplacement:
    def test_replace_keeps_the_same_identifier(self, dring: DRing, keys: KeyScheme):
        """Section 5.2: the replacing peer is assigned the same engineered ID."""
        old = dring.placement_for(WEBSITES[0], 3)
        dring.remove_directory(WEBSITES[0], 3, failed=True)
        replacement = dring.replace_directory(WEBSITES[0], 3, "new-directory")
        assert replacement.node_id == old.node_id == keys.key_for(WEBSITES[0], 3)
        assert dring.directory_peer_id(WEBSITES[0], 3) == "new-directory"

    def test_replace_over_live_directory_swaps_it(self, dring: DRing):
        dring.replace_directory(WEBSITES[1], 1, "usurper")
        assert dring.directory_peer_id(WEBSITES[1], 1) == "usurper"
        assert dring.size == len(WEBSITES) * NUM_LOCALITIES

    def test_after_replacement_queries_reach_new_peer(self, dring: DRing):
        dring.remove_directory(WEBSITES[2], 0, failed=True)
        dring.replace_directory(WEBSITES[2], 0, "fresh")
        placement, _ = dring.resolve_directory(WEBSITES[2], 0)
        assert placement.peer_id == "fresh"

    def test_remove_unknown_directory_is_noop(self, dring: DRing):
        dring.remove_directory("http://unknown.org", 0)
        assert dring.size == len(WEBSITES) * NUM_LOCALITIES
