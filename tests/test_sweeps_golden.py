"""Sweep-golden regression suite.

Every registered sweep re-runs its whole grid at the pinned golden
scale/seed and the digest is compared against the committed file under
``tests/goldens/sweeps/`` — exact on structure (axes, assignments, seeds),
tolerance-banded on metrics.  A hot-path refactor must keep these green
across entire parameter families; an intentional change is recorded with
``make goldens-sweeps`` and committed.
"""

import copy
import io
import json
from pathlib import Path

import pytest

from repro.sweeps import golden as sweep_golden
from repro.sweeps.library import sweep_names

GOLDEN_DIR = Path(__file__).parent / "goldens" / "sweeps"


def test_every_sweep_has_a_committed_golden():
    committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert set(sweep_names()) <= committed, (
        "missing sweep goldens; run `python -m repro.sweeps.golden --update`"
    )


def test_goldens_do_not_outlive_the_registry():
    # Non-default-scale goldens are named "<sweep>@<scale>x.json"; they pin
    # the same registered sweep at a different scale (the nightly tier).
    committed = {path.stem.split("@")[0] for path in GOLDEN_DIR.glob("*.json")}
    stale = committed - set(sweep_names())
    assert not stale, f"sweep goldens without a registered sweep: {sorted(stale)}"


@pytest.mark.parametrize("name", sorted(sweep_names()))
def test_sweep_matches_committed_golden(name):
    mismatches = sweep_golden.verify_sweep_golden(name, GOLDEN_DIR)
    assert not mismatches, "sweep-golden drift for {}:\n{}".format(
        name, "\n".join(mismatches)
    )


def test_goldens_are_pinned_to_golden_scale_and_seed():
    for name in sweep_names():
        committed = sweep_golden.load_sweep_golden(name, GOLDEN_DIR)
        assert committed["scale"] == sweep_golden.SWEEP_GOLDEN_SCALE
        assert committed["base_seed"] == 42


def test_paper_scale_sweep_golden_is_committed_and_pinned():
    """The nightly tier re-runs Table 2a at scale 1.0; pin its golden here.

    The full-grid verification happens in the nightly workflow (minutes);
    this tier-1 test only asserts the committed file exists, targets the
    registered sweep, and is pinned to the genuine scale/seed — so the
    golden cannot silently vanish or drift structurally.
    """
    committed = sweep_golden.load_sweep_golden(
        "table2a-gossip-length", GOLDEN_DIR, scale=1.0
    )
    assert committed["sweep"] == "table2a-gossip-length"
    assert committed["scale"] == 1.0
    assert committed["base_seed"] == 42
    # The grid shape must match the registered sweep (same axis values).
    default_scale = sweep_golden.load_sweep_golden("table2a-gossip-length", GOLDEN_DIR)
    assert [axis["values"] for axis in committed["axes"]] == [
        axis["values"] for axis in default_scale["axes"]
    ]
    assert len(committed["cells"]) == len(default_scale["cells"])


# -- unit tests of the comparison machinery ----------------------------------


def _digest():
    return {
        "sweep": "tiny",
        "base": "paper-default",
        "base_seed": 42,
        "scale": 0.25,
        "seed_policy": "shared",
        "axes": [{"label": "L", "fields": ["gossip_length"], "values": [[5]],
                  "display": ["5"]}],
        "cells": [
            {
                "coordinates": [0],
                "labels": [["L", "5"]],
                "assignments": {"gossip_length": 5},
                "seed": 42,
                "digest": "abc",
                "systems": {
                    "flower": {
                        "metrics": {"num_queries": 1000, "hit_ratio": 0.7},
                        "phases": {"steady": {"hit_ratio": 0.8}},
                    }
                },
            }
        ],
    }


class TestCompareSweepDigests:
    def test_identical_digests_match(self):
        assert sweep_golden.compare_sweep_digests(_digest(), _digest()) == []

    def test_metrics_compared_with_tolerances(self):
        actual = _digest()
        actual["cells"][0]["systems"]["flower"]["metrics"]["hit_ratio"] = 0.715
        assert sweep_golden.compare_sweep_digests(_digest(), actual) == []
        actual["cells"][0]["systems"]["flower"]["metrics"]["hit_ratio"] = 0.60
        mismatches = sweep_golden.compare_sweep_digests(_digest(), actual)
        assert any("hit_ratio" in m for m in mismatches)

    def test_cell_structure_is_exact(self):
        actual = _digest()
        actual["cells"][0]["assignments"] = {"gossip_length": 10}
        assert any(
            "assignments" in m
            for m in sweep_golden.compare_sweep_digests(_digest(), actual)
        )
        actual = _digest()
        actual["cells"][0]["seed"] = 43
        assert any(
            "seed" in m for m in sweep_golden.compare_sweep_digests(_digest(), actual)
        )

    def test_cell_count_mismatch_reported(self):
        actual = _digest()
        actual["cells"].append(copy.deepcopy(actual["cells"][0]))
        mismatches = sweep_golden.compare_sweep_digests(_digest(), actual)
        assert any("cells" in m for m in mismatches)

    def test_per_cell_hash_is_informational_only(self):
        actual = _digest()
        actual["cells"][0]["digest"] = "different-hash"
        assert sweep_golden.compare_sweep_digests(_digest(), actual) == []

    def test_missing_system_reported(self):
        actual = _digest()
        actual["cells"][0]["systems"] = {}
        mismatches = sweep_golden.compare_sweep_digests(_digest(), actual)
        assert any("missing" in m for m in mismatches)

    def test_axes_are_exact(self):
        actual = _digest()
        actual["axes"][0]["values"] = [[7]]
        mismatches = sweep_golden.compare_sweep_digests(_digest(), actual)
        assert any("axes" in m for m in mismatches)


class TestGoldenWorkflow:
    def test_load_missing_golden_is_actionable(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--update"):
            sweep_golden.load_sweep_golden("table2a-gossip-length", tmp_path)

    def test_write_then_load_round_trips(self, tmp_path):
        committed = sweep_golden.load_sweep_golden("table2a-gossip-length", GOLDEN_DIR)
        path = tmp_path / "table2a-gossip-length.json"
        path.write_text(json.dumps(committed, indent=2, sort_keys=True) + "\n")
        reloaded = sweep_golden.load_sweep_golden("table2a-gossip-length", tmp_path)
        assert sweep_golden.compare_sweep_digests(reloaded, committed) == []

    def test_main_reports_ok_for_committed_goldens(self):
        buffer = io.StringIO()
        code = sweep_golden.main(
            ["table2a-gossip-length", "--golden-dir", str(GOLDEN_DIR), "--jobs", "2"],
            out=buffer,
        )
        assert code == 0
        assert "ok   table2a-gossip-length" in buffer.getvalue()

    def test_main_fails_on_missing_golden(self, tmp_path):
        buffer = io.StringIO()
        code = sweep_golden.main(
            ["table2a-gossip-length", "--golden-dir", str(tmp_path)], out=buffer
        )
        assert code == 1
        assert "FAIL table2a-gossip-length" in buffer.getvalue()

    def test_main_rejects_unknown_sweeps(self, capsys):
        assert sweep_golden.main(["no-such-sweep"], out=io.StringIO()) == 2
        assert "unknown sweep" in capsys.readouterr().err

    def test_main_update_writes_files(self, tmp_path):
        buffer = io.StringIO()
        code = sweep_golden.main(
            ["table2a-gossip-length", "--update", "--jobs", "2",
             "--golden-dir", str(tmp_path)],
            out=buffer,
        )
        assert code == 0
        digest = json.loads((tmp_path / "table2a-gossip-length.json").read_text())
        assert digest["sweep"] == "table2a-gossip-length"
        assert digest["scale"] == sweep_golden.SWEEP_GOLDEN_SCALE
        committed = sweep_golden.load_sweep_golden("table2a-gossip-length", GOLDEN_DIR)
        assert sweep_golden.compare_sweep_digests(committed, digest) == []
