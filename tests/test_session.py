"""Tests for the unified Session facade and its back-compat shims.

The redesign's contract: ``Session`` is the single execution path, and every
pre-existing entry point (``ScenarioRunner``, ``run_scenario``, flat
``ScenarioSpec`` kwargs + ``to_setup``) keeps producing byte-identical
results through it.
"""

import dataclasses

import pytest

from repro import Session as SessionFromTopLevel
from repro.experiments.driver import ExperimentRunner, ExperimentSetup
from repro.scenarios import ScenarioRunner, ScenarioSpec, get_scenario, run_scenario
from repro.session import Session

TINY_SCALE = 0.1


class TestConstruction:
    def test_exported_at_the_top_level(self):
        assert SessionFromTopLevel is Session

    def test_from_name_resolves_and_scales(self):
        session = Session.from_name("paper-default", scale=TINY_SCALE)
        assert session.spec.name == "paper-default"
        assert session.spec.num_hosts < get_scenario("paper-default").num_hosts

    def test_from_spec_seed_override(self):
        spec = get_scenario("paper-default").scaled(TINY_SCALE)
        session = Session.from_spec(spec, seed=9)
        assert session.seed == 9
        assert session.setup.seed == 9

    def test_unknown_name_is_a_clean_error(self):
        with pytest.raises(KeyError, match="known scenarios"):
            Session.from_name("does-not-exist")

    def test_exposes_the_underlying_layers(self):
        session = Session.from_name("paper-default", scale=TINY_SCALE)
        assert isinstance(session.experiment, ExperimentRunner)
        assert isinstance(session.setup, ExperimentSetup)
        trace = session.resolved_trace()
        assert len(trace) > 0
        sim, system = session.build_flower()
        assert system.num_directory_peers > 0


class TestExecution:
    def test_run_produces_a_scenario_result(self):
        result = Session.from_name("paper-default", scale=TINY_SCALE, seed=5).run()
        assert result.seed == 5
        assert 0.0 <= result.flower.metrics["hit_ratio"] <= 1.0

    def test_run_system_flower_and_squirrel_share_the_trace(self):
        session = Session.from_name("squirrel-head-to-head", scale=TINY_SCALE)
        flower = session.run_system("flower")
        squirrel = session.run_system("squirrel")
        assert flower.num_queries == squirrel.num_queries

    def test_run_system_rejects_unknown_systems(self):
        session = Session.from_name("paper-default", scale=TINY_SCALE)
        with pytest.raises(ValueError, match="unknown system"):
            session.run_system("akamai")

    def test_two_sessions_are_byte_identical(self):
        spec = get_scenario("diurnal-cycle").scaled(TINY_SCALE)
        first = Session.from_spec(spec, seed=4).run().to_dict()
        second = Session.from_spec(spec, seed=4).run().to_dict()
        assert first == second


class TestBackCompatShims:
    """Deprecation-path proofs: every old call site builds identical state."""

    def test_flat_kwargs_construct_the_same_setup_as_before(self):
        """A spec written against the pre-program API (flat kwargs only)
        composes an ExperimentSetup equal to one assembled by hand."""
        spec = ScenarioSpec(
            name="legacy-flat",
            duration_s=1800.0,
            query_rate_per_s=1.5,
            num_websites=10,
            active_websites=2,
            objects_per_website=50,
            num_localities=3,
            max_content_overlay_size=20,
            num_hosts=120,
            seed=13,
        )
        setup = spec.to_setup()
        assert setup.flower == spec.to_flower_config()
        assert setup.phases == ()
        assert setup.topology.num_hosts == 120
        assert setup.workload.query_rate_per_s == 1.5
        # And the new fields sit at their do-nothing defaults.
        assert spec.program == ()
        assert spec.churn_model.name == "poisson"
        assert spec.fault_model.name == "none"
        assert spec.content_cache_capacity is None

    def test_scenario_runner_matches_session_byte_for_byte(self):
        spec = get_scenario("heavy-churn").scaled(TINY_SCALE)
        via_shim = ScenarioRunner(spec, seed=7).run().to_dict()
        via_session = Session.from_spec(spec, seed=7).run().to_dict()
        assert via_shim == via_session

    def test_run_scenario_matches_session(self):
        spec = get_scenario("cold-start").scaled(TINY_SCALE)
        assert (
            run_scenario(spec, seed=7).metrics_digest()
            == Session.from_spec(spec, seed=7).run().metrics_digest()
        )

    def test_scenario_runner_still_exposes_the_experiment(self):
        spec = get_scenario("paper-default").scaled(TINY_SCALE)
        runner = ScenarioRunner(spec, seed=7)
        runner.run()
        assert runner.experiment.last_flower_system is not None
        assert runner.session is not None

    def test_run_flower_churn_kwarg_still_works(self):
        """The pre-attachment ExperimentRunner signature is unchanged."""
        spec = get_scenario("heavy-churn").scaled(TINY_SCALE)
        runner = ExperimentRunner(spec.to_setup(seed=7))
        result = runner.run_flower(churn=spec.churn.to_config())
        assert result.num_queries > 0

    def test_replace_still_supports_every_historical_kwarg(self):
        spec = get_scenario("paper-default")
        tweaked = dataclasses.replace(
            spec, query_rate_per_s=9.0, zipf_alpha=1.0, view_size=20
        )
        assert tweaked.to_setup().workload.query_rate_per_s == 9.0


class TestCacheBoundedPeers:
    def test_capacity_flows_into_the_flower_config(self):
        spec = get_scenario("cache-bounded-peers")
        assert spec.to_setup().flower.content_cache_capacity == 25

    def test_bounded_caches_lower_the_hit_ratio(self):
        bounded_spec = get_scenario("cache-bounded-peers").scaled(0.2)
        unbounded_spec = dataclasses.replace(bounded_spec, content_cache_capacity=None)
        bounded = Session.from_spec(bounded_spec, seed=3).run()
        unbounded = Session.from_spec(unbounded_spec, seed=3).run()
        assert (
            bounded.flower.metrics["hit_ratio"]
            < unbounded.flower.metrics["hit_ratio"]
        )

    def test_scaled_keeps_the_capacity_binding(self):
        spec = get_scenario("cache-bounded-peers").scaled(0.25)
        assert spec.content_cache_capacity is not None
        assert spec.content_cache_capacity < spec.objects_per_website
