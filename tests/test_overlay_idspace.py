"""Unit tests for circular identifier-space arithmetic."""

import pytest

from repro.overlay.idspace import IdSpace


class TestBasics:
    def test_size_and_max_id(self):
        space = IdSpace(bits=8)
        assert space.size == 256
        assert space.max_id == 255

    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            IdSpace(bits=0)
        with pytest.raises(ValueError):
            IdSpace(bits=257)

    def test_contains_and_validate(self):
        space = IdSpace(bits=4)
        assert space.contains(0) and space.contains(15)
        assert not space.contains(16) and not space.contains(-1)
        with pytest.raises(ValueError):
            space.validate(16)
        assert space.validate(7) == 7

    def test_normalize_wraps(self):
        space = IdSpace(bits=4)
        assert space.normalize(16) == 0
        assert space.normalize(-1) == 15

    def test_hash_key_in_range_and_deterministic(self):
        space = IdSpace(bits=16)
        key = space.hash_key("http://example.org/object/1")
        assert 0 <= key < space.size
        assert key == space.hash_key("http://example.org/object/1")
        assert key != space.hash_key("http://example.org/object/2")


class TestDistances:
    def test_clockwise_distance(self):
        space = IdSpace(bits=4)
        assert space.clockwise_distance(2, 5) == 3
        assert space.clockwise_distance(14, 2) == 4
        assert space.clockwise_distance(7, 7) == 0

    def test_circular_distance_is_shorter_way(self):
        space = IdSpace(bits=4)
        assert space.circular_distance(0, 15) == 1
        assert space.circular_distance(0, 8) == 8
        assert space.circular_distance(3, 5) == 2

    def test_circular_distance_is_symmetric(self):
        space = IdSpace(bits=6)
        for a, b in [(0, 10), (60, 3), (31, 32)]:
            assert space.circular_distance(a, b) == space.circular_distance(b, a)


class TestIntervals:
    def test_open_interval_without_wrap(self):
        space = IdSpace(bits=4)
        assert space.in_interval(5, 3, 8)
        assert not space.in_interval(3, 3, 8)
        assert not space.in_interval(8, 3, 8)
        assert not space.in_interval(10, 3, 8)

    def test_interval_with_wrap_around(self):
        space = IdSpace(bits=4)
        assert space.in_interval(15, 12, 3)
        assert space.in_interval(1, 12, 3)
        assert not space.in_interval(7, 12, 3)

    def test_inclusive_boundaries(self):
        space = IdSpace(bits=4)
        assert space.in_interval(3, 3, 8, inclusive_start=True)
        assert space.in_interval(8, 3, 8, inclusive_end=True)

    def test_degenerate_interval(self):
        space = IdSpace(bits=4)
        # (x, x) with exclusive bounds means "the whole ring except x".
        assert space.in_interval(5, 9, 9)
        assert not space.in_interval(9, 9, 9)
        assert space.in_interval(9, 9, 9, inclusive_start=True)


class TestClosestTo:
    def test_exact_match_wins(self):
        space = IdSpace(bits=8)
        assert space.closest_to(100, [3, 100, 200]) == 100

    def test_numerically_closest_across_wrap(self):
        space = IdSpace(bits=8)
        assert space.closest_to(1, [250, 120]) == 250  # distance 7 vs 119

    def test_tie_broken_clockwise(self):
        space = IdSpace(bits=8)
        # 10 is equidistant from 5 and 15; the clockwise candidate (15) wins.
        assert space.closest_to(10, [5, 15]) == 15

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            IdSpace(bits=8).closest_to(1, [])

    def test_single_candidate(self):
        assert IdSpace(bits=8).closest_to(0, [77]) == 77
