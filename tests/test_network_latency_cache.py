"""Tests for the memoizing latency cache and the call-local latency estimate."""

import pytest

from repro.network.latency import LatencyModel
from repro.network.topology import Topology, TopologyConfig
from repro.sim.rng import RandomStreams


@pytest.fixture
def topology() -> Topology:
    return Topology(TopologyConfig(num_hosts=300, num_localities=3), RandomStreams(11))


class TestLatencyCache:
    def test_cached_value_identical_to_fresh_computation(self, topology):
        first = topology.latency_ms(3, 77)
        info = topology.latency_cache_info()
        assert info["misses"] >= 1
        again = topology.latency_ms(3, 77)
        assert again == first
        assert topology.latency_cache_info()["hits"] >= 1

    def test_cache_is_symmetric(self, topology):
        forward = topology.latency_ms(5, 200)
        backward = topology.latency_ms(200, 5)
        assert forward == backward
        info = topology.latency_cache_info()
        # The reversed query must hit the same entry, not create a second one.
        assert info["hits"] >= 1
        assert info["size"] == info["misses"]

    def test_deterministic_across_instances(self):
        config = TopologyConfig(num_hosts=120, num_localities=3)
        a = Topology(config, RandomStreams(9))
        b = Topology(config, RandomStreams(9))
        for pair in [(0, 10), (3, 99), (57, 110)]:
            assert a.latency_ms(*pair) == b.latency_ms(*pair)

    def test_self_latency_not_cached(self, topology):
        assert topology.latency_ms(7, 7) == 0.0
        assert topology.latency_cache_info()["size"] == 0

    def test_values_within_bounds_via_cache(self, topology):
        config = topology.config
        for a in range(0, 300, 17):
            for b in range(1, 300, 23):
                if a == b:
                    continue
                latency = topology.latency_ms(a, b)
                assert config.min_latency_ms <= latency <= config.max_latency_ms
        # Warm queries replay the same values.
        assert topology.latency_ms(0, 1) == topology.latency_ms(1, 0)

    def test_capacity_bound_evicts_and_recomputes(self):
        topology = Topology(
            TopologyConfig(num_hosts=100, num_localities=2),
            RandomStreams(5),
            latency_cache_size=4,
        )
        values = {}
        for b in range(1, 12):
            values[b] = topology.latency_ms(0, b)
        info = topology.latency_cache_info()
        assert info["size"] <= 4
        # Evicted pairs recompute to identical values.
        for b, expected in values.items():
            assert topology.latency_ms(0, b) == expected

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Topology(
                TopologyConfig(num_hosts=10, num_localities=1),
                RandomStreams(1),
                latency_cache_size=0,
            )


class TestLatencyModelCache:
    def test_peer_queries_share_topology_cache(self, topology):
        model = LatencyModel(topology)
        model.register_peer("a", 10)
        model.register_peer("b", 20)
        first = model.latency_ms("a", "b")
        assert model.latency_ms("b", "a") == first
        info = model.latency_cache_info()
        assert info["hits"] >= 1

    def test_unregistered_peer_still_raises(self, topology):
        model = LatencyModel(topology)
        model.register_peer("a", 10)
        with pytest.raises(KeyError):
            model.latency_ms("a", "ghost")


class TestIntraLocalityEstimate:
    def test_estimate_independent_of_call_order(self):
        config = TopologyConfig(num_hosts=300, num_localities=3)
        a = Topology(config, RandomStreams(21))
        b = Topology(config, RandomStreams(21))
        # Interleave differently: the estimate must not depend on how many
        # other estimates were drawn before it.
        a.average_intra_locality_latency(1)
        a.average_intra_locality_latency(2)
        first_after_noise = a.average_intra_locality_latency(0)
        first_direct = b.average_intra_locality_latency(0)
        assert first_after_noise == first_direct

    def test_estimate_repeatable_on_same_instance(self):
        topology = Topology(
            TopologyConfig(num_hosts=300, num_localities=3), RandomStreams(21)
        )
        assert topology.average_intra_locality_latency(0) == pytest.approx(
            topology.average_intra_locality_latency(0)
        )

    def test_sample_size_changes_the_stream(self):
        topology = Topology(
            TopologyConfig(num_hosts=300, num_localities=3), RandomStreams(21)
        )
        # Different sample sizes are different estimates (derived seeds differ);
        # both must still be plausible intra-locality latencies.
        small = topology.average_intra_locality_latency(0, sample=50)
        large = topology.average_intra_locality_latency(0, sample=400)
        assert small > 0 and large > 0


class TestCacheBackends:
    """The dense-triangular / bounded-LRU backend split (paper-scale memory)."""

    def test_small_topology_uses_dense_backend(self, topology):
        assert topology.latency_cache_info()["backend"] == "dense"

    def test_huge_pair_matrix_uses_lru_backend(self):
        # 5000 hosts -> ~12.5M pairs > the 1M default bound.
        topology = Topology(
            TopologyConfig(num_hosts=100, num_localities=2),
            RandomStreams(5),
            latency_cache_size=100,
        )
        assert topology.latency_cache_info()["backend"] == "lru"

    def test_backends_return_identical_values(self):
        config = TopologyConfig(num_hosts=150, num_localities=3)
        dense = Topology(config, RandomStreams(13))
        lru = Topology(config, RandomStreams(13), latency_cache_size=50)
        assert dense.latency_cache_info()["backend"] == "dense"
        assert lru.latency_cache_info()["backend"] == "lru"
        for a in range(0, 150, 7):
            for b in range(1, 150, 13):
                if a != b:
                    assert dense.latency_ms(a, b) == lru.latency_ms(a, b)

    def test_lru_eviction_prefers_recently_used_pairs(self):
        topology = Topology(
            TopologyConfig(num_hosts=100, num_localities=2),
            RandomStreams(5),
            latency_cache_size=3,
        )
        for b in (1, 2, 3):
            topology.latency_ms(0, b)
        topology.latency_ms(0, 1)  # refresh pair (0, 1)
        topology.latency_ms(0, 4)  # evicts the least recently used: (0, 2)
        before = topology.latency_cache_info()
        topology.latency_ms(0, 1)  # must still be cached
        assert topology.latency_cache_info()["hits"] == before["hits"] + 1
        topology.latency_ms(0, 2)  # was evicted: recomputes
        assert topology.latency_cache_info()["misses"] == before["misses"] + 1

    def test_lru_size_never_exceeds_the_bound(self):
        """Regression: the memo must stay bounded however many pairs are hit."""
        bound = 16
        topology = Topology(
            TopologyConfig(num_hosts=200, num_localities=2),
            RandomStreams(5),
            latency_cache_size=bound,
        )
        for a in range(0, 200, 3):
            for b in range(1, 200, 7):
                if a != b:
                    topology.latency_ms(a, b)
        info = topology.latency_cache_info()
        assert info["size"] <= bound
        assert info["capacity"] == bound
        assert topology.latency_cache_nbytes() <= 100 * bound

    def test_dense_backend_is_byte_bounded(self, topology):
        pairs = topology.num_hosts * (topology.num_hosts - 1) // 2
        # 8-byte slots for every possible pair (+ row offsets) plus one boxed
        # float per computed pair.
        computed = topology.latency_cache_info()["misses"]
        assert topology.latency_cache_nbytes() == (
            8 * (pairs + topology.num_hosts) + 24 * computed
        )

    def test_info_reports_capacity_and_backend(self, topology):
        info = topology.latency_cache_info()
        assert set(info) == {"hits", "misses", "size", "capacity", "backend"}
        assert info["capacity"] == Topology.DEFAULT_LATENCY_CACHE_SIZE
