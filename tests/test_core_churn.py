"""Unit tests for the churn injector."""

import pytest

from repro.core.churn import ChurnConfig, ChurnInjector
from repro.core.config import FlowerConfig, GossipConfig
from repro.core.system import FlowerCDN
from repro.network.topology import Topology, TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.assignment import ResolvedQuery


@pytest.fixture
def system() -> FlowerCDN:
    config = FlowerConfig(
        num_websites=2,
        active_websites=1,
        objects_per_website=15,
        num_localities=2,
        max_content_overlay_size=10,
        locality_bits=2,
        website_bits=10,
        gossip=GossipConfig(
            gossip_period_s=60.0, view_size=5, gossip_length=3, push_threshold=0.2,
            keepalive_period_s=60.0, dead_age=3,
        ),
        simulation_duration_s=3600.0,
        metrics_window_s=600.0,
    )
    topology = Topology(
        TopologyConfig(num_hosts=120, num_localities=2, locality_weights=(1.0, 1.0)),
        RandomStreams(13),
    )
    sim = Simulator(seed=13, end_time=config.simulation_duration_s)
    cdn = FlowerCDN(config, sim, topology)
    cdn.bootstrap()
    return cdn


def populate(system: FlowerCDN, count: int = 6) -> None:
    website = system.catalog.websites[0]
    free = [h for h in system.topology.hosts_in_locality(0) if h not in system.reserved_hosts]
    for i in range(count):
        system.handle_query(
            ResolvedQuery(
                query_id=i, time=0.0, website=website.name,
                object_id=website.object_id(i % website.num_objects),
                locality=0, client_host=free[i], is_new_client=True,
            )
        )


class TestChurnConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(content_failures_per_hour=-1)
        with pytest.raises(ValueError):
            ChurnConfig(tick_period_s=0)

    def test_is_enabled(self):
        assert not ChurnConfig().is_enabled
        assert ChurnConfig(content_failures_per_hour=1.0).is_enabled
        assert ChurnConfig(directory_failures_per_hour=1.0).is_enabled
        assert ChurnConfig(locality_changes_per_hour=1.0).is_enabled


class TestChurnInjector:
    def test_disabled_injector_never_starts(self, system):
        injector = ChurnInjector(system, ChurnConfig())
        injector.start()
        system.sim.run(until=600.0)
        assert injector.events_injected == 0

    def test_content_failures_are_injected(self, system):
        populate(system)
        injector = ChurnInjector(
            system, ChurnConfig(content_failures_per_hour=120.0, tick_period_s=60.0)
        )
        injector.start()
        system.sim.run(until=1800.0)
        kinds = {entry.kind for entry in injector.log}
        assert injector.events_injected > 0
        assert "content_failure" in kinds
        failed = [p for p in system._content_peers.values() if not p.alive]  # noqa: SLF001
        assert failed

    def test_directory_failures_trigger_replacement(self, system):
        populate(system)
        injector = ChurnInjector(
            system,
            ChurnConfig(directory_failures_per_hour=60.0, tick_period_s=60.0),
        )
        injector.start()
        system.sim.run(until=3000.0)
        directory_events = [e for e in injector.log if e.kind == "directory_failure"]
        assert directory_events
        # The replacement protocol must have restored a live directory.
        website = system.catalog.websites[0].name
        directory = system.directory_for(website, 0)
        assert directory is not None and directory.alive

    def test_locality_changes_move_peers(self, system):
        populate(system)
        injector = ChurnInjector(
            system, ChurnConfig(locality_changes_per_hour=120.0, tick_period_s=60.0)
        )
        injector.start()
        system.sim.run(until=1800.0)
        moves = [e for e in injector.log if e.kind == "locality_change"]
        assert moves
        website = system.catalog.websites[0].name
        assert system.overlay_members(website, 1), "some peer must have moved to locality 1"

    def test_stop_halts_injection(self, system):
        populate(system)
        injector = ChurnInjector(
            system, ChurnConfig(content_failures_per_hour=600.0, tick_period_s=30.0)
        )
        injector.start()
        system.sim.run(until=300.0)
        count = injector.events_injected
        injector.stop()
        system.sim.run(until=1200.0)
        assert injector.events_injected == count

    def test_fractional_rates_average_out(self, system):
        populate(system, count=8)
        injector = ChurnInjector(
            system, ChurnConfig(content_failures_per_hour=6.0, tick_period_s=60.0)
        )
        injector.start()
        system.sim.run(until=3600.0)
        # Six failures per hour expected; allow generous slack but require activity.
        assert 1 <= injector.events_injected <= 12
