"""Property-based tests (hypothesis) for the core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures.aged_view import AgedEntry, AgedView
from repro.datastructures.bloom import BloomFilter
from repro.datastructures.lru import LRUCache
from repro.metrics.histogram import Histogram
from repro.metrics.timeseries import TimeSeries
from repro.overlay.chord import ChordRing
from repro.overlay.idspace import IdSpace
from repro.workload.zipf import ZipfSampler

# -- Bloom filters -----------------------------------------------------------------

object_ids = st.text(min_size=1, max_size=30)


@given(st.lists(object_ids, min_size=0, max_size=100))
def test_bloom_never_has_false_negatives(items):
    bloom = BloomFilter(num_bits=1024, num_hashes=4)
    bloom.update(items)
    assert all(item in bloom for item in items)


@given(st.lists(object_ids, min_size=1, max_size=50), st.lists(object_ids, min_size=1, max_size=50))
def test_bloom_union_is_superset_of_both(left_items, right_items):
    left = BloomFilter(num_bits=512, num_hashes=4)
    right = BloomFilter(num_bits=512, num_hashes=4)
    left.update(left_items)
    right.update(right_items)
    union = left.union(right)
    assert all(item in union for item in left_items + right_items)


@given(st.lists(object_ids, min_size=0, max_size=80))
def test_bloom_fill_ratio_bounds(items):
    bloom = BloomFilter(num_bits=256, num_hashes=3)
    bloom.update(items)
    assert 0.0 <= bloom.fill_ratio <= 1.0
    assert 0.0 <= bloom.false_positive_probability() <= 1.0


# -- Aged views -----------------------------------------------------------------------

entries = st.lists(
    st.tuples(st.sampled_from([f"p{i}" for i in range(30)]), st.integers(0, 20)),
    min_size=0,
    max_size=60,
)


@given(entries, st.integers(1, 10))
def test_aged_view_never_exceeds_capacity(pairs, capacity):
    view = AgedView(capacity=capacity)
    view.merge(AgedEntry(contact=c, age=a) for c, a in pairs)
    assert len(view) <= capacity


@given(entries, st.integers(1, 10))
def test_aged_view_merge_keeps_minimum_age(pairs, capacity):
    view = AgedView(capacity=None)
    view.merge(AgedEntry(contact=c, age=a) for c, a in pairs)
    minimum_age = {}
    for contact, age in pairs:
        minimum_age[contact] = min(age, minimum_age.get(contact, age))
    for entry in view:
        assert entry.age == minimum_age[entry.contact]


@given(entries)
def test_aged_view_increment_preserves_membership(pairs):
    view = AgedView(capacity=None)
    view.merge(AgedEntry(contact=c, age=a) for c, a in pairs)
    before = set(view.contacts())
    view.increment_ages()
    assert set(view.contacts()) == before


@given(entries, st.integers(0, 15))
def test_aged_view_subset_selection_is_bounded_and_member(pairs, size):
    view = AgedView(capacity=None)
    view.merge(AgedEntry(contact=c, age=a) for c, a in pairs)
    subset = view.select_subset(size, rng=random.Random(0))
    assert len(subset) <= size
    assert all(entry.contact in view for entry in subset)


# -- LRU cache ---------------------------------------------------------------------------

@given(st.lists(st.integers(0, 50), min_size=0, max_size=200), st.integers(1, 10))
def test_lru_never_exceeds_capacity_and_keeps_recent(keys, capacity):
    cache = LRUCache(capacity=capacity)
    for key in keys:
        cache.put(key, key)
    assert len(cache) <= capacity
    if keys:
        assert keys[-1] in cache  # the most recent insertion always survives


# -- Identifier space ----------------------------------------------------------------------

ids_16 = st.integers(0, (1 << 16) - 1)


@given(ids_16, ids_16)
def test_idspace_distances_are_consistent(a, b):
    space = IdSpace(bits=16)
    forward = space.clockwise_distance(a, b)
    backward = space.clockwise_distance(b, a)
    assert (forward + backward) % space.size == 0
    assert space.circular_distance(a, b) == min(forward, backward)
    assert space.circular_distance(a, b) == space.circular_distance(b, a)


@given(ids_16, st.lists(ids_16, min_size=1, max_size=30))
def test_idspace_closest_to_minimises_circular_distance(key, candidates):
    space = IdSpace(bits=16)
    winner = space.closest_to(key, candidates)
    best = min(space.circular_distance(key, c) for c in candidates)
    assert space.circular_distance(key, winner) == best


@given(ids_16, ids_16, ids_16)
def test_idspace_interval_membership_matches_distances(value, start, end):
    space = IdSpace(bits=16)
    if start == end or value in (start, end):
        return
    inside = space.in_interval(value, start, end)
    assert inside == (
        space.clockwise_distance(start, value) < space.clockwise_distance(start, end)
    )


# -- Chord routing -----------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, (1 << 12) - 1), min_size=2, max_size=40, unique=True),
    st.integers(0, (1 << 12) - 1),
)
def test_ideal_route_always_terminates_at_the_successor(node_ids, key):
    space = IdSpace(bits=12)
    ring = ChordRing(space, auto_stabilize=False)
    for node_id in node_ids:
        ring.join(node_id)
    start = node_ids[0]
    path = ring.ideal_route(start, key)
    assert path[0] == start
    assert path[-1] == ring.successor_of(key)
    assert len(path) <= 4 * space.bits + 1
    assert all(node in ring for node in path)


# -- Zipf sampling --------------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.integers(2, 200), st.floats(0.0, 2.0))
def test_zipf_probabilities_are_a_distribution(population, alpha):
    sampler = ZipfSampler(population, alpha=alpha)
    total = sum(sampler.probability(rank) for rank in range(population))
    assert abs(total - 1.0) < 1e-9
    probabilities = [sampler.probability(rank) for rank in range(population)]
    assert all(b <= a + 1e-12 for a, b in zip(probabilities, probabilities[1:]))


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 100), st.integers(0, 500))
def test_zipf_samples_stay_in_range(population, draws):
    sampler = ZipfSampler(population, alpha=0.8)
    rng = random.Random(0)
    assert all(0 <= sampler.sample(rng) < population for _ in range(draws))


# -- Metrics --------------------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=0, max_size=200))
def test_histogram_counts_everything_once(values):
    histogram = Histogram(bin_width=100, num_bins=10)
    histogram.extend(values)
    assert histogram.total == len(values)
    assert sum(b.count for b in histogram.bins()) == len(values)
    if values:
        epsilon = 1e-9 * max(1.0, max(values))
        assert min(values) - epsilon <= histogram.mean <= max(values) + epsilon


@given(
    st.lists(
        st.tuples(st.floats(0, 1e5), st.floats(0, 1e3)), min_size=0, max_size=200
    )
)
def test_timeseries_cumulative_mean_equals_overall_mean_at_the_end(samples):
    series = TimeSeries(window_s=500)
    for time, value in samples:
        series.add(time, value)
    if not samples:
        assert series.cumulative_means() == []
        return
    final_cumulative = series.cumulative_means()[-1][1]
    assert abs(final_cumulative - series.overall_mean) < 1e-6
