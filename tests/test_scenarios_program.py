"""Tests for declarative scenario programs: WorkloadPhase, compilation, and
their integration into ScenarioSpec (validation, scaling, serialisation,
end-to-end determinism through the Session path)."""

import dataclasses
import json

import pytest

from repro.scenarios import (
    ScenarioSpec,
    WorkloadPhase,
    compile_program,
    get_scenario,
    run_scenario,
)
from repro.scenarios.program import scale_program

TINY_SCALE = 0.1


class TestWorkloadPhase:
    def test_validation(self):
        with pytest.raises(ValueError, match="duration_s"):
            WorkloadPhase(duration_s=0.0)
        with pytest.raises(ValueError, match="rate_multiplier"):
            WorkloadPhase(rate_multiplier=-1.0)
        with pytest.raises(ValueError, match="zipf_alpha"):
            WorkloadPhase(zipf_alpha=-0.5)
        with pytest.raises(ValueError, match="hotspot_rotation"):
            WorkloadPhase(hotspot_rotation=-3)

    def test_scaled_keeps_remainder_phases(self):
        assert WorkloadPhase(duration_s=100.0).scaled(0.5).duration_s == 50.0
        remainder = WorkloadPhase(rate_multiplier=2.0)
        assert remainder.scaled(0.5) is remainder


class TestCompileProgram:
    def test_empty_program_compiles_to_no_spans(self):
        assert compile_program((), 3600.0) == ()

    def test_explicit_durations_must_tile_the_run(self):
        phases = (WorkloadPhase(duration_s=1000.0), WorkloadPhase(duration_s=2600.0))
        spans = compile_program(phases, 3600.0)
        assert [(s.start_s, s.end_s) for s in spans] == [(0.0, 1000.0), (1000.0, 3600.0)]

    def test_sum_mismatch_rejected(self):
        phases = (WorkloadPhase(duration_s=1000.0), WorkloadPhase(duration_s=1000.0))
        with pytest.raises(ValueError, match="sum to the run duration"):
            compile_program(phases, 3600.0)

    def test_trailing_none_absorbs_the_remainder(self):
        phases = (WorkloadPhase(duration_s=1000.0), WorkloadPhase())
        spans = compile_program(phases, 3600.0)
        assert spans[-1].end_s == 3600.0

    def test_none_duration_only_allowed_last(self):
        phases = (WorkloadPhase(), WorkloadPhase(duration_s=1000.0))
        with pytest.raises(ValueError, match="final phase"):
            compile_program(phases, 3600.0)

    def test_overlong_program_rejected(self):
        phases = (WorkloadPhase(duration_s=4000.0), WorkloadPhase())
        with pytest.raises(ValueError):
            compile_program(phases, 3600.0)

    def test_modulation_carried_into_spans(self):
        phases = (
            WorkloadPhase(duration_s=600.0, rate_multiplier=2.0, zipf_alpha=1.1,
                          hotspot_rotation=5),
            WorkloadPhase(),
        )
        span = compile_program(phases, 3600.0)[0]
        assert span.rate_multiplier == 2.0
        assert span.zipf_alpha == 1.1
        assert span.hotspot_rotation == 5

    def test_scale_program(self):
        phases = (WorkloadPhase(duration_s=100.0), WorkloadPhase())
        scaled = scale_program(phases, 0.25)
        assert scaled[0].duration_s == 25.0
        assert scaled[1].duration_s is None


class TestSpecIntegration:
    def test_spec_validates_program_eagerly(self):
        with pytest.raises(ValueError, match="sum to the run duration"):
            ScenarioSpec(
                name="bad-program",
                duration_s=3600.0,
                program=(WorkloadPhase(duration_s=100.0),),
            )

    def test_scaled_rescales_phase_durations_with_the_run(self):
        spec = get_scenario("adversarial-hotspots")
        small = spec.scaled(0.25)
        spans = small.compiled_program()
        assert spans[-1].end_s == small.duration_s
        # Phase shares of the run are preserved.
        base_spans = spec.compiled_program()
        for before, after in zip(base_spans, spans):
            assert after.duration_s / small.duration_s == pytest.approx(
                before.duration_s / spec.duration_s
            )

    def test_scaled_below_the_duration_floor_still_tiles(self):
        # The 900 s duration floor changes the effective factor; phases must
        # still tile the clamped run exactly.
        spec = get_scenario("diurnal-cycle").scaled(0.01)
        assert spec.duration_s == 900.0
        assert spec.compiled_program()[-1].end_s == 900.0
        spec.to_setup()

    def test_to_dict_serialises_the_program(self):
        payload = json.loads(json.dumps(get_scenario("diurnal-cycle").to_dict()))
        assert len(payload["program"]) == 4
        assert payload["program"][2]["rate_multiplier"] == 2.5
        assert payload["churn_model"]["name"] == "poisson"

    def test_setup_carries_compiled_phases(self):
        spec = get_scenario("adversarial-hotspots")
        setup = spec.to_setup()
        assert len(setup.phases) == 4
        assert setup.phases == spec.compiled_program()

    def test_flat_spec_has_no_phases(self):
        assert get_scenario("paper-default").to_setup().phases == ()


class TestProgramScenariosEndToEnd:
    def test_homogeneous_program_run_matches_flat_run_exactly(self):
        """Splitting a stationary spec at T changes nothing downstream."""
        flat = get_scenario("paper-default").scaled(TINY_SCALE)
        split = dataclasses.replace(
            flat,
            program=(WorkloadPhase(duration_s=flat.duration_s / 3), WorkloadPhase()),
        )
        flat_digest = run_scenario(flat, seed=7).metrics_digest()
        split_digest = run_scenario(split, seed=7).metrics_digest()
        assert flat_digest == split_digest

    def test_phased_scenarios_differ_from_their_flat_twin(self):
        spec = get_scenario("diurnal-cycle").scaled(TINY_SCALE)
        flat = dataclasses.replace(spec, program=())
        phased = run_scenario(spec, seed=7)
        stationary = run_scenario(flat, seed=7)
        assert (
            phased.flower.metrics["num_queries"]
            != stationary.flower.metrics["num_queries"]
        )

    def test_rotation_hits_websites_outside_the_base_window(self):
        spec = get_scenario("adversarial-hotspots").scaled(0.25)
        session_result = run_scenario(spec, seed=7)
        run = session_result.flower.run
        websites = {record.website for record in run.metrics.records}
        assert len(websites) > spec.active_websites
