"""Unit tests for periodic processes and the seeded random streams."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RandomStreams, derive_seed


class TestPeriodicProcess:
    def test_start_and_fire(self):
        sim = Simulator()
        ticks = []
        process = PeriodicProcess(sim, 10.0, lambda: ticks.append(sim.now), name="tick")
        process.start()
        sim.run(until=45.0)
        assert ticks == [10.0, 20.0, 30.0, 40.0]
        assert process.fired == 4

    def test_jittered_start_within_first_period(self):
        sim = Simulator(seed=3)
        ticks = []
        process = PeriodicProcess(
            sim, 10.0, lambda: ticks.append(sim.now), jitter_stream="jitter:x"
        )
        process.start()
        sim.run(until=10.0)
        assert len(ticks) == 1
        assert 0.0 <= ticks[0] <= 10.0

    def test_stop_prevents_future_firings(self):
        sim = Simulator()
        ticks = []
        process = PeriodicProcess(sim, 5.0, lambda: ticks.append(sim.now))
        process.start()
        sim.at(12.0, process.stop)
        sim.run(until=50.0)
        assert ticks == [5.0, 10.0]
        assert not process.running

    def test_restart_with_new_period(self):
        sim = Simulator()
        ticks = []
        process = PeriodicProcess(sim, 5.0, lambda: ticks.append(sim.now))
        process.start()
        sim.run(until=11.0)
        process.restart(period=2.0)
        sim.run(until=16.0)
        assert ticks[:2] == [5.0, 10.0]
        assert all(b - a == pytest.approx(2.0) for a, b in zip(ticks[2:], ticks[3:]))

    def test_double_start_is_noop(self):
        sim = Simulator()
        ticks = []
        process = PeriodicProcess(sim, 5.0, lambda: ticks.append(sim.now))
        process.start()
        process.start()
        sim.run(until=6.0)
        assert ticks == [5.0]

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda: None)
        process = PeriodicProcess(sim, 5.0, lambda: None)
        with pytest.raises(ValueError):
            process.restart(period=-1.0)


class TestRandomStreams:
    def test_streams_are_reproducible(self):
        a = RandomStreams(42)
        b = RandomStreams(42)
        assert [a.random("s") for _ in range(20)] == [b.random("s") for _ in range(20)]

    def test_streams_are_independent(self):
        streams = RandomStreams(42)
        before = [streams.random("a") for _ in range(5)]
        # Interleaving draws from another stream must not perturb stream "a".
        fresh = RandomStreams(42)
        _ = [fresh.random("b") for _ in range(100)]
        after = [fresh.random("a") for _ in range(5)]
        assert before == after

    def test_derive_seed_is_stable_and_distinct(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_uniform_within_bounds(self):
        streams = RandomStreams(7)
        for _ in range(100):
            value = streams.uniform("u", 2.0, 5.0)
            assert 2.0 <= value <= 5.0

    def test_randint_within_bounds(self):
        streams = RandomStreams(7)
        values = {streams.randint("i", 0, 3) for _ in range(200)}
        assert values <= {0, 1, 2, 3}
        assert len(values) == 4

    def test_choice_and_sample(self):
        streams = RandomStreams(7)
        population = ["a", "b", "c", "d"]
        assert streams.choice("c", population) in population
        sample = streams.sample("s", population, 2)
        assert len(sample) == 2
        assert set(sample) <= set(population)

    def test_sample_larger_than_population_is_clamped(self):
        streams = RandomStreams(7)
        assert sorted(streams.sample("s", [1, 2], 10)) == [1, 2]

    def test_shuffle_returns_permutation(self):
        streams = RandomStreams(7)
        items = list(range(10))
        shuffled = streams.shuffle("sh", items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # input not mutated

    def test_expovariate_requires_positive_rate(self):
        streams = RandomStreams(7)
        with pytest.raises(ValueError):
            streams.expovariate("e", 0.0)
        assert streams.expovariate("e", 2.0) >= 0.0

    def test_names_lists_created_streams(self):
        streams = RandomStreams(7)
        streams.random("alpha")
        streams.random("beta")
        assert streams.names() == ("alpha", "beta")
