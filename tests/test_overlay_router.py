"""Unit tests for the key-based routing service (Algorithms 1 and 2)."""

import pytest

from repro.overlay.chord import ChordRing
from repro.overlay.idspace import IdSpace
from repro.overlay.router import KBRRouter, RouteResult, RoutingError, RoutingPolicy


@pytest.fixture
def idspace() -> IdSpace:
    return IdSpace(bits=8)


@pytest.fixture
def ring(idspace: IdSpace) -> ChordRing:
    node_ids = [8, 40, 72, 104, 136, 168, 200, 232]
    return ChordRing.build(idspace, node_ids)


@pytest.fixture
def router(ring: ChordRing) -> KBRRouter:
    return KBRRouter(ring)


class TestStandardRouting:
    def test_delivers_to_numerically_closest_node(self, router: KBRRouter, ring: ChordRing):
        result = router.route(8, 70)
        assert result.destination == 72
        assert result.delivered

    def test_route_to_own_key_has_no_hops(self, router: KBRRouter):
        result = router.route(40, 41)
        assert result.destination == 40
        assert result.hops == 0
        assert result.path == [40]

    def test_path_starts_at_start_node(self, router: KBRRouter):
        result = router.route(8, 200)
        assert result.source == 8
        assert result.path[-1] == result.destination

    def test_all_keys_route_to_owner(self, router: KBRRouter, ring: ChordRing):
        for key in range(0, 256, 7):
            result = router.route(8, key)
            assert result.destination == ring.owner_of(key).node_id

    def test_route_from_dead_node_raises(self, router: KBRRouter, ring: ChordRing):
        ring.fail(8)
        with pytest.raises(RoutingError):
            router.route(8, 100)

    def test_invalid_key_rejected(self, router: KBRRouter):
        with pytest.raises(ValueError):
            router.route(8, 1 << 20)

    def test_latency_accumulates_over_hops(self, ring: ChordRing):
        router = KBRRouter(ring, latency_callback=lambda a, b: 10.0)
        result = router.route(8, 200)
        assert result.latency_ms == pytest.approx(10.0 * result.hops)

    def test_counter_clockwise_routes_are_logarithmic(self):
        """Back fingers make CCW routes O(log n), not an O(n) predecessor walk."""
        import random

        idspace = IdSpace(bits=16)
        rng = random.Random(5)
        node_ids = sorted(rng.sample(range(idspace.size), 256))
        ring = ChordRing(idspace, auto_stabilize=False)
        for node_id in node_ids:
            ring.join(node_id)
        ring.stabilize()
        router = KBRRouter(ring)
        lengths = []
        for start in rng.sample(node_ids, 40):
            # A key just behind the start node: the worst case for forward-only
            # fingers (nearly a full clockwise lap, or an O(n) backward walk).
            key = (start - 1 - rng.randrange(idspace.size // 16)) % idspace.size
            result = router.route(start, key)
            assert result.destination == ring.owner_of(key).node_id
            lengths.append(result.hops)
        assert max(lengths) <= 16  # O(log 256) = 8 expected, generous bound
        assert sum(lengths) / len(lengths) <= 10

    def test_routing_around_failed_node(self, ring: ChordRing):
        router = KBRRouter(ring)
        ring.fail(72)  # no stabilisation: other nodes still point at 72
        result = router.route(8, 70)
        # The message must still be delivered, to a live node.
        assert result.destination in ring.live_ids()

    def test_lookup_hashes_raw_keys(self, router: KBRRouter, ring: ChordRing):
        result = router.lookup(8, "http://site-000.example.org/object/4")
        assert result.destination in ring.live_ids()


class TestConstrainedRouting:
    def test_constraint_required(self, router: KBRRouter):
        with pytest.raises(ValueError):
            router.route(8, 100, policy=RoutingPolicy.CONSTRAINED)

    def test_constrained_delivery_prefers_matching_nodes(self, ring: ChordRing):
        router = KBRRouter(ring)
        # Accept only nodes in the upper half of the ring.
        constraint = lambda nid: nid >= 128  # noqa: E731
        result = router.route(8, 100, policy=RoutingPolicy.CONSTRAINED, constraint=constraint)
        assert result.destination >= 128

    def test_constrained_falls_back_when_no_match_known(self, ring: ChordRing):
        router = KBRRouter(ring)
        # An unsatisfiable constraint must still deliver (Algorithm 2 keeps p').
        result = router.route(8, 100, policy=RoutingPolicy.CONSTRAINED, constraint=lambda n: False)
        assert result.destination in ring.live_ids()

    def test_constrained_same_destination_when_target_matches(self, ring: ChordRing):
        router = KBRRouter(ring)
        unconstrained = router.route(8, 70)
        constrained = router.route(
            8, 70, policy=RoutingPolicy.CONSTRAINED, constraint=lambda n: True
        )
        assert constrained.destination == unconstrained.destination


class TestRouteResult:
    def test_hops_counts_transitions(self):
        result = RouteResult(key=1, destination=3, path=[1, 2, 3])
        assert result.hops == 2

    def test_empty_path_has_zero_hops(self):
        result = RouteResult(key=1, destination=1, path=[])
        assert result.hops == 0
