"""Unit tests for the Bloom filter used by content and directory summaries."""

import pytest

from repro.datastructures.bloom import BloomFilter


class TestConstruction:
    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=0)
        with pytest.raises(ValueError):
            BloomFilter(num_bits=8, num_hashes=0)

    def test_for_capacity_uses_paper_sizing(self):
        bloom = BloomFilter.for_capacity(expected_items=500, bits_per_item=8)
        assert bloom.num_bits == 4000
        assert bloom.size_in_bytes() == 500

    def test_for_capacity_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, bits_per_item=0)

    def test_default_hash_count_from_expected_items(self):
        bloom = BloomFilter(num_bits=800, expected_items=100)
        assert 3 <= bloom.num_hashes <= 8

    def test_from_items_contains_all_items(self):
        items = [f"http://site/object/{i}" for i in range(50)]
        bloom = BloomFilter.from_items(items, num_bits=800)
        assert all(item in bloom for item in items)


class TestMembership:
    def test_no_false_negatives(self):
        bloom = BloomFilter(num_bits=2048)
        items = [f"obj-{i}" for i in range(200)]
        bloom.update(items)
        assert all(bloom.might_contain(item) for item in items)

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(num_bits=256)
        assert "anything" not in bloom
        assert bloom.fill_ratio == 0.0

    def test_false_positive_rate_is_bounded_when_sized_correctly(self):
        bloom = BloomFilter.for_capacity(expected_items=100, bits_per_item=8)
        bloom.update(f"present-{i}" for i in range(100))
        false_positives = sum(1 for i in range(2000) if f"absent-{i}" in bloom)
        assert false_positives / 2000 < 0.1

    def test_clear_resets_filter(self):
        bloom = BloomFilter(num_bits=128)
        bloom.add("x")
        bloom.clear()
        assert "x" not in bloom
        assert bloom.approximate_items == 0


class TestIntrospection:
    def test_fill_ratio_grows_with_items(self):
        bloom = BloomFilter(num_bits=512)
        previous = 0.0
        for i in range(0, 50, 10):
            bloom.update(f"item-{j}" for j in range(i, i + 10))
            assert bloom.fill_ratio >= previous
            previous = bloom.fill_ratio

    def test_false_positive_probability_estimate(self):
        bloom = BloomFilter(num_bits=256, num_hashes=4)
        assert bloom.false_positive_probability() == 0.0
        bloom.update(f"i{i}" for i in range(64))
        assert 0.0 < bloom.false_positive_probability() <= 1.0

    def test_size_in_bytes_rounds_up(self):
        assert BloomFilter(num_bits=9).size_in_bytes() == 2
        assert BloomFilter(num_bits=16).size_in_bytes() == 2


class TestSetOperations:
    def test_union_contains_both_sides(self):
        a = BloomFilter(num_bits=512, num_hashes=4)
        b = BloomFilter(num_bits=512, num_hashes=4)
        a.add("left")
        b.add("right")
        union = a.union(b)
        assert "left" in union and "right" in union

    def test_union_requires_compatible_filters(self):
        a = BloomFilter(num_bits=512, num_hashes=4)
        b = BloomFilter(num_bits=256, num_hashes=4)
        with pytest.raises(ValueError):
            a.union(b)

    def test_copy_is_independent(self):
        a = BloomFilter(num_bits=128)
        a.add("x")
        clone = a.copy()
        clone.add("y")
        assert "y" in clone
        assert "y" not in a or a == clone  # adding to the clone must not alter the original bits
        assert "x" in a

    def test_equality_by_bits(self):
        a = BloomFilter(num_bits=128, num_hashes=3)
        b = BloomFilter(num_bits=128, num_hashes=3)
        a.add("same")
        b.add("same")
        assert a == b
        b.add("more")
        assert a != b

    def test_equality_with_other_types(self):
        assert BloomFilter(num_bits=8) != "not a filter"

    def test_repr_mentions_size(self):
        assert "bits=128" in repr(BloomFilter(num_bits=128))
