"""Unit tests for landmark-based locality detection and the latency model."""

import pytest

from repro.network.landmarks import LandmarkBinner
from repro.network.latency import LatencyModel, ServerPlacement
from repro.network.topology import Topology, TopologyConfig
from repro.sim.rng import RandomStreams


@pytest.fixture
def topology() -> Topology:
    config = TopologyConfig(num_hosts=240, num_localities=4, intra_locality_spread_ms=20.0)
    return Topology(config, RandomStreams(21))


class TestLandmarkBinner:
    def test_default_landmarks_come_from_topology(self, topology: Topology):
        binner = LandmarkBinner(topology)
        assert len(binner.landmarks) == topology.num_localities

    def test_requires_at_least_one_landmark(self, topology: Topology):
        with pytest.raises(ValueError):
            LandmarkBinner(topology, landmarks=[])

    def test_measurement_has_one_latency_per_landmark(self, topology: Topology):
        binner = LandmarkBinner(topology)
        measurement = binner.measure(7)
        assert len(measurement.latencies_ms) == len(binner.landmarks)
        assert all(latency >= 0 for latency in measurement.latencies_ms)

    def test_ordering_is_a_permutation(self, topology: Topology):
        binner = LandmarkBinner(topology)
        ordering = binner.bin_of(11)
        assert sorted(ordering) == list(range(len(binner.landmarks)))

    def test_nearest_landmark_matches_minimum_latency(self, topology: Topology):
        binner = LandmarkBinner(topology)
        measurement = binner.measure(42)
        nearest = measurement.nearest_landmark()
        assert measurement.latencies_ms[nearest] == min(measurement.latencies_ms)

    def test_binning_recovers_true_localities(self, topology: Topology):
        """The paper assumes peers can detect their locality from latency measurements."""
        binner = LandmarkBinner(topology)
        assert binner.accuracy() > 0.9

    def test_accuracy_on_subset(self, topology: Topology):
        binner = LandmarkBinner(topology)
        assert 0.0 <= binner.accuracy(sample_hosts=range(20)) <= 1.0


class TestLatencyModel:
    def test_register_and_query_latency(self, topology: Topology):
        model = LatencyModel(topology)
        model.register_peer("a", 1)
        model.register_peer("b", 2)
        assert model.latency_ms("a", "b") == topology.latency_ms(1, 2)

    def test_unregistered_peer_raises(self, topology: Topology):
        model = LatencyModel(topology)
        with pytest.raises(KeyError):
            model.latency_ms("ghost", "ghost")

    def test_register_invalid_host_raises(self, topology: Topology):
        model = LatencyModel(topology)
        with pytest.raises(ValueError):
            model.register_peer("a", topology.num_hosts + 5)

    def test_unregister_removes_peer(self, topology: Topology):
        model = LatencyModel(topology)
        model.register_peer("a", 1)
        model.unregister_peer("a")
        assert not model.is_registered("a")

    def test_locality_of_peer(self, topology: Topology):
        model = LatencyModel(topology)
        model.register_peer("a", 3)
        assert model.locality_of("a") == topology.locality_of(3)

    def test_server_latency_defaults_to_max_latency(self, topology: Topology):
        model = LatencyModel(topology)
        model.register_peer("a", 0)
        assert model.latency_to_server_ms("a") == topology.config.max_latency_ms

    def test_server_latency_override(self, topology: Topology):
        model = LatencyModel(topology, ServerPlacement(server_latency_ms=321.0))
        model.register_peer("a", 0)
        assert model.latency_to_server_ms("a") == 321.0

    def test_transfer_distance_to_peer_and_server(self, topology: Topology):
        model = LatencyModel(topology)
        model.register_peer("requester", 0)
        model.register_peer("provider", 9)
        assert model.transfer_distance_ms("requester", "provider") == topology.latency_ms(0, 9)
        assert model.transfer_distance_ms("requester", None) == model.server_latency_ms

    def test_reregistering_peer_moves_it(self, topology: Topology):
        model = LatencyModel(topology)
        model.register_peer("a", 0)
        model.register_peer("a", 5)
        assert model.host_of("a") == 5
