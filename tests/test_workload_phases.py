"""Tests for compiled workload phases and the program-aware trace path.

The load-bearing invariant: a *homogeneous* program (every span default, or
all spans sharing the same modulation) must generate byte-identical draws to
the single-phase path — phase boundaries may never perturb a trace unless
the phases actually differ.  That is what keeps every pre-program golden
valid.
"""

import pytest

from repro.sim.rng import RandomStreams
from repro.workload.generator import QueryGenerator, WorkloadConfig
from repro.workload.phases import (
    PhaseSpan,
    segment_counts,
    spans_are_trivial,
    validate_spans,
)

CFG = WorkloadConfig(
    num_websites=8,
    active_websites=2,
    objects_per_website=50,
    num_localities=3,
    query_rate_per_s=2.0,
)


def make_trace(phases=None, config=CFG, seed=99, duration=1800.0):
    generator = QueryGenerator(config, RandomStreams(seed))
    return generator.generate_trace(duration, phases=phases)


def columns(trace):
    return (
        list(trace.times),
        list(trace.website_index),
        list(trace.object_rank),
        list(trace.locality),
        list(trace.prefers_new),
        [w.name for w in trace.websites],
        trace.first_query_id,
    )


class TestPhaseSpan:
    def test_validation(self):
        with pytest.raises(ValueError, match="end_s"):
            PhaseSpan(start_s=10.0, end_s=10.0)
        with pytest.raises(ValueError, match="rate_multiplier"):
            PhaseSpan(start_s=0.0, end_s=1.0, rate_multiplier=0.0)
        with pytest.raises(ValueError, match="hotspot_rotation"):
            PhaseSpan(start_s=0.0, end_s=1.0, hotspot_rotation=-1)

    def test_is_default_and_trivial(self):
        default = PhaseSpan(0.0, 10.0)
        assert default.is_default
        assert spans_are_trivial([default, PhaseSpan(10.0, 20.0)])
        assert spans_are_trivial([])
        assert not spans_are_trivial([PhaseSpan(0.0, 10.0, rate_multiplier=2.0)])

    def test_validate_spans_requires_contiguity(self):
        with pytest.raises(ValueError, match="start at 0"):
            validate_spans([PhaseSpan(1.0, 10.0)], 10.0)
        with pytest.raises(ValueError, match="contiguous"):
            validate_spans([PhaseSpan(0.0, 5.0), PhaseSpan(6.0, 10.0)], 10.0)
        with pytest.raises(ValueError, match="cover the whole run"):
            validate_spans([PhaseSpan(0.0, 5.0)], 10.0)
        spans = validate_spans([PhaseSpan(0.0, 5.0), PhaseSpan(5.0, 10.0)], 10.0)
        assert len(spans) == 2

    def test_segment_counts_boundaries_are_half_open(self):
        times = [0.5, 1.0, 1.5, 2.0, 9.0]
        # A time equal to a boundary belongs to the next segment.
        assert segment_counts(times, [1.0, 2.0, 10.0]) == (1, 2, 2)
        # Everything at/past the final end lands in the last segment.
        assert segment_counts([11.0, 12.0], [1.0, 10.0]) == (0, 2)
        assert segment_counts([], [1.0, 10.0]) == (0, 0)


class TestProgramTraceBitIdentity:
    def test_split_anywhere_is_byte_identical_when_homogeneous(self):
        base = columns(make_trace())
        for split in (1.0, 450.0, 900.0, 1799.5):
            program = [PhaseSpan(0.0, split), PhaseSpan(split, 1800.0)]
            assert columns(make_trace(program)) == base

    def test_many_homogeneous_splits_are_byte_identical(self):
        base = columns(make_trace())
        program = [PhaseSpan(i * 180.0, (i + 1) * 180.0) for i in range(10)]
        assert columns(make_trace(program)) == base

    def test_trivial_single_span_is_byte_identical(self):
        base = columns(make_trace())
        assert columns(make_trace([PhaseSpan(0.0, 1800.0)])) == base

    def test_uniform_arrivals_homogeneous_split_byte_identical(self):
        cfg = WorkloadConfig(
            num_websites=8, active_websites=2, objects_per_website=50,
            num_localities=3, query_rate_per_s=2.0, arrival_process="uniform",
        )
        base = columns(make_trace(config=cfg))
        program = [PhaseSpan(0.0, 600.0), PhaseSpan(600.0, 1800.0)]
        assert columns(make_trace(program, config=cfg)) == base

    def test_boundary_aligned_arrival_lands_in_the_next_phase(self):
        # Uniform arrivals at 1 q/s land exactly on integer timestamps, so a
        # boundary at an arrival time exercises the half-open convention.
        cfg = WorkloadConfig(
            num_websites=8, active_websites=2, objects_per_website=50,
            num_localities=3, query_rate_per_s=1.0, arrival_process="uniform",
        )
        base = columns(make_trace(config=cfg, duration=100.0))
        program = [PhaseSpan(0.0, 50.0), PhaseSpan(50.0, 100.0)]
        assert columns(make_trace(program, config=cfg, duration=100.0)) == base

    def test_post_call_stream_state_matches_single_phase(self):
        """After a homogeneous program, every stream continues identically."""
        plain = QueryGenerator(CFG, RandomStreams(5))
        phased = QueryGenerator(CFG, RandomStreams(5))
        plain.generate_trace(1200.0)
        phased.generate_trace(
            1200.0, phases=[PhaseSpan(0.0, 400.0), PhaseSpan(400.0, 1200.0)]
        )
        follow_plain = plain.generate_trace(300.0, start_time=1200.0)
        follow_phased = phased.generate_trace(300.0, start_time=1200.0)
        assert columns(follow_plain) == columns(follow_phased)


class TestProgramModulation:
    def test_rate_multiplier_scales_arrivals(self):
        program = [
            PhaseSpan(0.0, 900.0, rate_multiplier=1.0),
            PhaseSpan(900.0, 1800.0, rate_multiplier=3.0),
        ]
        trace = make_trace(program)
        first = sum(1 for t in trace.times if t < 900.0)
        second = len(trace) - first
        assert second > 2 * first

    def test_hotspot_rotation_moves_the_active_window(self):
        program = [
            PhaseSpan(0.0, 900.0),
            PhaseSpan(900.0, 1800.0, hotspot_rotation=4),
        ]
        trace = make_trace(program)
        names = {w.name for w in trace.websites}
        assert len(names) == 4  # base pair plus the rotated pair
        boundary = next(i for i, t in enumerate(trace.times) if t >= 900.0)
        early = {trace.websites[w].name for w in trace.website_index[:boundary]}
        late = {trace.websites[w].name for w in trace.website_index[boundary:]}
        assert early.isdisjoint(late)

    def test_rotation_wraps_modulo_catalog(self):
        program = [PhaseSpan(0.0, 1800.0, hotspot_rotation=8)]  # == catalogue size
        assert columns(make_trace(program))[5] == columns(make_trace())[5]

    def test_zipf_override_steepens_the_skew(self):
        flat = make_trace([PhaseSpan(0.0, 1800.0, zipf_alpha=0.1)])
        steep = make_trace([PhaseSpan(0.0, 1800.0, zipf_alpha=2.5)])
        top_share_flat = sum(1 for r in flat.object_rank if r == 0) / len(flat)
        top_share_steep = sum(1 for r in steep.object_rank if r == 0) / len(steep)
        assert top_share_steep > 2 * top_share_flat

    def test_queries_materialise_with_rotated_websites(self):
        program = [
            PhaseSpan(0.0, 900.0),
            PhaseSpan(900.0, 1800.0, hotspot_rotation=4),
        ]
        trace = make_trace(program)
        last = trace.query(len(trace) - 1)
        assert last.website in {w.name for w in trace.websites}
        assert last.website in last.object_id

    def test_program_trace_is_deterministic(self):
        program = [
            PhaseSpan(0.0, 600.0, rate_multiplier=0.5),
            PhaseSpan(600.0, 1200.0, rate_multiplier=2.0, zipf_alpha=1.3),
            PhaseSpan(1200.0, 1800.0, hotspot_rotation=2),
        ]
        assert columns(make_trace(program)) == columns(make_trace(program))
