"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_after_schedules_relative_to_now(self):
        sim = Simulator()
        times = []
        sim.after(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]

    def test_at_schedules_absolute(self):
        sim = Simulator()
        times = []
        sim.at(3.0, lambda: times.append(sim.now))
        sim.at(7.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [3.0, 7.0]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_events_scheduled_during_run_are_executed(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth > 0:
                sim.after(1.0, lambda: chain(depth - 1))

        sim.at(0.0, lambda: chain(3))
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]


class TestRunControl:
    def test_run_until_horizon_stops_clock_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(100.0, lambda: fired.append(100))
        end = sim.run(until=10.0)
        assert fired == [1]
        assert end == 10.0
        assert sim.now == 10.0

    def test_end_time_bounds_all_runs(self):
        sim = Simulator(end_time=5.0)
        fired = []
        sim.at(2.0, lambda: fired.append(2))
        sim.at(8.0, lambda: fired.append(8))
        sim.run()
        assert fired == [2]
        assert sim.now == 5.0

    def test_run_with_empty_queue_advances_to_horizon(self):
        sim = Simulator()
        assert sim.run(until=42.0) == 42.0

    def test_stop_interrupts_run(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(2.0, lambda: (fired.append(2), sim.stop()))
        sim.at(3.0, lambda: fired.append(3))
        sim.run()
        assert fired == [1, 2]

    def test_run_until_past_is_rejected(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.at(float(t), lambda: None)
        sim.run()
        assert sim.events_fired == 5

    def test_events_fired_is_live_inside_callbacks(self):
        sim = Simulator()
        seen = []
        sim.at(1.0, lambda: seen.append(sim.events_fired))
        sim.at(2.0, lambda: seen.append(sim.events_fired))
        sim.run()
        assert seen == [1, 2]

    def test_cancelled_event_not_executed(self):
        sim = Simulator()
        fired = []
        event = sim.at(1.0, lambda: fired.append("cancelled"))
        sim.at(2.0, lambda: fired.append("kept"))
        sim.cancel(event)
        sim.run()
        assert fired == ["kept"]


class TestStepHorizon:
    def test_step_peeks_instead_of_consuming_past_horizon(self):
        """An event beyond end_time must stay pending, not be silently eaten."""
        sim = Simulator(end_time=5.0)
        sim.at(10.0, lambda: None)
        assert sim.step() is False
        assert sim.now == 5.0
        assert sim.pending_events == 1  # the event was peeked, not consumed
        assert sim.events_fired == 0

    def test_step_executes_events_inside_horizon(self):
        sim = Simulator(end_time=5.0)
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(10.0, lambda: fired.append(10))
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is False
        assert sim.pending_events == 1


class TestBatchScheduling:
    def test_schedule_batch_equivalent_to_at(self):
        sim_batch, sim_at = Simulator(), Simulator()
        fired_batch, fired_at = [], []
        times = [3.0, 1.0, 2.0]
        sim_batch.schedule_batch(
            (t, lambda t=t: fired_batch.append(t)) for t in times
        )
        for t in times:
            sim_at.at(t, lambda t=t: fired_at.append(t))
        sim_batch.run()
        sim_at.run()
        assert fired_batch == fired_at == [1.0, 2.0, 3.0]

    def test_schedule_batch_rejects_past_times(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_batch([(1.0, lambda: None)])


class TestPeriodic:
    def test_call_every_fires_repeatedly(self):
        sim = Simulator()
        times = []
        sim.call_every(10.0, lambda: times.append(sim.now))
        sim.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_call_every_with_custom_start(self):
        sim = Simulator()
        times = []
        sim.call_every(10.0, lambda: times.append(sim.now), start=5.0)
        sim.run(until=30.0)
        assert times == [5.0, 15.0, 25.0]

    def test_periodic_handle_cancel_stops_series(self):
        sim = Simulator()
        times = []
        handle = sim.call_every(10.0, lambda: times.append(sim.now))
        sim.at(25.0, handle.cancel)
        sim.run(until=100.0)
        assert times == [10.0, 20.0]
        assert handle.cancelled

    def test_zero_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_every(0.0, lambda: None)

    def test_periodic_handle_counts_firings(self):
        sim = Simulator()
        handle = sim.call_every(1.0, lambda: None)
        sim.run(until=5.5)
        assert handle.fired == 5


class TestDeterminism:
    def test_same_seed_same_streams(self):
        sim_a = Simulator(seed=99)
        sim_b = Simulator(seed=99)
        draws_a = [sim_a.streams.random("x") for _ in range(10)]
        draws_b = [sim_b.streams.random("x") for _ in range(10)]
        assert draws_a == draws_b

    def test_different_seed_different_streams(self):
        sim_a = Simulator(seed=1)
        sim_b = Simulator(seed=2)
        assert [sim_a.streams.random("x") for _ in range(5)] != [
            sim_b.streams.random("x") for _ in range(5)
        ]
