"""Tests for sweep execution: determinism, parallelism, the result table."""

import json

import pytest

from repro.sweeps.engine import run_sweep
from repro.sweeps.library import (
    get_sweep,
    iter_sweeps,
    register_sweep,
    sweep_names,
    unregister_sweep,
)
from repro.sweeps.spec import SweepAxis, SweepSpec

TINY_SCALE = 0.1

#: a 2-cell grid small enough for per-test execution
TINY_SWEEP = SweepSpec(
    name="tiny-gossip-length",
    description="test-only two-point Lgossip grid",
    base="paper-default",
    axes=(SweepAxis.single("Lgossip", "gossip_length", (5, 20)),),
)


class TestRegistry:
    def test_builtin_sweeps_registered(self):
        assert {
            "table2a-gossip-length",
            "table2b-gossip-period",
            "table2c-view-size",
            "ablation-churn",
            "ablation-push-threshold",
            "fig6-hit-ratio-comparison",
        } <= set(sweep_names())

    def test_get_unknown_sweep_is_actionable(self):
        with pytest.raises(KeyError, match="known sweeps"):
            get_sweep("no-such-sweep")

    def test_duplicate_registration_rejected(self):
        sweep = SweepSpec(name="tmp-sweep")
        register_sweep(sweep)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_sweep(sweep)
            register_sweep(sweep, overwrite=True)
        finally:
            unregister_sweep("tmp-sweep")

    def test_iteration_is_sorted(self):
        assert [sweep.name for sweep in iter_sweeps()] == sweep_names()


class TestRunSweep:
    def test_sequential_run_attaches_results(self):
        result = run_sweep(TINY_SWEEP, scale=TINY_SCALE)
        assert len(result) == 2
        for cell in result:
            assert cell.result is not None
            assert cell.result.spec.gossip_length == cell.assignments["gossip_length"]
            assert set(cell.systems) == {"flower"}

    def test_parallel_is_byte_identical_to_sequential(self):
        sequential = run_sweep(TINY_SWEEP, scale=TINY_SCALE, jobs=1)
        parallel = run_sweep(TINY_SWEEP, scale=TINY_SCALE, jobs=2)
        assert json.dumps(sequential.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )
        # The parallel path returns digests only (results stay in the workers).
        assert all(cell.result is None for cell in parallel)

    def test_runs_are_deterministic_across_invocations(self):
        first = run_sweep(TINY_SWEEP, scale=TINY_SCALE)
        second = run_sweep(TINY_SWEEP, scale=TINY_SCALE)
        assert first.to_dict() == second.to_dict()

    def test_run_by_name(self):
        result = run_sweep("table2a-gossip-length", scale=TINY_SCALE)
        assert result.sweep.name == "table2a-gossip-length"
        assert result.base == "paper-default"
        assert len(result) == 3

    def test_shared_seed_reuses_the_trace(self):
        """Common random numbers: every cell processes the same query trace."""
        result = run_sweep(TINY_SWEEP, scale=TINY_SCALE)
        queries = {cell.metric("num_queries") for cell in result}
        assert len(queries) == 1

    def test_seed_override_changes_cells(self):
        default = run_sweep(TINY_SWEEP, scale=TINY_SCALE)
        reseeded = run_sweep(TINY_SWEEP, scale=TINY_SCALE, seed=7)
        assert reseeded.base_seed == 7
        assert all(cell.seed == 7 for cell in reseeded)
        assert default.to_dict() != reseeded.to_dict()

    def test_cell_lookup_by_assignment(self):
        result = run_sweep(TINY_SWEEP, scale=TINY_SCALE)
        assert result.cell(gossip_length=5).assignments == {"gossip_length": 5}
        with pytest.raises(KeyError, match="0 cells"):
            result.cell(gossip_length=999)
        with pytest.raises(KeyError, match="2 cells"):
            result.cell()

    def test_metric_helpers(self):
        result = run_sweep(TINY_SWEEP, scale=TINY_SCALE)
        assert result.systems() == ["flower"]
        names = result.metric_names("flower")
        assert names[:2] == ["num_queries", "hit_ratio"]
        assert len(result.series("hit_ratio")) == 2

    def test_derived_policy_varies_the_trace(self):
        import dataclasses

        derived = dataclasses.replace(TINY_SWEEP, name="tiny-derived",
                                      seed_policy="derived")
        result = run_sweep(derived, scale=TINY_SCALE)
        seeds = {cell.seed for cell in result}
        assert len(seeds) == 2

    def test_multi_system_sweep_reports_both_systems(self):
        result = run_sweep("fig6-hit-ratio-comparison", scale=TINY_SCALE)
        (cell,) = result.cells
        assert set(cell.systems) == {"flower", "squirrel"}
        assert result.systems() == ["flower", "squirrel"]
        # Both systems processed the same trace.
        assert cell.metric("num_queries", "flower") == cell.metric(
            "num_queries", "squirrel"
        )

    def test_digest_is_a_sha256_of_the_cell(self):
        result = run_sweep(TINY_SWEEP, scale=TINY_SCALE)
        digests = [cell.digest for cell in result]
        assert all(len(digest) == 64 for digest in digests)
        assert len(set(digests)) == len(digests)

    def test_to_dict_round_trips_through_json(self):
        result = run_sweep(TINY_SWEEP, scale=TINY_SCALE)
        blob = json.dumps(result.to_dict(), sort_keys=True)
        assert json.loads(blob) == json.loads(
            json.dumps(result.to_dict(), sort_keys=True)
        )
