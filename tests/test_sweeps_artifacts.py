"""Tests for the sweep artifact writers (CSV / JSON / markdown)."""

import csv
import io
import json

import pytest

from repro.sweeps.artifacts import (
    KNOWN_FORMATS,
    export_artifacts,
    format_sweep_result,
    result_table,
    to_csv,
    to_markdown,
)
from repro.sweeps.engine import run_sweep

TINY_SCALE = 0.1


@pytest.fixture(scope="module")
def table2a_result():
    return run_sweep("table2a-gossip-length", scale=TINY_SCALE)


@pytest.fixture(scope="module")
def fig6_result():
    return run_sweep("fig6-hit-ratio-comparison", scale=TINY_SCALE)


class TestResultTable:
    def test_single_system_columns_are_unprefixed(self, table2a_result):
        header, rows = result_table(table2a_result)
        assert header[0] == "Lgossip"
        assert "hit_ratio" in header
        assert header[-2:] == ["seed", "digest"]
        assert len(rows) == 3
        assert [row[0] for row in rows] == ["5", "10", "20"]

    def test_multi_system_columns_are_prefixed(self, fig6_result):
        header, rows = result_table(fig6_result)
        assert "flower.hit_ratio" in header
        assert "squirrel.hit_ratio" in header
        assert len(rows) == 1


class TestCsv:
    def test_csv_parses_and_matches_the_grid(self, table2a_result):
        parsed = list(csv.DictReader(io.StringIO(to_csv(table2a_result))))
        assert len(parsed) == 3
        assert [row["Lgossip"] for row in parsed] == ["5", "10", "20"]
        for row, cell in zip(parsed, table2a_result.cells):
            assert float(row["hit_ratio"]) == cell.metric("hit_ratio")
            assert row["digest"] == cell.digest


class TestMarkdown:
    def test_markdown_has_a_table_and_metadata(self, table2a_result):
        text = to_markdown(table2a_result)
        assert text.startswith("# Sweep: table2a-gossip-length")
        assert "base scenario: `paper-default`" in text
        assert text.count("|") > 10
        assert "| 5 " in text


class TestTerminalTable:
    def test_format_elides_the_digest_column(self, table2a_result):
        text = format_sweep_result(table2a_result)
        assert "Sweep: table2a-gossip-length" in text
        assert "digest" not in text
        assert "Lgossip" in text


class TestExport:
    def test_export_writes_all_formats(self, tmp_path, table2a_result):
        paths = export_artifacts(table2a_result, tmp_path)
        assert sorted(path.suffix for path in paths) == [".csv", ".json", ".md"]
        for path in paths:
            assert path.exists()
            assert path.stem == "table2a-gossip-length"
        document = json.loads((tmp_path / "table2a-gossip-length.json").read_text())
        assert document == table2a_result.to_dict()

    def test_export_subset_of_formats(self, tmp_path, table2a_result):
        paths = export_artifacts(table2a_result, tmp_path, formats=("csv",))
        assert [path.suffix for path in paths] == [".csv"]

    def test_unknown_format_rejected(self, tmp_path, table2a_result):
        with pytest.raises(ValueError, match="unknown artifact format"):
            export_artifacts(table2a_result, tmp_path, formats=("xlsx",))
        assert KNOWN_FORMATS == ("csv", "json", "md")

    def test_export_creates_the_directory(self, tmp_path, table2a_result):
        target = tmp_path / "deep" / "nested"
        export_artifacts(table2a_result, target, formats=("json",))
        assert (target / "table2a-gossip-length.json").exists()
