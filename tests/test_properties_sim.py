"""Property-based tests of the discrete-event simulator.

Complements ``tests/test_properties.py`` (data-structure properties) with the
engine invariants the whole reproduction rests on:

* events never fire out of time order, whatever order they were scheduled in;
* ``events_fired`` / ``pending_events`` bookkeeping is conserved under
  randomized scheduling, cancellation and nested (re-entrant) scheduling;
* an end-time horizon is never overshot.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.sim.engine import SimulationError, Simulator

#: randomized schedules: (delay, reschedule_extra_delay or None to cancel-free)
delays = st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=0, max_size=60)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(schedule):
    sim = Simulator(seed=1)
    fired = []
    for delay in schedule:
        sim.after(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(schedule)


@given(delays)
def test_events_fired_plus_pending_is_conserved(schedule):
    """Every scheduled event is either fired or still pending, never both/neither."""
    sim = Simulator(seed=1)
    for delay in schedule:
        sim.after(delay, lambda: None)
    assert sim.pending_events == len(schedule)
    assert sim.events_fired == 0
    while sim.events_fired + sim.pending_events == len(schedule):
        if not sim.step():
            break
    assert sim.events_fired == len(schedule)
    assert sim.pending_events == 0


@given(delays, st.floats(min_value=0.0, max_value=1000.0))
def test_horizon_is_never_overshot(schedule, horizon):
    sim = Simulator(seed=1, end_time=horizon)
    fired_times = []
    for delay in schedule:
        sim.after(delay, lambda: fired_times.append(sim.now))
    end = sim.run()
    assert all(t <= horizon for t in fired_times)
    assert sim.now <= horizon
    # Events within the horizon all fired; the ones beyond it never will.
    expected = sum(1 for d in schedule if d <= horizon)
    assert len(fired_times) == expected
    assert end == sim.now


@given(delays, st.data())
def test_reentrant_scheduling_preserves_time_order(schedule, data):
    """Callbacks that schedule further events keep the clock monotonic."""
    sim = Simulator(seed=1, end_time=2000.0)
    fired = []

    def make_callback(depth):
        def callback():
            fired.append(sim.now)
            if depth > 0:
                extra = data.draw(
                    st.floats(min_value=0.0, max_value=100.0), label="extra delay"
                )
                sim.after(extra, make_callback(depth - 1))

        return callback

    for delay in schedule[:20]:
        sim.after(delay, make_callback(2))
    sim.run()
    assert fired == sorted(fired)
    assert sim.pending_events == 0
    assert sim.events_fired == len(fired)


@given(delays, st.sets(st.integers(min_value=0, max_value=59)))
def test_cancelled_events_never_fire(schedule, to_cancel):
    sim = Simulator(seed=1)
    fired = []
    events = [
        sim.after(delay, lambda i=i: fired.append(i)) for i, delay in enumerate(schedule)
    ]
    cancelled = {i for i in to_cancel if i < len(events)}
    for index in cancelled:
        sim.cancel(events[index])
    sim.run()
    assert set(fired).isdisjoint(cancelled)
    assert len(fired) == len(schedule) - len(cancelled)
    fired_times = [schedule[i] for i in fired]
    assert fired_times == sorted(fired_times)


@settings(max_examples=25)
@given(
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=10.0, max_value=2000.0),
)
def test_periodic_handles_fire_the_exact_expected_count(period, horizon):
    sim = Simulator(seed=1, end_time=horizon)
    handle = sim.call_every(period, lambda: None)
    sim.run()
    # Fire times are accumulated sums, so allow one tick of float drift
    # around the ideal horizon/period count.
    assert abs(handle.fired - horizon / period) <= 1.0
    assert sim.events_fired == handle.fired


def test_scheduling_in_the_past_is_rejected():
    sim = Simulator(seed=1)
    sim.after(10.0, lambda: None)
    sim.run()
    assert sim.now == 10.0
    with pytest.raises(SimulationError):
        sim.at(5.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.after(-1.0, lambda: None)


@given(delays)
def test_stop_freezes_the_simulation_mid_run(schedule):
    sim = Simulator(seed=1)
    fired = []
    stop_after = len(schedule) // 2

    def record(index):
        fired.append(index)
        if len(fired) == stop_after:
            sim.stop()

    for i, delay in enumerate(schedule):
        sim.after(delay, lambda i=i: record(i))
    sim.run()
    if schedule and stop_after:
        assert len(fired) == stop_after
        assert sim.pending_events == len(schedule) - stop_after
