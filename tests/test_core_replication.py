"""Unit tests for the active-replication extension (Section 8 future work)."""

import pytest

from repro.core.config import FlowerConfig, GossipConfig
from repro.core.replication import ActiveReplicator, ReplicationConfig
from repro.core.system import FlowerCDN
from repro.network.topology import Topology, TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.assignment import ResolvedQuery


@pytest.fixture
def system() -> FlowerCDN:
    config = FlowerConfig(
        num_websites=2,
        active_websites=1,
        objects_per_website=20,
        num_localities=3,
        max_content_overlay_size=10,
        locality_bits=2,
        website_bits=10,
        gossip=GossipConfig(
            gossip_period_s=300.0, view_size=5, gossip_length=3, push_threshold=0.2,
            keepalive_period_s=300.0, dead_age=3,
        ),
        simulation_duration_s=7200.0,
        metrics_window_s=600.0,
    )
    topology = Topology(
        TopologyConfig(num_hosts=150, num_localities=3, locality_weights=(1.0, 1.0, 1.0)),
        RandomStreams(3),
    )
    sim = Simulator(seed=3, end_time=config.simulation_duration_s)
    cdn = FlowerCDN(config, sim, topology)
    cdn.bootstrap()
    return cdn


def issue_queries(system: FlowerCDN, locality: int, object_index: int, count: int) -> None:
    website = system.catalog.websites[0]
    free = [
        h for h in system.topology.hosts_in_locality(locality)
        if h not in system.reserved_hosts
    ]
    for i in range(count):
        system.handle_query(
            ResolvedQuery(
                query_id=locality * 1000 + object_index * 100 + i,
                time=system.sim.now,
                website=website.name,
                object_id=website.object_id(object_index),
                locality=locality,
                client_host=free[i],
                is_new_client=True,
            )
        )


class TestReplicationConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period_s": 0},
            {"top_k": 0},
            {"min_requests": 0},
            {"object_size_bytes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ReplicationConfig(**kwargs)


class TestPopularityTracking:
    def test_directory_counts_requests(self, system):
        issue_queries(system, locality=0, object_index=4, count=5)
        website = system.catalog.websites[0].name
        directory = system.directory_for(website, 0)
        popular = directory.popular_objects(top_k=1)
        assert popular == [system.catalog.websites[0].object_id(4)]
        assert directory.request_count(popular[0]) >= 5

    def test_popular_objects_handles_empty_and_zero_k(self, system):
        website = system.catalog.websites[0].name
        directory = system.directory_for(website, 0)
        assert directory.popular_objects(3) == []
        assert directory.popular_objects(0) == []


class TestActiveReplicator:
    def test_popular_objects_are_pushed_to_neighbor_overlays(self, system):
        website = system.catalog.websites[0]
        # Locality 0 is hot for object 4; locality 1 has an overlay but no copy.
        issue_queries(system, locality=0, object_index=4, count=5)
        issue_queries(system, locality=1, object_index=9, count=2)
        replicator = ActiveReplicator(
            system, ReplicationConfig(period_s=600.0, top_k=2, min_requests=3)
        )
        replicator.start()
        system.sim.run(until=1300.0)

        assert replicator.replications_performed > 0
        target_directory = system.directory_for(website.name, 1)
        assert website.object_id(4) in target_directory.indexed_objects()
        # The copy physically exists at a content peer of the target overlay.
        holders = target_directory.lookup_index(website.object_id(4))
        assert holders
        holder = system.content_peer(holders[0])
        assert holder.locality == 1
        assert holder.has_object(website.object_id(4))

    def test_objects_below_request_threshold_are_not_replicated(self, system):
        issue_queries(system, locality=0, object_index=4, count=1)
        issue_queries(system, locality=1, object_index=9, count=1)
        replicator = ActiveReplicator(
            system, ReplicationConfig(period_s=600.0, top_k=2, min_requests=10)
        )
        replicator.start()
        system.sim.run(until=1300.0)
        assert replicator.replications_performed == 0

    def test_no_replication_into_empty_overlays(self, system):
        issue_queries(system, locality=0, object_index=4, count=5)
        replicator = ActiveReplicator(
            system, ReplicationConfig(period_s=600.0, top_k=1, min_requests=3)
        )
        replicator.start()
        system.sim.run(until=1300.0)
        # Localities 1 and 2 have no content peers, so nothing can be pushed there.
        assert all(event.target_locality == 0 for event in replicator.events)

    def test_replication_traffic_is_accounted(self, system):
        issue_queries(system, locality=0, object_index=4, count=5)
        issue_queries(system, locality=1, object_index=9, count=2)
        replicator = ActiveReplicator(
            system, ReplicationConfig(period_s=600.0, top_k=2, min_requests=3)
        )
        replicator.start()
        system.sim.run(until=1300.0)
        if replicator.replications_performed:
            assert system.bandwidth.messages_by_category().get("replication", 0) > 0

    def test_replication_is_idempotent_across_rounds(self, system):
        website = system.catalog.websites[0]
        issue_queries(system, locality=0, object_index=4, count=5)
        issue_queries(system, locality=1, object_index=9, count=2)
        replicator = ActiveReplicator(
            system, ReplicationConfig(period_s=300.0, top_k=1, min_requests=3)
        )
        replicator.start()
        system.sim.run(until=2000.0)
        pushes_of_object = [
            event
            for event in replicator.events
            if event.object_id == website.object_id(4) and event.target_locality == 1
        ]
        assert len(pushes_of_object) <= 1

    def test_start_stop(self, system):
        replicator = ActiveReplicator(system)
        replicator.start()
        replicator.start()  # idempotent
        replicator.stop()
        replicator.stop()
        assert replicator.replications_performed == 0
