"""Unit tests for FlowerConfig validation and the engineered D-ring keys."""

import pytest

from repro.core.config import HOUR, MINUTE, FlowerConfig, GossipConfig, MessageSizeModel
from repro.core.keys import KeyScheme


class TestGossipConfig:
    def test_defaults_match_table1_choice(self):
        gossip = GossipConfig()
        assert gossip.gossip_period_s == 30 * MINUTE
        assert gossip.view_size == 50
        assert gossip.gossip_length == 10
        assert gossip.push_threshold == 0.1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gossip_period_s": 0},
            {"view_size": 0},
            {"gossip_length": 0},
            {"gossip_length": 100, "view_size": 50},
            {"push_threshold": 0},
            {"push_threshold": 1.5},
            {"keepalive_period_s": 0},
            {"dead_age": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GossipConfig(**kwargs)


class TestMessageSizeModel:
    def test_gossip_message_size_scales_with_gossip_length(self):
        sizes = MessageSizeModel()
        small = sizes.gossip_message_bytes(summary_bits=800, gossip_length=5)
        large = sizes.gossip_message_bytes(summary_bits=800, gossip_length=20)
        assert large > small
        assert large - small == 15 * sizes.view_entry_bytes(800)

    def test_push_size_scales_with_changes(self):
        sizes = MessageSizeModel()
        assert sizes.push_message_bytes(10) - sizes.push_message_bytes(0) == 10 * 20

    def test_summary_bytes_rounds_up(self):
        sizes = MessageSizeModel()
        assert sizes.summary_bytes(9) == 2
        assert sizes.keepalive_bytes() == sizes.header_bytes
        assert sizes.summary_refresh_bytes(800) == sizes.header_bytes + 100


class TestFlowerConfig:
    def test_table1_defaults(self):
        config = FlowerConfig()
        table = config.table1()
        assert table["Nb of localities (k)"] == 6
        assert table["Nb of websites (|W|)"] == 100
        assert table["Max content-overlay size (Sco)"] == 100
        assert table["View size (Vgossip)"] == 50
        assert table["Gossip length (Lgossip)"] == 10
        assert config.simulation_duration_s == 24 * HOUR

    def test_derived_quantities(self):
        config = FlowerConfig()
        assert config.id_bits == config.locality_bits + config.website_bits
        assert config.summary_bits == 8 * config.objects_per_website
        assert config.num_directory_peers == 600

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_websites": 0},
            {"active_websites": 0},
            {"active_websites": 200},
            {"objects_per_website": 0},
            {"num_localities": 0},
            {"max_content_overlay_size": 0},
            {"num_localities": 20, "locality_bits": 3},
            {"website_bits": 0},
            {"summary_bits_per_object": 0},
            {"content_miss_fallback": "random"},
            {"max_redirection_attempts": 0},
            {"content_cache_capacity": 0},
            {"simulation_duration_s": 0},
            {"metrics_window_s": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FlowerConfig(**kwargs)

    def test_with_gossip_returns_modified_copy(self):
        config = FlowerConfig()
        tuned = config.with_gossip(gossip_length=20)
        assert tuned.gossip.gossip_length == 20
        assert config.gossip.gossip_length == 10  # original untouched

    def test_scaled_down_preserves_gossip(self):
        config = FlowerConfig().scaled_down()
        assert config.num_websites < 100
        assert config.gossip == FlowerConfig().gossip


class TestKeyScheme:
    @pytest.fixture
    def keys(self) -> KeyScheme:
        return KeyScheme(website_bits=13, locality_bits=3)

    def test_bit_budget(self, keys: KeyScheme):
        assert keys.idspace.bits == 16
        assert keys.max_localities == 8
        assert keys.max_websites == 8192

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyScheme(website_bits=0, locality_bits=3)
        with pytest.raises(ValueError):
            KeyScheme(website_bits=3, locality_bits=0)

    def test_encode_decode_round_trip(self, keys: KeyScheme):
        for website_id in (0, 1, 4095, 8191):
            for locality in (0, 3, 7):
                identifier = keys.encode(website_id, locality)
                decoded = keys.decode(identifier)
                assert decoded.website_id == website_id
                assert decoded.locality_id == locality
                assert int(decoded) == identifier

    def test_encode_bounds(self, keys: KeyScheme):
        with pytest.raises(ValueError):
            keys.encode(keys.max_websites, 0)
        with pytest.raises(ValueError):
            keys.encode(0, keys.max_localities)

    def test_directory_ids_are_consecutive(self, keys: KeyScheme):
        """Section 3.1: directory peers of one website occupy successive IDs."""
        ids = keys.directory_ids_for("http://a.example.org", num_localities=6)
        assert len(ids) == 6
        assert [b - a for a, b in zip(ids, ids[1:])] == [1] * 5

    def test_directory_ids_bounds(self, keys: KeyScheme):
        with pytest.raises(ValueError):
            keys.directory_ids_for("http://a.org", num_localities=0)
        with pytest.raises(ValueError):
            keys.directory_ids_for("http://a.org", num_localities=9)

    def test_key_for_matches_directory_id(self, keys: KeyScheme):
        """The search key of (ws, loc) equals the ID of d(ws, loc)."""
        ids = keys.directory_ids_for("http://a.example.org", num_localities=4)
        for locality, expected in enumerate(ids):
            assert keys.key_for("http://a.example.org", locality) == expected

    def test_same_website_predicate(self, keys: KeyScheme):
        a0 = keys.key_for("http://a.org", 0)
        a5 = keys.key_for("http://a.org", 5)
        b0 = keys.key_for("http://b.org", 0)
        assert keys.same_website(a0, a5)
        assert not keys.same_website(a0, b0)
        constraint = keys.website_constraint(a0)
        assert constraint(a5) and not constraint(b0)

    def test_website_id_is_deterministic(self, keys: KeyScheme):
        assert keys.website_id("http://x.org") == keys.website_id("http://x.org")
        assert 0 <= keys.website_id("http://x.org") < keys.max_websites

    def test_locality_of_and_website_id_of(self, keys: KeyScheme):
        identifier = keys.key_for("http://x.org", 5)
        assert keys.locality_of(identifier) == 5
        assert keys.website_id_of(identifier) == keys.website_id("http://x.org")


class TestScalingUpKeys:
    """Section 5.3: extra low-order bits allow several directory peers per pair."""

    @pytest.fixture
    def keys(self) -> KeyScheme:
        return KeyScheme(website_bits=10, locality_bits=3, replica_bits=2)

    def test_replica_bits_extend_the_identifier_space(self, keys: KeyScheme):
        assert keys.idspace.bits == 15
        assert keys.max_replicas == 4
        basic = KeyScheme(website_bits=10, locality_bits=3)
        assert basic.max_replicas == 1

    def test_negative_replica_bits_rejected(self):
        with pytest.raises(ValueError):
            KeyScheme(website_bits=10, locality_bits=3, replica_bits=-1)

    def test_encode_decode_round_trip_with_replicas(self, keys: KeyScheme):
        for replica in range(keys.max_replicas):
            identifier = keys.encode(37, 5, replica)
            decoded = keys.decode(identifier)
            assert decoded.website_id == 37
            assert decoded.locality_id == 5
            assert decoded.replica_id == replica

    def test_replica_out_of_range_rejected(self, keys: KeyScheme):
        with pytest.raises(ValueError):
            keys.encode(1, 1, keys.max_replicas)

    def test_replicas_preserve_website_and_locality_identification(self, keys: KeyScheme):
        """The paper requires the extra bits at the end to preserve both IDs."""
        ids = keys.replica_ids_for("http://x.org", 5)
        assert len(ids) == keys.max_replicas
        for identifier in ids:
            assert keys.website_id_of(identifier) == keys.website_id("http://x.org")
            assert keys.locality_of(identifier) == 5
        # Replica identifiers of one pair are consecutive on the ring.
        assert [b - a for a, b in zip(ids, ids[1:])] == [1] * (len(ids) - 1)

    def test_replica_zero_matches_basic_scheme_layout(self):
        basic = KeyScheme(website_bits=10, locality_bits=3)
        extended = KeyScheme(website_bits=10, locality_bits=3, replica_bits=2)
        assert extended.encode(9, 2, 0) == basic.encode(9, 2) << 2
