"""Unit tests for directory peers: index, summaries and Algorithm 3."""

import pytest

from repro.core.config import FlowerConfig, GossipConfig
from repro.core.content_peer import PushMessage
from repro.core.directory_peer import DirectoryPeer


@pytest.fixture
def config() -> FlowerConfig:
    return FlowerConfig(
        num_websites=2,
        active_websites=1,
        objects_per_website=20,
        num_localities=2,
        max_content_overlay_size=4,
        locality_bits=2,
        website_bits=10,
        gossip=GossipConfig(
            gossip_period_s=60.0, view_size=6, gossip_length=3, push_threshold=0.25,
            keepalive_period_s=60.0, dead_age=2,
        ),
    )


@pytest.fixture
def directory(config: FlowerConfig) -> DirectoryPeer:
    return DirectoryPeer(
        peer_id="d0", host_id=0, website="site-000.example.org", locality=0,
        node_id=1, config=config,
    )


def obj(i: int) -> str:
    return f"http://site-000.example.org/object/{i}"


class TestDirectoryIndex:
    def test_register_client_with_object(self, directory: DirectoryPeer):
        assert directory.register_client("c1", obj(1))
        assert directory.index_size == 1
        assert directory.lookup_index(obj(1)) == ["c1"]

    def test_register_existing_client_adds_object_and_refreshes(self, directory):
        directory.register_client("c1", obj(1))
        directory.increment_ages()
        assert directory.register_client("c1", obj(2))
        entry = directory.entry("c1")
        assert entry.age == 0
        assert entry.objects == {obj(1), obj(2)}
        assert directory.index_size == 1

    def test_overlay_capacity_is_enforced(self, directory, config):
        for i in range(config.max_content_overlay_size):
            assert directory.register_client(f"c{i}", obj(i))
        assert directory.is_full
        assert not directory.register_client("late", obj(9))

    def test_remove_client(self, directory):
        directory.register_client("c1", obj(1))
        assert directory.remove_client("c1")
        assert not directory.remove_client("c1")
        assert directory.lookup_index(obj(1)) == []

    def test_indexed_objects_union(self, directory):
        directory.register_client("c1", obj(1))
        directory.register_client("c2", obj(2))
        assert directory.indexed_objects() == {obj(1), obj(2)}


class TestPushAndAgeing:
    def test_push_updates_entry(self, directory):
        directory.register_client("c1", obj(1))
        directory.handle_push(PushMessage(sender="c1", added=(obj(2), obj(3)), removed=(obj(1),)))
        entry = directory.entry("c1")
        assert entry.objects == {obj(2), obj(3)}
        assert directory.pushes_received == 1

    def test_push_from_unknown_peer_creates_entry(self, directory):
        directory.handle_push(PushMessage(sender="newcomer", added=(obj(5),), removed=()))
        assert directory.lookup_index(obj(5)) == ["newcomer"]

    def test_push_from_unknown_peer_ignored_when_full(self, directory, config):
        for i in range(config.max_content_overlay_size):
            directory.register_client(f"c{i}", obj(i))
        directory.handle_push(PushMessage(sender="late", added=(obj(9),), removed=()))
        assert "late" not in directory.members()

    def test_keepalive_resets_age(self, directory):
        directory.register_client("c1", obj(1))
        directory.increment_ages()
        directory.increment_ages()
        directory.handle_keepalive("c1")
        assert directory.entry("c1").age == 0

    def test_keepalive_from_unknown_peer_is_ignored(self, directory):
        directory.handle_keepalive("ghost")
        assert directory.index_size == 0

    def test_dead_entries_evicted_after_tdead(self, directory, config):
        """Section 5.1: entries older than Tdead are removed from the index."""
        directory.register_client("quiet", obj(1))
        directory.register_client("chatty", obj(2))
        for _ in range(config.gossip.dead_age + 1):
            directory.increment_ages()
            directory.handle_keepalive("chatty")
        dead = directory.evict_dead_entries()
        assert dead == ["quiet"]
        assert directory.members() == ("chatty",)


class TestSummaries:
    def test_build_summary_covers_indexed_objects(self, directory):
        directory.register_client("c1", obj(1))
        directory.register_client("c2", obj(2))
        summary = directory.build_summary()
        assert summary.might_contain(obj(1)) and summary.might_contain(obj(2))

    def test_refresh_triggered_by_new_object_fraction(self, directory):
        directory.register_client("c1", obj(1))
        assert directory.should_refresh_summary()
        directory.publish_summary()
        assert not directory.should_refresh_summary()
        # A small addition relative to the published set must not trigger a refresh
        # until the threshold fraction of new objects is reached.
        for i in range(2, 8):
            directory.register_client(f"c{i % 4}", obj(i))
        assert directory.should_refresh_summary()

    def test_publish_summary_counts(self, directory):
        directory.register_client("c1", obj(1))
        directory.publish_summary()
        assert directory.summaries_sent == 1

    def test_store_and_drop_neighbor_summaries(self, directory):
        summary = directory.build_summary()
        directory.store_neighbor_summary("d-neighbor", summary)
        assert "d-neighbor" in directory.neighbor_summaries()
        directory.drop_neighbor("d-neighbor")
        assert directory.neighbor_summaries() == {}


class TestQueryProcessing:
    def test_redirects_to_content_peer_holding_object(self, directory):
        directory.register_client("c1", obj(1))
        decision = directory.process_query(obj(1))
        assert decision.kind == "content_peer"
        assert decision.target == "c1"
        assert directory.queries_processed == 1

    def test_prefers_recently_heard_holders(self, directory):
        directory.register_client("stale", obj(1))
        directory.increment_ages()
        directory.register_client("fresh", obj(1))
        assert directory.process_query(obj(1)).target == "fresh"

    def test_excluded_holders_are_skipped(self, directory):
        directory.register_client("c1", obj(1))
        directory.register_client("c2", obj(1))
        decision = directory.process_query(obj(1), exclude=("c1",))
        assert decision.target == "c2"

    def test_falls_back_to_neighbor_directory_summary(self, directory, config):
        neighbor_summary = directory.build_summary()
        neighbor_summary.add(obj(9))
        directory.store_neighbor_summary("d-neighbor", neighbor_summary)
        decision = directory.process_query(obj(9))
        assert decision.kind == "directory_peer"
        assert decision.target == "d-neighbor"

    def test_falls_back_to_server_when_nothing_matches(self, directory):
        decision = directory.process_query(obj(17))
        assert decision.kind == "server"
        assert decision.target is None

    def test_algorithm3_order_index_before_summaries(self, directory):
        """Algorithm 3 checks the local index before the neighbour summaries."""
        directory.register_client("local-holder", obj(3))
        neighbor_summary = directory.build_summary()
        directory.store_neighbor_summary("d-neighbor", neighbor_summary)
        decision = directory.process_query(obj(3))
        assert decision.kind == "content_peer"


class TestStateTransfer:
    def test_export_import_round_trip(self, directory, config):
        directory.register_client("c1", obj(1))
        directory.register_client("c2", obj(2))
        state = directory.export_state()
        successor = DirectoryPeer(
            peer_id="d0-new", host_id=5, website=directory.website, locality=0,
            node_id=directory.node_id, config=config,
        )
        successor.import_state(state)
        assert successor.index_size == 2
        assert successor.lookup_index(obj(1)) == ["c1"]

    def test_fail_marks_peer_dead(self, directory):
        directory.fail()
        assert not directory.alive
