"""Tests for the experiment driver and the per-figure experiment modules.

These use a very small laptop-scale setup so each simulated run completes in
well under a second while still exercising the full pipeline (topology →
workload → client assignment → both CDN systems → metrics).
"""

import pytest

from repro.core.churn import ChurnConfig
from repro.experiments import (
    run_churn_experiment,
    run_gossip_length_sweep,
    run_gossip_period_sweep,
    run_hit_ratio_comparison,
    run_locality_experiment,
    run_push_threshold_sweep,
    run_tradeoff_timeseries,
    run_view_size_sweep,
)
from repro.experiments.driver import ExperimentRunner, ExperimentSetup
from repro.experiments.gossip_tradeoff import format_sweep


def tiny_setup(seed: int = 7, duration_s: float = 1200.0) -> ExperimentSetup:
    return ExperimentSetup.laptop_scale(
        seed=seed,
        duration_s=duration_s,
        query_rate_per_s=1.0,
        num_websites=6,
        active_websites=2,
        objects_per_website=40,
        num_localities=3,
        max_content_overlay_size=15,
        num_hosts=300,
    )


@pytest.fixture(scope="module")
def shared_runner() -> ExperimentRunner:
    return ExperimentRunner(tiny_setup())


class TestExperimentSetup:
    def test_paper_scale_matches_table1(self):
        setup = ExperimentSetup.paper_scale()
        assert setup.flower.num_websites == 100
        assert setup.flower.num_localities == 6
        assert setup.workload.query_rate_per_s == 6.0
        assert setup.topology.num_hosts == 5000

    def test_laptop_scale_preserves_ratios(self):
        setup = tiny_setup()
        assert setup.flower.num_websites == setup.workload.num_websites
        assert setup.flower.num_localities == setup.topology.num_localities
        assert setup.flower.active_websites == setup.workload.active_websites

    def test_with_gossip_returns_new_setup(self):
        setup = tiny_setup()
        tuned = setup.with_gossip(gossip_length=20)
        assert tuned.flower.gossip.gossip_length == 20
        assert setup.flower.gossip.gossip_length == 10


class TestExperimentRunner:
    def test_resolved_queries_are_cached_and_sorted(self, shared_runner):
        queries = shared_runner.resolved_queries()
        assert queries is shared_runner.resolved_queries()
        times = [q.time for q in queries]
        assert times == sorted(times)
        assert len(queries) > 500

    def test_flower_and_squirrel_process_the_same_trace(self, shared_runner):
        flower = shared_runner.run_flower()
        squirrel = shared_runner.run_squirrel()
        assert flower.num_queries == squirrel.num_queries == len(shared_runner.resolved_queries())

    def test_flower_run_produces_consistent_aggregates(self, shared_runner):
        result = shared_runner.run_flower()
        assert 0.0 < result.hit_ratio < 1.0
        assert result.average_lookup_latency_ms > 0
        assert result.background_bps_per_peer > 0
        assert result.metrics.num_queries == result.num_queries
        assert len(result.summary_row()) == 6

    def test_runs_are_deterministic_for_a_seed(self):
        first = ExperimentRunner(tiny_setup(seed=3, duration_s=600.0)).run_flower()
        second = ExperimentRunner(tiny_setup(seed=3, duration_s=600.0)).run_flower()
        assert first.hit_ratio == second.hit_ratio
        assert first.average_lookup_latency_ms == second.average_lookup_latency_ms

    def test_different_seeds_differ(self):
        first = ExperimentRunner(tiny_setup(seed=3, duration_s=600.0)).run_flower()
        second = ExperimentRunner(tiny_setup(seed=4, duration_s=600.0)).run_flower()
        assert (
            first.hit_ratio != second.hit_ratio
            or first.average_lookup_latency_ms != second.average_lookup_latency_ms
        )


class TestGossipSweeps:
    def test_gossip_period_sweep_shapes(self):
        """Table 2(b): shorter periods cost more bandwidth and help the hit ratio."""
        rows = run_gossip_period_sweep(tiny_setup(), values=(120.0, 1800.0))
        fast, slow = rows
        assert fast.background_bps > slow.background_bps
        assert fast.hit_ratio >= slow.hit_ratio

    def test_gossip_length_sweep_shapes(self):
        """Table 2(a): longer gossip messages cost proportionally more bandwidth."""
        rows = run_gossip_length_sweep(tiny_setup(), values=(5, 20))
        short, long = rows
        assert long.background_bps > short.background_bps
        assert long.hit_ratio >= short.hit_ratio - 0.05

    def test_view_size_sweep_bandwidth_invariant(self):
        """Table 2(c): the view size does not change bandwidth consumption."""
        rows = run_view_size_sweep(tiny_setup(), values=(10, 50))
        small, large = rows
        assert small.background_bps == pytest.approx(large.background_bps, rel=0.15)

    def test_push_threshold_sweep_is_insensitive(self):
        rows = run_push_threshold_sweep(tiny_setup(), values=(0.1, 0.7))
        low, high = rows
        assert abs(low.hit_ratio - high.hit_ratio) < 0.1

    def test_format_sweep_renders_rows(self):
        rows = run_gossip_length_sweep(tiny_setup(duration_s=600.0), values=(5,))
        text = format_sweep(rows, "Table 2(a)")
        assert "Table 2(a)" in text and "Hit ratio" in text


class TestFigureExperiments:
    def test_tradeoff_timeseries_curves(self):
        result = run_tradeoff_timeseries(tiny_setup())
        assert result.hit_ratio_is_non_decreasing()
        assert result.final_hit_ratio > 0.2
        assert result.final_background_bps > 0
        assert "Figure 5" in result.format()

    def test_hit_ratio_comparison_shape(self):
        """Figure 6: Squirrel converges faster; Flower-CDN trails at the end."""
        result = run_hit_ratio_comparison(tiny_setup())
        assert result.squirrel_final >= result.flower_final
        assert result.final_gap >= 0
        assert result.flower_curve and result.squirrel_curve
        assert "Figure 6" in result.format()

    def test_locality_experiment_shapes(self):
        """Figures 7 and 8: Flower-CDN is faster to look up and closer to transfer."""
        result = run_locality_experiment(tiny_setup())
        assert result.lookup_latency_speedup > 1.5
        assert result.transfer_distance_reduction > 1.5
        assert result.flower_fraction_fast_lookups(300.0) > 0.3
        assert (
            result.flower_fraction_close_transfers(100.0)
            > result.squirrel_fraction_close_transfers(100.0)
        )
        assert "Figure 7" in result.format_figure7()
        assert "Figure 8" in result.format_figure8()

    def test_churn_experiment_reports_recovery(self):
        result = run_churn_experiment(
            tiny_setup(),
            churn=ChurnConfig(
                content_failures_per_hour=60.0,
                directory_failures_per_hour=6.0,
                locality_changes_per_hour=12.0,
            ),
        )
        assert result.baseline.num_queries == result.churned.num_queries
        assert result.events_injected > 0
        assert result.churned.hit_ratio > 0.1
        assert "Churn ablation" in result.format()
