"""Integration-level unit tests for the FlowerCDN system orchestration."""

import pytest

from repro.core.config import FlowerConfig, GossipConfig
from repro.core.system import FlowerCDN
from repro.metrics.collectors import QueryOutcome
from repro.network.topology import Topology, TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.assignment import ResolvedQuery


@pytest.fixture
def config() -> FlowerConfig:
    return FlowerConfig(
        num_websites=3,
        active_websites=2,
        objects_per_website=25,
        num_localities=3,
        max_content_overlay_size=8,
        locality_bits=2,
        website_bits=12,
        gossip=GossipConfig(
            gossip_period_s=60.0, view_size=6, gossip_length=3, push_threshold=0.2,
            keepalive_period_s=60.0, dead_age=3,
        ),
        simulation_duration_s=3600.0,
        metrics_window_s=300.0,
    )


@pytest.fixture
def topology(config: FlowerConfig) -> Topology:
    topo_config = TopologyConfig(
        num_hosts=300,
        num_localities=config.num_localities,
        locality_weights=(1.0, 1.0, 1.0),
    )
    return Topology(topo_config, RandomStreams(31))


@pytest.fixture
def system(config: FlowerConfig, topology: Topology) -> FlowerCDN:
    sim = Simulator(seed=5, end_time=config.simulation_duration_s)
    cdn = FlowerCDN(config, sim, topology)
    cdn.bootstrap()
    return cdn


def website_name(system: FlowerCDN, index: int = 0) -> str:
    return system.catalog.websites[index].name


def object_of(system: FlowerCDN, site_index: int = 0, object_index: int = 0) -> str:
    return system.catalog.websites[site_index].object_id(object_index)


def free_host(system: FlowerCDN, locality: int, offset: int = 0) -> int:
    hosts = [
        h for h in system.topology.hosts_in_locality(locality)
        if h not in system.reserved_hosts
    ]
    return hosts[offset]


def make_query(system: FlowerCDN, query_id: int, locality: int, host: int,
               site_index: int = 0, object_index: int = 0, time: float = 0.0) -> ResolvedQuery:
    return ResolvedQuery(
        query_id=query_id,
        time=time,
        website=website_name(system, site_index),
        object_id=object_of(system, site_index, object_index),
        locality=locality,
        client_host=host,
        is_new_client=True,
    )


class TestBootstrap:
    def test_one_directory_per_website_locality_pair(self, system: FlowerCDN, config):
        assert system.num_directory_peers == config.num_websites * config.num_localities
        for website in system.catalog:
            for locality in range(config.num_localities):
                directory = system.directory_for(website.name, locality)
                assert directory is not None
                assert directory.locality == locality
                assert directory.index_size == 0  # empty directories at start

    def test_directory_hosts_live_in_their_locality(self, system: FlowerCDN):
        for website in system.catalog:
            for locality in range(system.config.num_localities):
                directory = system.directory_for(website.name, locality)
                assert system.topology.locality_of(directory.host_id) == locality

    def test_bootstrap_can_only_run_once(self, system: FlowerCDN):
        with pytest.raises(RuntimeError):
            system.bootstrap()

    def test_reserved_hosts_match_directory_hosts(self, system: FlowerCDN):
        directory_hosts = {
            system.directory_for(w.name, loc).host_id
            for w in system.catalog
            for loc in range(system.config.num_localities)
        }
        assert system.reserved_hosts == directory_hosts

    def test_queries_require_bootstrap(self, config, topology):
        sim = Simulator(seed=1)
        cdn = FlowerCDN(config, sim, topology)
        with pytest.raises(RuntimeError):
            cdn.handle_query(
                ResolvedQuery(0, 0.0, "site-000.example.org",
                              "http://site-000.example.org/object/0", 0, 0, True)
            )


class TestNewClientQueries:
    def test_first_query_for_an_object_misses_to_server(self, system: FlowerCDN):
        host = free_host(system, locality=0)
        record = system.handle_query(make_query(system, 0, 0, host))
        assert record.outcome is QueryOutcome.SERVER_MISS
        assert record.lookup_latency_ms > 0
        assert record.transfer_distance_ms == system.latency.server_latency_ms

    def test_new_client_becomes_content_peer_and_is_indexed(self, system: FlowerCDN):
        host = free_host(system, locality=0)
        system.handle_query(make_query(system, 0, 0, host))
        website = website_name(system)
        assert len(system.overlay_members(website, 0)) == 1
        directory = system.directory_for(website, 0)
        assert directory.index_size == 1
        assert directory.lookup_index(object_of(system)) != []

    def test_second_client_is_served_from_the_first(self, system: FlowerCDN):
        first_host = free_host(system, 0, 0)
        second_host = free_host(system, 0, 1)
        system.handle_query(make_query(system, 0, 0, first_host))
        record = system.handle_query(make_query(system, 1, 0, second_host))
        assert record.outcome is QueryOutcome.LOCAL_OVERLAY_HIT
        assert record.provider == f"c({website_name(system)})@{first_host}"
        assert record.transfer_distance_ms < system.latency.server_latency_ms

    def test_query_from_other_locality_can_hit_via_directory_summaries(self, system: FlowerCDN):
        # Locality 0 stores the object, then its directory publishes a summary
        # to its D-ring neighbours; a client in locality 1 must then reach it.
        website = website_name(system)
        system.handle_query(make_query(system, 0, 0, free_host(system, 0, 0)))
        directory0 = system.directory_for(website, 0)
        summary = directory0.publish_summary()
        system.directory_for(website, 1).store_neighbor_summary(directory0.peer_id, summary)
        record = system.handle_query(make_query(system, 1, 1, free_host(system, 1, 0)))
        assert record.outcome is QueryOutcome.REMOTE_OVERLAY_HIT

    def test_overlay_size_cap_is_respected(self, system: FlowerCDN, config):
        website = website_name(system)
        for i in range(config.max_content_overlay_size + 3):
            host = free_host(system, 0, i)
            system.handle_query(make_query(system, i, 0, host, object_index=i % 5))
        assert len(system.overlay_members(website, 0)) <= config.max_content_overlay_size

    def test_metrics_are_recorded(self, system: FlowerCDN):
        system.handle_query(make_query(system, 0, 0, free_host(system, 0, 0)))
        assert system.metrics.num_queries == 1


class TestContentPeerQueries:
    def test_repeat_query_is_a_zero_latency_local_hit(self, system: FlowerCDN):
        host = free_host(system, 0, 0)
        system.handle_query(make_query(system, 0, 0, host))
        record = system.handle_query(make_query(system, 1, 0, host))
        assert record.outcome is QueryOutcome.LOCAL_OVERLAY_HIT
        assert record.lookup_latency_ms == 0.0
        assert record.transfer_distance_ms == 0.0

    def test_view_summary_resolution_after_gossip(self, system: FlowerCDN):
        website = website_name(system)
        host_a = free_host(system, 0, 0)
        host_b = free_host(system, 0, 1)
        # A caches object 0; B joins by querying object 1 (served by the server).
        system.handle_query(make_query(system, 0, 0, host_a, object_index=0))
        system.handle_query(make_query(system, 1, 0, host_b, object_index=1))
        peer_a = system.content_peer(f"c({website})@{host_a}")
        peer_b = system.content_peer(f"c({website})@{host_b}")
        # One gossip exchange so B learns A's content summary.
        reply = peer_a.handle_gossip(peer_b.build_gossip_message())
        peer_b.apply_gossip(reply)
        record = system.handle_query(make_query(system, 2, 0, host_b, object_index=0))
        assert record.outcome is QueryOutcome.LOCAL_OVERLAY_HIT
        assert record.provider == peer_a.peer_id

    def test_unresolvable_query_falls_back_to_server_and_caches(self, system: FlowerCDN):
        website = website_name(system)
        host = free_host(system, 0, 0)
        system.handle_query(make_query(system, 0, 0, host, object_index=0))
        record = system.handle_query(make_query(system, 1, 0, host, object_index=9))
        assert record.outcome is QueryOutcome.SERVER_MISS
        peer = system.content_peer(f"c({website})@{host}")
        assert peer.has_object(object_of(system, 0, 9))

    def test_directory_fallback_configuration(self, config, topology):
        fallback_config = FlowerConfig(
            **{**config.__dict__, "content_miss_fallback": "directory"}
        )
        sim = Simulator(seed=6, end_time=3600.0)
        cdn = FlowerCDN(fallback_config, sim, topology)
        cdn.bootstrap()
        host_a = free_host(cdn, 0, 0)
        host_b = free_host(cdn, 0, 1)
        cdn.handle_query(make_query(cdn, 0, 0, host_a, object_index=0))
        cdn.handle_query(make_query(cdn, 1, 0, host_b, object_index=1))
        # B's view has no summary for object 0, but the directory knows A holds it.
        record = cdn.handle_query(make_query(cdn, 2, 0, host_b, object_index=0))
        assert record.outcome is QueryOutcome.LOCAL_OVERLAY_HIT


class TestPastrySubstrate:
    def test_system_runs_on_pastry_dring(self, config, topology):
        """Section 3.1: D-ring integrates into any standard DHT, Pastry included."""
        pastry_config = FlowerConfig(**{**config.__dict__, "dht_substrate": "pastry"})
        sim = Simulator(seed=9, end_time=3600.0)
        cdn = FlowerCDN(pastry_config, sim, topology)
        cdn.bootstrap()
        host_a = free_host(cdn, 0, 0)
        host_b = free_host(cdn, 0, 1)
        first = cdn.handle_query(make_query(cdn, 0, 0, host_a))
        second = cdn.handle_query(make_query(cdn, 1, 0, host_b))
        assert first.outcome is QueryOutcome.SERVER_MISS
        assert second.outcome is QueryOutcome.LOCAL_OVERLAY_HIT
        assert cdn.num_directory_peers == pastry_config.num_websites * pastry_config.num_localities

    def test_invalid_substrate_rejected(self, config):
        with pytest.raises(ValueError):
            FlowerConfig(**{**config.__dict__, "dht_substrate": "kademlia"})


class TestMaintenance:
    def test_gossip_ticks_generate_background_traffic(self, system: FlowerCDN):
        for i in range(4):
            system.handle_query(make_query(system, i, 0, free_host(system, 0, i),
                                           object_index=i))
        system.sim.run(until=600.0)
        categories = system.bandwidth.messages_by_category()
        assert categories.get("gossip", 0) > 0
        assert categories.get("keepalive", 0) > 0
        assert system.bandwidth.average_bps_per_peer(600.0) > 0

    def test_push_updates_directory_index(self, system: FlowerCDN):
        website = website_name(system)
        host = free_host(system, 0, 0)
        system.handle_query(make_query(system, 0, 0, host, object_index=0))
        system.handle_query(make_query(system, 1, 0, host, object_index=3))
        directory = system.directory_for(website, 0)
        assert object_of(system, 0, 3) in directory.indexed_objects()

    def test_summary_refresh_reaches_neighbor_directories(self, system: FlowerCDN):
        website = website_name(system)
        for i in range(3):
            system.handle_query(make_query(system, i, 0, free_host(system, 0, i),
                                           object_index=i))
        system.sim.run(until=300.0)
        neighbors = system.dring.neighbors_of(website, 0)
        received = [
            system.directory_peer(p.peer_id).neighbor_summaries() for p in neighbors
        ]
        assert any(received), "at least one neighbour directory must have received a summary"

    def test_overlay_stats_snapshot(self, system: FlowerCDN):
        website = website_name(system)
        system.handle_query(make_query(system, 0, 0, free_host(system, 0, 0)))
        stats = system.overlay_stats(website, 0)
        assert stats.num_content_peers == 1
        assert stats.directory_index_size == 1
        assert stats.unique_objects_indexed == 1
        assert system.active_overlays()


class TestChurnHandling:
    def test_failed_provider_causes_redirection_failure_then_recovery(self, system: FlowerCDN):
        website = website_name(system)
        host_a = free_host(system, 0, 0)
        host_b = free_host(system, 0, 1)
        system.handle_query(make_query(system, 0, 0, host_a))
        assert system.fail_content_peer(f"c({website})@{host_a}")
        record = system.handle_query(make_query(system, 1, 0, host_b))
        assert record.outcome is QueryOutcome.SERVER_MISS
        assert record.redirection_failures >= 1
        # The stale index entry of the failed provider must be gone; only the
        # optimistic entry of the new client may remain (Section 3.4).
        holders = system.directory_for(website, 0).lookup_index(object_of(system))
        assert f"c({website})@{host_a}" not in holders

    def test_fail_content_peer_twice_returns_false(self, system: FlowerCDN):
        website = website_name(system)
        host = free_host(system, 0, 0)
        system.handle_query(make_query(system, 0, 0, host))
        peer_id = f"c({website})@{host}"
        assert system.fail_content_peer(peer_id)
        assert not system.fail_content_peer(peer_id)

    def test_directory_failure_is_repaired_by_a_content_peer(self, system: FlowerCDN):
        website = website_name(system)
        host = free_host(system, 0, 0)
        system.handle_query(make_query(system, 0, 0, host))
        old_directory = system.directory_for(website, 0)
        assert system.fail_directory(website, 0)
        # The surviving content peer detects the failure on its next push/keepalive.
        system.sim.run(until=200.0)
        new_directory = system.directory_for(website, 0)
        assert new_directory is not None
        assert new_directory.alive
        assert new_directory.peer_id != old_directory.peer_id
        assert system.directory_replacements >= 1
        # The D-ring identifier is preserved (Section 5.2).
        assert new_directory.node_id == old_directory.node_id

    def test_voluntary_directory_leave_hands_over_state(self, system: FlowerCDN):
        website = website_name(system)
        host = free_host(system, 0, 0)
        system.handle_query(make_query(system, 0, 0, host))
        old_directory = system.directory_for(website, 0)
        new_id = system.leave_directory(website, 0)
        assert new_id is not None
        new_directory = system.directory_for(website, 0)
        assert new_directory.peer_id == new_id
        assert new_directory.index_size >= old_directory.index_size

    def test_leave_directory_without_members_returns_none(self, system: FlowerCDN):
        website = website_name(system)
        assert system.leave_directory(website, 2) is None

    def test_locality_change_moves_peer_to_new_overlay(self, system: FlowerCDN):
        website = website_name(system)
        host = free_host(system, 0, 0)
        system.handle_query(make_query(system, 0, 0, host))
        old_peer_id = f"c({website})@{host}"
        new_peer_id = system.change_locality(old_peer_id, new_locality=1)
        assert new_peer_id is not None
        assert old_peer_id not in system.overlay_members(website, 0)
        assert new_peer_id in system.overlay_members(website, 1)
        new_peer = system.content_peer(new_peer_id)
        assert new_peer.has_object(object_of(system))

    def test_fail_directory_unknown_pair_returns_false(self, system: FlowerCDN):
        assert not system.fail_directory("http://unknown.org", 0)
