"""API-surface snapshot: fails when the public API changes unintentionally.

The committed snapshot (``tests/api_surface.json``) records the public
symbols of :mod:`repro.session` and :mod:`repro.scenarios`, the field names
of :class:`ScenarioSpec` / :class:`WorkloadPhase`, the public methods of
:class:`Session`, and the built-in model registries.  Removing or renaming
any of these is a breaking change for downstream users and must be done
deliberately — by updating the snapshot in the same commit::

    python tests/test_api_surface.py --update

Adding new symbols also updates the snapshot (additions are still recorded
so the diff is reviewable, but they are expected to be backwards
compatible).
"""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path

SNAPSHOT_PATH = Path(__file__).parent / "api_surface.json"


def current_surface() -> dict:
    import repro.analysis
    import repro.scenarios
    import repro.service
    import repro.session
    import repro.sweeps
    from repro.analysis import rule_ids
    from repro.scenarios.models import churn_model_names, fault_model_names
    from repro.scenarios.program import WorkloadPhase
    from repro.scenarios.spec import ScenarioSpec
    from repro.session import Session
    from repro.sweeps.library import sweep_names
    from repro.sweeps.spec import SweepAxis, SweepSpec

    def public_methods(cls) -> list:
        return sorted(name for name in vars(cls) if not name.startswith("_"))

    return {
        "repro.session": sorted(repro.session.__all__),
        "repro.scenarios": sorted(repro.scenarios.__all__),
        "repro.sweeps": sorted(repro.sweeps.__all__),
        "Session": public_methods(Session),
        "ScenarioSpec.fields": sorted(
            field.name for field in dataclasses.fields(ScenarioSpec)
        ),
        "WorkloadPhase.fields": sorted(
            field.name for field in dataclasses.fields(WorkloadPhase)
        ),
        "SweepSpec.fields": sorted(
            field.name for field in dataclasses.fields(SweepSpec)
        ),
        "SweepAxis.fields": sorted(
            field.name for field in dataclasses.fields(SweepAxis)
        ),
        "churn_models": churn_model_names(),
        "fault_models": fault_model_names(),
        "sweeps": sweep_names(),
        "repro.analysis": sorted(repro.analysis.__all__),
        "analysis_rules": sorted(rule_ids()),
        "repro.service": sorted(repro.service.__all__),
    }


def test_api_surface_matches_the_committed_snapshot():
    assert SNAPSHOT_PATH.exists(), (
        f"no committed API snapshot at {SNAPSHOT_PATH}; create it with "
        f"`python tests/test_api_surface.py --update`"
    )
    committed = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
    fresh = current_surface()
    problems = []
    for section in sorted(set(committed) | set(fresh)):
        before = set(committed.get(section, ()))
        after = set(fresh.get(section, ()))
        removed = before - after
        added = after - before
        if removed:
            problems.append(f"{section}: removed {sorted(removed)} (BREAKING)")
        if added:
            problems.append(f"{section}: added {sorted(added)} (update the snapshot)")
    assert not problems, (
        "public API surface changed:\n  "
        + "\n  ".join(problems)
        + "\nIf intentional, refresh with `python tests/test_api_surface.py --update`."
    )


if __name__ == "__main__":
    src = Path(__file__).resolve().parents[1] / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    if "--update" in sys.argv:
        SNAPSHOT_PATH.write_text(
            json.dumps(current_surface(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"updated {SNAPSHOT_PATH}")
    else:
        print(json.dumps(current_surface(), indent=2, sort_keys=True))
