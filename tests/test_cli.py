"""Tests for the command-line interface."""

import io

import pytest

from repro import cli


def run_cli(args) -> str:
    """Run the CLI with a tiny scale and capture its output."""
    buffer = io.StringIO()
    exit_code = cli.main(args, out=buffer)
    assert exit_code == 0
    return buffer.getvalue()


TINY = [
    "--duration-hours", "0.25",
    "--query-rate", "1.0",
    "--websites", "6",
    "--active-websites", "2",
    "--objects", "30",
    "--localities", "3",
    "--overlay-size", "10",
    "--hosts", "200",
    "--seed", "5",
]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["frobnicate"])

    def test_help_lists_the_analyze_verb(self):
        assert "analyze" in cli.build_parser().format_help()

    def test_analyze_defaults(self):
        args = cli.build_parser().parse_args(["analyze"])
        assert args.command == "analyze"
        assert args.format == "text"
        assert not args.changed
        assert not args.list_rules

    def test_scale_options_have_defaults(self):
        args = cli.build_parser().parse_args(["run"])
        assert args.duration_hours == 3.0
        assert args.localities == 3
        assert not args.paper_scale

    def test_setup_from_args_laptop_scale(self):
        args = cli.build_parser().parse_args(["run", *TINY])
        setup = cli.setup_from_args(args)
        assert setup.flower.num_websites == 6
        assert setup.flower.simulation_duration_s == pytest.approx(0.25 * 3600)
        assert setup.workload.query_rate_per_s == 1.0
        assert setup.seed == 5

    def test_setup_from_args_paper_scale(self):
        args = cli.build_parser().parse_args(["run", "--paper-scale", "--seed", "9"])
        setup = cli.setup_from_args(args)
        assert setup.flower.num_websites == 100
        assert setup.seed == 9


class TestCommands:
    def test_run_prints_headline_metrics(self):
        output = run_cli(["run", *TINY])
        assert "hit ratio" in output
        assert "avg lookup latency (ms)" in output
        assert "background traffic (bps/peer)" in output

    def test_compare_prints_figures(self):
        output = run_cli(["compare", *TINY])
        assert "Figure 6" in output
        assert "Figure 7" in output
        assert "Figure 8" in output
        assert "Squirrel" in output

    def test_sweep_prints_all_three_tables(self):
        output = run_cli(["sweep", *TINY])
        assert "Table 2(a)" in output
        assert "Table 2(b)" in output
        assert "Table 2(c)" in output

    def test_churn_prints_ablation(self):
        output = run_cli(["churn", *TINY])
        assert "Churn ablation" in output
        assert "with churn" in output


class TestScenariosShow:
    def test_show_prints_spec_program_and_models(self):
        output = run_cli(["scenarios", "show", "adversarial-hotspots"])
        assert "Scenario: adversarial-hotspots" in output
        assert "Workload program" in output
        assert "rotation" in output
        assert "Churn model: poisson" in output
        assert "Fault model: none" in output

    def test_show_without_a_program_says_so(self):
        output = run_cli(["scenarios", "show", "paper-default"])
        assert "single stationary phase" in output

    def test_show_names_the_fault_model(self):
        output = run_cli(["scenarios", "show", "correlated-failures"])
        assert "correlated-locality" in output
        assert "at_fraction" in output

    def test_show_json_is_machine_readable(self):
        import json as _json

        payload = _json.loads(run_cli(["scenarios", "show", "diurnal-cycle", "--json"]))
        assert payload["name"] == "diurnal-cycle"
        assert len(payload["compiled_program"]) == 4
        assert payload["compiled_program"][-1]["end_s"] == payload["duration_s"]
        assert payload["effective"]["warmup_s"] == 0.5 * payload["duration_s"]

    def test_show_scale_rescales_the_resolved_spec(self):
        import json as _json

        payload = _json.loads(
            run_cli(["scenarios", "show", "adversarial-hotspots", "--json", "--scale", "0.25"])
        )
        assert payload["duration_s"] == 1800.0
        assert payload["compiled_program"][-1]["end_s"] == 1800.0

    def test_show_unknown_scenario_is_a_clean_error(self, capsys):
        code = cli.main(["scenarios", "show", "no-such-thing"], out=io.StringIO())
        assert code == 2
        assert "known scenarios" in capsys.readouterr().err


class TestSweepVerbs:
    """The `sweep list|show|run` verbs and the legacy deprecation shim."""

    def test_list_prints_the_registry(self):
        output = run_cli(["sweep", "list"])
        assert "Sweep registry" in output
        assert "table2a-gossip-length" in output
        assert "fig6-hit-ratio-comparison" in output

    def test_show_prints_axes_and_compiled_grid(self):
        output = run_cli(["sweep", "show", "table2b-gossip-period"])
        assert "Sweep: table2b-gossip-period" in output
        assert "Tgossip(s)" in output
        assert "Compiled grid" in output
        assert "Tgossip(s)=60" in output

    def test_show_unknown_sweep_is_a_clean_error(self, capsys):
        code = cli.main(["sweep", "show", "no-such-sweep"], out=io.StringIO())
        assert code == 2
        assert "known sweeps" in capsys.readouterr().err

    def test_run_emits_the_json_digest(self):
        import json as _json

        payload = _json.loads(
            run_cli(["sweep", "run", "table2a-gossip-length", "--scale", "0.1"])
        )
        assert payload["sweep"] == "table2a-gossip-length"
        assert len(payload["cells"]) == 3
        assert payload["cells"][0]["assignments"] == {"gossip_length": 5}

    def test_run_table_output(self):
        output = run_cli(
            ["sweep", "run", "table2a-gossip-length", "--scale", "0.1", "--table"]
        )
        assert "Sweep: table2a-gossip-length" in output
        assert "Lgossip" in output

    def test_run_jobs_matches_sequential(self):
        sequential = run_cli(
            ["sweep", "run", "table2a-gossip-length", "--scale", "0.1"]
        )
        parallel = run_cli(
            ["sweep", "run", "table2a-gossip-length", "--scale", "0.1", "--jobs", "2"]
        )
        assert sequential == parallel

    def test_run_exports_artifacts(self, tmp_path):
        output = run_cli(
            ["sweep", "run", "ablation-push-threshold", "--scale", "0.1",
             "--out", str(tmp_path)]
        )
        assert "wrote" in output
        for suffix in ("csv", "json", "md"):
            assert (tmp_path / f"ablation-push-threshold.{suffix}").exists()

    def test_run_unknown_sweep_is_a_clean_error(self, capsys):
        code = cli.main(["sweep", "run", "no-such-sweep"], out=io.StringIO())
        assert code == 2
        assert "known sweeps" in capsys.readouterr().err

    def test_run_rejects_bad_jobs_and_scale(self, capsys):
        assert cli.main(
            ["sweep", "run", "table2a-gossip-length", "--jobs", "0"],
            out=io.StringIO(),
        ) == 2
        assert cli.main(
            ["sweep", "run", "table2a-gossip-length", "--scale", "-1"],
            out=io.StringIO(),
        ) == 2
        capsys.readouterr()

    def test_run_golden_flags_are_pinned(self, capsys):
        code = cli.main(
            ["sweep", "run", "table2a-gossip-length", "--check-golden",
             "--scale", "0.1"],
            out=io.StringIO(),
        )
        assert code == 2
        assert "pinned" in capsys.readouterr().err
        code = cli.main(
            ["sweep", "run", "table2a-gossip-length", "--check-golden",
             "--update-goldens"],
            out=io.StringIO(),
        )
        assert code == 2
        capsys.readouterr()

    def test_run_check_golden_passes_on_committed_goldens(self):
        output = run_cli(
            ["sweep", "run", "table2a-gossip-length", "--check-golden", "--jobs", "2"]
        )
        assert "ok   table2a-gossip-length" in output

    def test_legacy_flag_style_sweep_still_works(self, capsys):
        output = run_cli(["sweep", *TINY])
        assert "Table 2(a)" in output
        assert "Table 2(b)" in output
        assert "Table 2(c)" in output
        assert "deprecated" in capsys.readouterr().err

    def test_legacy_flags_before_a_verb_are_rejected_not_dropped(self, capsys):
        code = cli.main(
            ["sweep", "--seed", "7", "run", "table2a-gossip-length"],
            out=io.StringIO(),
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--seed" in err and "cannot be combined" in err
        code = cli.main(
            ["sweep", "--paper-scale", "list"], out=io.StringIO()
        )
        assert code == 2
        capsys.readouterr()

    def test_run_rejects_out_with_golden_flags(self, capsys, tmp_path):
        code = cli.main(
            ["sweep", "run", "table2a-gossip-length", "--check-golden",
             "--out", str(tmp_path)],
            out=io.StringIO(),
        )
        assert code == 2
        assert "--out" in capsys.readouterr().err
