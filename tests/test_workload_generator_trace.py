"""Unit tests for the query generator, trace recording and client assignment."""

import pytest

from repro.network.topology import Topology, TopologyConfig
from repro.sim.rng import RandomStreams
from repro.workload.assignment import ClientAssigner
from repro.workload.catalog import Catalog
from repro.workload.generator import Query, QueryGenerator, WorkloadConfig
from repro.workload.trace import QueryTrace


@pytest.fixture
def workload_config() -> WorkloadConfig:
    return WorkloadConfig(
        num_websites=5,
        active_websites=2,
        objects_per_website=20,
        num_localities=3,
        query_rate_per_s=5.0,
    )


@pytest.fixture
def generator(workload_config: WorkloadConfig) -> QueryGenerator:
    return QueryGenerator(workload_config, RandomStreams(17))


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_websites=0)
        with pytest.raises(ValueError):
            WorkloadConfig(active_websites=0)
        with pytest.raises(ValueError):
            WorkloadConfig(num_websites=3, active_websites=5)
        with pytest.raises(ValueError):
            WorkloadConfig(query_rate_per_s=0)
        with pytest.raises(ValueError):
            WorkloadConfig(new_client_bias=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(arrival_process="bursty")
        with pytest.raises(ValueError):
            WorkloadConfig(num_localities=2, locality_weights=(1.0,))


class TestQueryGenerator:
    def test_queries_target_only_active_websites(self, generator: QueryGenerator):
        active = {site.name for site in generator.active_websites}
        for query in generator.generate_batch(300):
            assert query.website in active

    def test_objects_belong_to_their_website(self, generator: QueryGenerator):
        for query in generator.generate_batch(100):
            site = generator.catalog.website(query.website)
            assert site.owns(query.object_id)

    def test_localities_within_range(self, generator: QueryGenerator, workload_config):
        for query in generator.generate_batch(200):
            assert 0 <= query.locality < workload_config.num_localities

    def test_times_are_increasing(self, generator: QueryGenerator):
        queries = generator.generate_batch(100)
        times = [q.time for q in queries]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_generate_respects_duration(self, generator: QueryGenerator):
        queries = list(generator.generate(60.0))
        assert queries, "one minute at 5 q/s must produce queries"
        assert all(q.time < 60.0 for q in queries)

    def test_rate_is_approximately_respected(self, workload_config):
        generator = QueryGenerator(workload_config, RandomStreams(3))
        queries = list(generator.generate(600.0))
        expected = workload_config.query_rate_per_s * 600
        assert expected * 0.8 <= len(queries) <= expected * 1.2

    def test_uniform_arrivals_are_evenly_spaced(self):
        config = WorkloadConfig(
            num_websites=2, active_websites=1, objects_per_website=5,
            query_rate_per_s=2.0, arrival_process="uniform",
        )
        generator = QueryGenerator(config, RandomStreams(1))
        queries = generator.generate_batch(10)
        gaps = [b.time - a.time for a, b in zip(queries, queries[1:])]
        assert all(gap == pytest.approx(0.5) for gap in gaps)

    def test_same_seed_same_workload(self, workload_config):
        a = QueryGenerator(workload_config, RandomStreams(5)).generate_batch(50)
        b = QueryGenerator(workload_config, RandomStreams(5)).generate_batch(50)
        assert [(q.website, q.object_id, q.locality) for q in a] == [
            (q.website, q.object_id, q.locality) for q in b
        ]

    def test_zipf_skew_visible_in_object_popularity(self, generator: QueryGenerator):
        from collections import Counter

        counts = Counter(q.object_id for q in generator.generate_batch(2000))
        most_common = counts.most_common(1)[0][1]
        assert most_common > 2000 / 20  # far above uniform share

    def test_locality_weights_bias_origin(self):
        config = WorkloadConfig(
            num_websites=2, active_websites=1, objects_per_website=5,
            num_localities=2, locality_weights=(0.9, 0.1),
        )
        generator = QueryGenerator(config, RandomStreams(8))
        queries = generator.generate_batch(500)
        share_loc0 = sum(1 for q in queries if q.locality == 0) / len(queries)
        assert share_loc0 > 0.8

    def test_catalog_smaller_than_active_rejected(self, workload_config):
        tiny_catalog = Catalog.synthetic(1, 5)
        with pytest.raises(ValueError):
            QueryGenerator(workload_config, RandomStreams(1), catalog=tiny_catalog)

    def test_generate_rejects_non_positive_duration(self, generator: QueryGenerator):
        with pytest.raises(ValueError):
            list(generator.generate(0.0))

    def test_generate_batch_rejects_negative_count(self, generator: QueryGenerator):
        with pytest.raises(ValueError):
            generator.generate_batch(-1)


class TestQueryTrace:
    def test_record_and_replay_round_trip(self, generator: QueryGenerator):
        trace = QueryTrace.record_count(generator, 40)
        assert len(trace) == 40
        replayed = list(trace)
        assert all(isinstance(q, Query) for q in replayed)
        assert [q.query_id for q in replayed] == sorted(q.query_id for q in replayed)

    def test_trace_metadata(self, generator: QueryGenerator):
        trace = QueryTrace.record_count(generator, 60)
        assert trace.duration_s > 0
        assert set(trace.websites()) <= set(generator.catalog.names())
        assert all(0 <= loc < 3 for loc in trace.localities())

    def test_save_and_load(self, tmp_path, generator: QueryGenerator):
        trace = QueryTrace.record_count(generator, 25)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = QueryTrace.load(path)
        assert len(loaded) == len(trace)
        assert loaded.records() == trace.records()

    def test_empty_trace(self):
        trace = QueryTrace()
        assert len(trace) == 0
        assert trace.duration_s == 0.0

    def test_indexing(self, generator: QueryGenerator):
        trace = QueryTrace.record_count(generator, 5)
        assert trace[0].time <= trace[4].time


class TestClientAssigner:
    @pytest.fixture
    def topology(self) -> Topology:
        return Topology(TopologyConfig(num_hosts=90, num_localities=3), RandomStreams(2))

    def test_new_clients_come_from_the_query_locality(self, topology, generator):
        assigner = ClientAssigner(topology, RandomStreams(3), max_clients_per_overlay=10)
        for query in generator.generate_batch(50):
            resolved = assigner.assign(query)
            if resolved is None:
                continue
            assert topology.locality_of(resolved.client_host) == query.locality

    def test_overlay_size_is_capped(self, topology, generator):
        cap = 5
        assigner = ClientAssigner(topology, RandomStreams(3), max_clients_per_overlay=cap)
        for query in generator.generate_batch(500):
            assigner.assign(query)
        for website in {q.website for q in generator.generate_batch(10)}:
            for locality in range(3):
                assert assigner.num_clients(website, locality) <= cap

    def test_existing_clients_are_reused(self, topology, generator):
        assigner = ClientAssigner(topology, RandomStreams(3), max_clients_per_overlay=3)
        resolved = assigner.assign_all(generator.generate_batch(200))
        reused = [r for r in resolved if not r.is_new_client]
        assert reused, "with a tiny overlay cap most queries must reuse existing clients"
        new_hosts = {r.client_host for r in resolved if r.is_new_client}
        assert all(r.client_host in new_hosts for r in reused)

    def test_reserved_hosts_never_assigned(self, topology, generator):
        reserved = set(topology.hosts_in_locality(0)[:10])
        assigner = ClientAssigner(
            topology, RandomStreams(3), max_clients_per_overlay=10, reserved_hosts=reserved
        )
        resolved = assigner.assign_all(generator.generate_batch(300))
        assert all(r.client_host not in reserved for r in resolved)

    def test_invalid_cap_rejected(self, topology):
        with pytest.raises(ValueError):
            ClientAssigner(topology, RandomStreams(1), max_clients_per_overlay=0)
