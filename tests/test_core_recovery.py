"""Recovery-path tests: peer fail/recover round-trips, contact forgetting
and directory replacement under repeated failures (Section 5 machinery)."""

import pytest

from repro.core.config import FlowerConfig, GossipConfig
from repro.core.content_peer import ContentPeer
from repro.core.system import FlowerCDN
from repro.network.topology import Topology, TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.assignment import ResolvedQuery


@pytest.fixture
def config() -> FlowerConfig:
    return FlowerConfig(
        num_websites=3,
        active_websites=2,
        objects_per_website=25,
        num_localities=3,
        max_content_overlay_size=8,
        locality_bits=2,
        website_bits=12,
        gossip=GossipConfig(
            gossip_period_s=60.0, view_size=6, gossip_length=3, push_threshold=0.2,
            keepalive_period_s=60.0, dead_age=3,
        ),
        simulation_duration_s=3600.0,
        metrics_window_s=300.0,
    )


@pytest.fixture
def system(config: FlowerConfig) -> FlowerCDN:
    topology = Topology(
        TopologyConfig(
            num_hosts=300,
            num_localities=config.num_localities,
            locality_weights=(1.0, 1.0, 1.0),
        ),
        RandomStreams(31),
    )
    sim = Simulator(seed=5, end_time=config.simulation_duration_s)
    cdn = FlowerCDN(config, sim, topology)
    cdn.bootstrap()
    return cdn


def enroll(system: FlowerCDN, locality: int = 0, offset: int = 0) -> ContentPeer:
    website = system.catalog.websites[0].name
    hosts = [
        h for h in system.topology.hosts_in_locality(locality)
        if h not in system.reserved_hosts
    ]
    host = hosts[offset]
    system.handle_query(
        ResolvedQuery(
            query_id=offset,
            time=float(offset),
            website=website,
            object_id=system.catalog.websites[0].object_id(offset),
            locality=locality,
            client_host=host,
            is_new_client=True,
        )
    )
    return system.content_peer(f"c({website})@{host}")


class TestFailRecoverRoundTrip:
    def test_peer_level_round_trip(self, system: FlowerCDN):
        peer = enroll(system)
        assert peer.alive
        peer.fail()
        assert not peer.alive
        peer.recover()
        assert peer.alive

    def test_system_fail_is_idempotent_until_recovery(self, system: FlowerCDN):
        peer = enroll(system)
        assert system.fail_content_peer(peer.peer_id)
        # already dead: a second failure is a no-op
        assert not system.fail_content_peer(peer.peer_id)
        peer.recover()
        assert system.fail_content_peer(peer.peer_id)

    def test_failed_peer_keeps_identity_across_recovery(self, system: FlowerCDN):
        peer = enroll(system)
        objects_before = set(peer.objects)
        system.fail_content_peer(peer.peer_id)
        peer.recover()
        assert set(peer.objects) == objects_before
        assert system.content_peer(peer.peer_id) is peer


class TestForgetContact:
    def test_clears_directory_binding(self, system: FlowerCDN):
        peer = enroll(system)
        directory_id = peer.directory_peer_id
        assert directory_id is not None
        peer.forget_contact(directory_id)
        assert peer.directory_peer_id is None

    def test_forgetting_other_contacts_keeps_directory(self, system: FlowerCDN):
        peer = enroll(system)
        directory_id = peer.directory_peer_id
        peer.forget_contact("c(nobody)@999")
        assert peer.directory_peer_id == directory_id


class TestRepeatedDirectoryReplacement:
    def test_replacement_survives_repeated_failures(self, system: FlowerCDN):
        website = system.catalog.websites[0].name
        enroll(system, offset=0)
        enroll(system, offset=1)
        original = system.directory_for(website, 0)
        generations = [original.peer_id]
        for round_number in range(1, 3):
            assert system.fail_directory(website, 0)
            # the next keepalive detects the failure and repairs (Section 5.2)
            system.sim.run(until=200.0 * round_number)
            replacement = system.directory_for(website, 0)
            assert replacement is not None
            assert replacement.alive
            assert replacement.peer_id not in generations
            # the D-ring identifier is preserved across every generation
            assert replacement.node_id == original.node_id
            generations.append(replacement.peer_id)
        assert system.directory_replacements == 2

    def test_fail_directory_on_dead_directory_returns_false(self, system: FlowerCDN):
        website = system.catalog.websites[0].name
        enroll(system)
        assert system.fail_directory(website, 0)
        assert not system.fail_directory(website, 0)
