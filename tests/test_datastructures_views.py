"""Unit tests for aged views (gossip views / directory ageing) and the LRU cache."""

import random

import pytest

from repro.datastructures.aged_view import AgedEntry, AgedView
from repro.datastructures.lru import LRUCache


class TestAgedEntry:
    def test_aged_returns_new_entry(self):
        entry = AgedEntry(contact="p1", age=2)
        older = entry.aged()
        assert older.age == 3
        assert entry.age == 2  # immutable

    def test_refreshed_resets_age_and_keeps_payload(self):
        entry = AgedEntry(contact="p1", age=5, payload="summary")
        fresh = entry.refreshed()
        assert fresh.age == 0
        assert fresh.payload == "summary"

    def test_refreshed_with_new_payload(self):
        entry = AgedEntry(contact="p1", age=5, payload="old")
        assert entry.refreshed(payload="new").payload == "new"


class TestAgedView:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AgedView(capacity=0)

    def test_put_and_get(self):
        view = AgedView(capacity=5)
        view.put(AgedEntry("a", age=1))
        assert "a" in view
        assert view.get("a").age == 1
        assert len(view) == 1

    def test_refresh_creates_or_resets(self):
        view = AgedView(capacity=5)
        view.refresh("a")
        assert view.get("a").age == 0
        view.increment_ages()
        assert view.get("a").age == 1
        view.refresh("a")
        assert view.get("a").age == 0

    def test_increment_ages_applies_to_all(self):
        view = AgedView(capacity=5)
        view.put(AgedEntry("a", age=0))
        view.put(AgedEntry("b", age=2))
        view.increment_ages()
        assert view.get("a").age == 1
        assert view.get("b").age == 3

    def test_select_oldest_and_youngest(self):
        view = AgedView(capacity=5)
        view.put(AgedEntry("old", age=9))
        view.put(AgedEntry("young", age=1))
        assert view.select_oldest().contact == "old"
        assert view.select_youngest().contact == "young"

    def test_select_on_empty_view_returns_none(self):
        view = AgedView(capacity=5)
        assert view.select_oldest() is None
        assert view.select_youngest() is None

    def test_select_subset_size_and_exclusion(self):
        view = AgedView(capacity=10)
        for i in range(6):
            view.put(AgedEntry(f"p{i}", age=i))
        subset = view.select_subset(3, rng=random.Random(1))
        assert len(subset) == 3
        excluded = view.select_subset(10, exclude=["p0", "p1"])
        assert all(entry.contact not in ("p0", "p1") for entry in excluded)

    def test_select_subset_without_rng_prefers_youngest(self):
        view = AgedView(capacity=10)
        for i in range(5):
            view.put(AgedEntry(f"p{i}", age=i))
        subset = view.select_subset(2)
        assert [e.contact for e in subset] == ["p0", "p1"]

    def test_merge_keeps_smallest_age_for_duplicates(self):
        view = AgedView(capacity=5)
        view.put(AgedEntry("a", age=5))
        view.merge([AgedEntry("a", age=1)])
        assert view.get("a").age == 1
        view.merge([AgedEntry("a", age=9)])
        assert view.get("a").age == 1

    def test_merge_never_adds_self(self):
        view = AgedView(capacity=5)
        view.merge([AgedEntry("me", age=0), AgedEntry("other", age=0)], self_contact="me")
        assert "me" not in view
        assert "other" in view

    def test_merge_trims_to_most_recent(self):
        view = AgedView(capacity=3)
        view.merge([AgedEntry(f"p{i}", age=i) for i in range(10)])
        assert len(view) == 3
        assert set(view.contacts()) == {"p0", "p1", "p2"}

    def test_evict_older_than(self):
        view = AgedView(capacity=10)
        view.put(AgedEntry("fresh", age=1))
        view.put(AgedEntry("stale", age=8))
        evicted = view.evict_older_than(4)
        assert [e.contact for e in evicted] == ["stale"]
        assert "stale" not in view

    def test_remove_and_clear(self):
        view = AgedView(capacity=5)
        view.put(AgedEntry("a"))
        assert view.remove("a")
        assert not view.remove("a")
        view.put(AgedEntry("b"))
        view.clear()
        assert len(view) == 0

    def test_unbounded_view_never_trims(self):
        view = AgedView(capacity=None)
        view.merge([AgedEntry(f"p{i}", age=i) for i in range(100)])
        assert len(view) == 100


class TestLRUCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_put_get_and_hit_statistics(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        evicted = cache.put("c", 3)
        assert evicted == ("b", 2)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_peek_does_not_affect_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")
        evicted = cache.put("c", 3)
        assert evicted == ("a", 1)

    def test_update_existing_key_does_not_evict(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.put("a", 10) is None
        assert cache.peek("a") == 10

    def test_unbounded_cache_never_evicts(self):
        cache = LRUCache()
        for i in range(1000):
            assert cache.put(i, i) is None
        assert len(cache) == 1000
        assert cache.evictions == 0

    def test_remove_and_clear(self):
        cache = LRUCache(capacity=3)
        cache.put("a", 1)
        assert cache.remove("a")
        assert not cache.remove("a")
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_keys_and_iteration(self):
        cache = LRUCache(capacity=3)
        for key in ("x", "y", "z"):
            cache.put(key, key.upper())
        assert cache.keys() == ("x", "y", "z")
        assert list(iter(cache)) == ["x", "y", "z"]
