#!/usr/bin/env python
"""CI smoke test for ``repro serve`` — the live service end to end.

Boots the real server as a subprocess on an ephemeral port and asserts the
headline service guarantees:

1. ``/healthz`` answers.
2. Two **concurrent identical** submissions execute once: both resolve to
   the same run id, the second answers ``"cached": true``, and ``/stats``
   counts exactly one cache miss for the pair.
3. A third, **distinct** submission executes separately.
4. The returned result document is byte-identical to a direct
   ``Session.from_spec(...).run()`` of the same spec/seed.
5. Artifact downloads (csv/json/md) match the shared bundle writer.
6. Overfilling the queue yields HTTP 429 with a ``Retry-After`` header.
7. SIGTERM drains gracefully: the server finishes in-flight jobs and
   exits 0, leaving a durable run store behind.

Usage: ``python scripts/service_smoke.py [--store DIR]`` (run from the repo
root with ``PYTHONPATH=src``; CI uploads the resulting run store).
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

TINY_SPEC = {
    "name": "smoke-tiny",
    "duration_s": 900.0,
    "num_hosts": 60,
    "num_websites": 4,
    "active_websites": 2,
    "objects_per_website": 20,
    "max_content_overlay_size": 8,
    "query_rate_per_s": 0.5,
}
SEED = 7


def request(base: str, method: str, path: str, body: dict | None = None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, dict(response.headers), response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read().decode()


def poll_done(base: str, run_id: str, timeout_s: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout_s  # repro: allow(DET002)
    while time.monotonic() < deadline:  # repro: allow(DET002)
        _, _, text = request(base, "GET", f"/runs/{run_id}")
        document = json.loads(text)
        if document["state"] in ("done", "failed", "cancelled"):
            return document
        time.sleep(0.2)
    raise AssertionError(f"run {run_id} did not finish within {timeout_s}s")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", type=Path,
                        default=Path(tempfile.mkdtemp()) / "run-store",
                        help="run store directory (default: a temp dir)")
    args = parser.parse_args()

    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "2", "--max-queue", "2", "--store", str(args.store)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        assert server.stdout is not None
        banner = server.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        assert match, f"no listen banner from the server: {banner!r}"
        base = match.group(0)
        print(f"smoke: server up at {base}")

        status, _, _ = request(base, "GET", "/healthz")
        assert status == 200, f"/healthz answered {status}"

        # -- concurrent identical submissions execute once -------------------
        body = {"spec": TINY_SPEC, "seed": SEED}
        results: list[tuple[int, str]] = []

        def submit() -> None:
            status, _, text = request(base, "POST", "/runs", body)
            results.append((status, text))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        documents = [json.loads(text) for _, text in results]
        run_ids = {document["id"] for document in documents}
        assert len(run_ids) == 1, f"identical submissions split: {run_ids}"
        run_id = run_ids.pop()
        cached_flags = sorted(document["cached"] for document in documents)
        assert cached_flags == [False, True], (
            f"expected exactly one dedup of the pair, got cached={cached_flags}"
        )
        print(f"smoke: dedup ok, both submissions -> run {run_id}")

        final = poll_done(base, run_id)
        assert final["state"] == "done", f"run failed: {final.get('detail')}"

        # A resubmission after completion is a pure cache hit.
        status, _, text = request(base, "POST", "/runs", body)
        cached_doc = json.loads(text)
        assert status == 200 and cached_doc["cached"] is True, (
            f"resubmission was not served from cache: {status} {text}"
        )

        _, _, stats_text = request(base, "GET", "/stats")
        stats = json.loads(stats_text)
        assert stats["cache"]["misses"] == 1, (
            f"identical submissions executed more than once: {stats['cache']}"
        )
        assert stats["cache"]["dedup_hits"] + stats["cache"]["store_hits"] >= 2
        print(f"smoke: cache counters ok ({stats['cache']})")

        # -- a distinct submission executes separately ------------------------
        status, _, text = request(
            base, "POST", "/runs", {"spec": TINY_SPEC, "seed": SEED + 1}
        )
        assert status == 202
        other_id = json.loads(text)["id"]
        assert other_id != run_id
        poll_done(base, other_id)
        _, _, stats_text = request(base, "GET", "/stats")
        assert json.loads(stats_text)["cache"]["misses"] == 2
        print("smoke: distinct submission executed separately")

        # -- result bytes == a direct Session run -----------------------------
        status, _, served = request(base, "GET", f"/runs/{run_id}/result")
        assert status == 200
        from repro.scenarios.artifacts import ARTIFACT_FILES, DIGEST_FILENAME, run_documents
        from repro.scenarios.spec import ScenarioSpec
        from repro.session import Session

        direct = Session.from_spec(ScenarioSpec.from_dict(TINY_SPEC), seed=SEED).run()
        expected = run_documents(direct, scale=1.0)
        assert served == expected[DIGEST_FILENAME], (
            "served result differs from a direct Session run of the same spec/seed"
        )
        for kind, filename in sorted(ARTIFACT_FILES.items()):
            status, _, text = request(base, "GET", f"/runs/{run_id}/artifacts/{kind}")
            assert status == 200 and text == expected[filename], (
                f"artifact {kind} differs from the shared bundle writer"
            )
        print("smoke: result + artifacts byte-identical to a direct run")

        # -- backpressure: overfill the queue ---------------------------------
        # Slower distinct jobs (longer simulated horizon, a few seconds of
        # wall clock each): 2 run + 2 queue; one more must bounce with 429.
        slow = dict(TINY_SPEC)
        slow["duration_s"] = 10800.0
        saw_429 = False
        retry_after = None
        for index in range(8):
            status, headers, _ = request(
                base, "POST", "/runs", {"spec": slow, "seed": 1000 + index}
            )
            if status == 429:
                saw_429 = True
                retry_after = headers.get("Retry-After")
                break
            assert status == 202, f"unexpected submit status {status}"
        assert saw_429, "the queue never pushed back with 429"
        assert retry_after is not None and int(retry_after) >= 1
        print(f"smoke: backpressure ok (429, Retry-After: {retry_after})")

        # -- graceful drain on SIGTERM ----------------------------------------
        # The accepted slow jobs are still in flight; the drain must finish
        # them (not drop them) and only then exit 0.
        server.send_signal(signal.SIGTERM)
        exit_code = server.wait(timeout=300)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)
    assert exit_code == 0, f"server exited {exit_code} after SIGTERM"
    print("smoke: graceful drain ok (exit 0)")

    index_path = args.store / "index.json"
    assert index_path.is_file(), "run store index missing after shutdown"
    entries = json.loads(index_path.read_text())["entries"]
    assert len(entries) >= 2, f"expected >= 2 stored runs, found {len(entries)}"
    print(f"smoke: run store durable ({len(entries)} bundles at {args.store})")
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
