"""Figure 7(a): Flower-CDN's average lookup latency over time.

Paper reference: the average lookup latency starts high (all first queries
traverse the D-ring or fall back to the origin server), decreases as content
overlays are populated, and stabilises around 120 ms within ~5 hours.

Expected shape here: a decreasing curve whose steady-state value is far below
its initial value and far below the DHT-bound latencies Squirrel exhibits.
"""

from repro.experiments.locality import run_locality_experiment
from repro.metrics.report import format_series


def test_fig7a_lookup_latency_over_time(benchmark, bench_setup, report):
    result = benchmark.pedantic(
        run_locality_experiment, args=(bench_setup,), rounds=1, iterations=1
    )

    report(
        format_series(
            "Figure 7a: Flower-CDN average lookup latency (ms) over time",
            result.flower_latency_over_time,
            y_label="latency (ms)",
        )
        + f"\noverall average: {result.flower_run.average_lookup_latency_ms:.1f} ms"
    )

    curve = [value for _, value in result.flower_latency_over_time]
    assert len(curve) >= 3
    # Warm-up effect: the first window is the most expensive one.
    assert curve[0] == max(curve)
    # After warm-up the latency settles well below the initial level.
    assert curve[-1] < 0.5 * curve[0]
    # The steady state is low in absolute terms (the paper reports ~120 ms).
    assert curve[-1] < 300.0
