"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 6) at *laptop scale*: the parameter ratios of Table 1 are preserved
but the run is shortened so the whole suite finishes in a few minutes.  Pass
``--paper-scale`` to run the original 24-hour, 5000-host configuration
instead (slow, but it is the configuration the paper used).

The printed tables/series are emitted outside pytest's capture so they appear
directly in ``pytest benchmarks/ --benchmark-only`` output, which is what
EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.experiments.driver import ExperimentSetup  # noqa: E402
from repro.scenarios.library import get_scenario  # noqa: E402
from repro.scenarios.spec import ScenarioSpec  # noqa: E402
from repro.session import Session  # noqa: E402
from repro.sweeps.engine import SweepResult, run_sweep  # noqa: E402
from repro.sweeps.library import get_sweep  # noqa: E402

#: the paper-scale counterpart of each sweep base (what --paper-scale swaps in)
FULL_SCALE_BASES = {
    "paper-default": "paper-default-full-scale",
    "squirrel-head-to-head": "squirrel-head-to-head-full-scale",
}


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the benchmarks at the paper's full Table 1 scale (much slower)",
    )


@pytest.fixture(scope="session")
def bench_scenario(request: pytest.FixtureRequest) -> ScenarioSpec:
    """The library scenario every benchmark harness is configured from.

    ``paper-default`` *is* the Table 1 parameter set at laptop scale — the
    scenario library is the single source of truth for these parameters.
    """
    return get_scenario("paper-default")


@pytest.fixture(scope="session")
def bench_setup(
    request: pytest.FixtureRequest, bench_scenario: ScenarioSpec
) -> ExperimentSetup:
    """The experiment configuration shared by all benchmark harnesses.

    Compiled through the :class:`~repro.session.Session` facade — the same
    construction path the CLI, scenario runner and perf suite use.
    """
    if request.config.getoption("--paper-scale"):
        return Session.from_name("paper-default-full-scale", seed=42).setup
    return Session.from_spec(bench_scenario).setup


@pytest.fixture(scope="session")
def run_registered_sweep(request: pytest.FixtureRequest):
    """Run a sweep from the registry at the harness's scale.

    The sweep benchmarks (Table 2, the ablations, Figure 6) source their
    whole grid from :mod:`repro.sweeps.library`; ``--paper-scale`` swaps the
    base scenario for its full Table 1 counterpart.  Runs are sequential so
    each cell keeps its full :class:`ScenarioResult` attached (the Figure 6
    harness asserts on the time series).
    """
    paper_scale = request.config.getoption("--paper-scale")

    def run(name: str) -> SweepResult:
        sweep = get_sweep(name)
        if paper_scale:
            base = get_scenario(FULL_SCALE_BASES[sweep.base])
            return run_sweep(sweep, base_spec=base)
        return run_sweep(sweep)

    return run


@pytest.fixture
def report(capsys: pytest.CaptureFixture):
    """Print a result block so it is visible in the benchmark run's output."""

    def emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return emit
