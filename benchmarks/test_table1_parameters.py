"""Table 1: the simulation parameter set.

This harness does not measure a system property; it regenerates the
parameter table the evaluation is configured with (both the paper-scale
defaults of ``FlowerConfig()`` and the scale actually used by the benchmark
suite) so the remaining benchmarks can be interpreted against it.
"""

from repro.core.config import FlowerConfig
from repro.metrics.report import format_table
from repro.scenarios.library import get_scenario


def test_table1_simulation_parameters(benchmark, bench_setup, report):
    def build_tables():
        paper = FlowerConfig().table1()
        used = bench_setup.flower.table1()
        return paper, used

    paper, used = benchmark.pedantic(build_tables, rounds=1, iterations=1)

    rows = [(key, paper[key], used.get(key, "-")) for key in paper]
    rows.append(("Query rate (q/s)", 6.0, bench_setup.workload.query_rate_per_s))
    rows.append(("Underlying hosts", 5000, bench_setup.topology.num_hosts))
    report(
        format_table(
            ["parameter", "paper (Table 1)", "this benchmark run"],
            rows,
            title="Table 1: simulation parameters",
        )
    )

    assert paper["Nb of localities (k)"] == 6
    assert paper["Nb of websites (|W|)"] == 100
    assert paper["View size (Vgossip)"] == 50
    assert used["Nb of localities (k)"] == bench_setup.flower.num_localities

    # The benchmark parameters are sourced from the scenario library
    # (paper-default is the single source of truth for this table).
    scenario = get_scenario("paper-default")
    assert used["Nb of websites (|W|)"] in (scenario.num_websites, 100)
    assert used["Gossip period (Tgossip, s)"] == scenario.gossip_period_s
