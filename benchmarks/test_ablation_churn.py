"""Ablation: behaviour under churn (the Section 5 mechanisms in action).

The paper describes Flower-CDN's handling of content-peer failures, directory
failures and locality changes but defers their empirical analysis ("we are
empirically analysing the behavior of Flower-CDN in presence of churn",
Section 8).  This harness runs the same workload without churn and under half
the heavy-churn scenario's rates — the ``ablation-churn`` sweep of the
registry — and checks that the recovery mechanisms keep the system usable.
"""

from repro.sweeps.artifacts import format_sweep_result


def test_ablation_churn_resilience(benchmark, run_registered_sweep, report):
    result = benchmark.pedantic(
        run_registered_sweep,
        args=("ablation-churn",),
        rounds=1,
        iterations=1,
    )

    report(format_sweep_result(result))

    baseline, churned = result.cells
    assert baseline.assignments["churn"]["content_failures_per_hour"] == 0.0
    assert churned.assignments["churn"]["content_failures_per_hour"] > 0.0

    # Churn was actually injected: the two cells share the same trace and
    # seed, so any digest divergence comes from the injected dynamics.
    assert churned.digest != baseline.digest

    # The system keeps serving: failures degrade the hit ratio only modestly
    # and never below half of the churn-free level.
    assert churned.metric("hit_ratio") > 0.5 * baseline.metric("hit_ratio")
    assert baseline.metric("hit_ratio") - churned.metric("hit_ratio") < 0.3

    # Redirection failures appear under churn (stale directory entries) but the
    # ageing/keepalive machinery keeps them bounded relative to the query count.
    assert churned.metric("redirection_failures") >= baseline.metric("redirection_failures")
    assert churned.metric("redirection_failures") < 0.2 * churned.metric("num_queries")
