"""Ablation: behaviour under churn (the Section 5 mechanisms in action).

The paper describes Flower-CDN's handling of content-peer failures, directory
failures and locality changes but defers their empirical analysis ("we are
empirically analysing the behavior of Flower-CDN in presence of churn",
Section 8).  This harness runs the same workload with and without churn
injection and checks that the recovery mechanisms keep the system usable.
"""

from repro.core.churn import ChurnConfig
from repro.experiments.churn import run_churn_experiment
from repro.scenarios.library import get_scenario


def test_ablation_churn_resilience(benchmark, bench_setup, report):
    # Churn rates come from the library's heavy-churn scenario, halved: the
    # ablation measures graceful degradation, not the stress ceiling.
    heavy = get_scenario("heavy-churn").churn
    churn = ChurnConfig(
        content_failures_per_hour=heavy.content_failures_per_hour / 2,
        directory_failures_per_hour=heavy.directory_failures_per_hour / 2,
        locality_changes_per_hour=heavy.locality_changes_per_hour / 2,
    )

    result = benchmark.pedantic(
        run_churn_experiment,
        args=(bench_setup,),
        kwargs={"churn": churn},
        rounds=1,
        iterations=1,
    )

    report(result.format())

    # Churn was actually injected and the directory replacement protocol ran.
    assert result.events_injected > 0

    # The system keeps serving: failures degrade the hit ratio only modestly
    # and never below half of the churn-free level.
    assert result.churned.hit_ratio > 0.5 * result.baseline.hit_ratio
    assert result.hit_ratio_drop < 0.3

    # Redirection failures appear under churn (stale directory entries) but the
    # ageing/keepalive machinery keeps them bounded relative to the query count.
    assert result.churned.redirection_failures >= result.baseline.redirection_failures
    assert result.churned.redirection_failures < 0.2 * result.churned.num_queries
