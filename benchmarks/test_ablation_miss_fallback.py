"""Ablation: what a content peer does when its view cannot resolve a query.

The paper's content peers search the gossiped content summaries of their view
(Section 4.1); what happens on a view miss is a design choice this
reproduction exposes as ``FlowerConfig.content_miss_fallback``:

* ``"server"`` (default) — go to the origin server, as the hit-ratio
  sensitivity to the gossip parameters in Table 2 implies;
* ``"directory"`` — ask the directory peer first, which holds a complete
  index of the overlay (Algorithm 3), trading an extra intra-locality hop for
  a higher hit ratio.

This harness quantifies that trade-off, which DESIGN.md lists as an ablation
target.
"""

from dataclasses import replace

from repro.experiments.driver import ExperimentRunner
from repro.metrics.report import format_table


def test_ablation_content_miss_fallback(benchmark, bench_setup, report):
    def run_both():
        server_runner = ExperimentRunner(bench_setup)
        server_result = server_runner.run_flower()

        directory_setup = bench_setup.with_flower(
            replace(bench_setup.flower, content_miss_fallback="directory")
        )
        directory_runner = ExperimentRunner(directory_setup)
        directory_result = directory_runner.run_flower()
        return server_result, directory_result

    server_result, directory_result = benchmark.pedantic(run_both, rounds=1, iterations=1)

    report(
        format_table(
            ["fallback", "hit ratio", "avg lookup (ms)", "avg transfer distance (ms)"],
            [
                ("server (paper default)", server_result.hit_ratio,
                 server_result.average_lookup_latency_ms,
                 server_result.average_transfer_distance_ms),
                ("directory (Algorithm 3)", directory_result.hit_ratio,
                 directory_result.average_lookup_latency_ms,
                 directory_result.average_transfer_distance_ms),
            ],
            title="Ablation: content-peer miss fallback",
        )
    )

    # Falling back to the directory's complete index can only help the hit
    # ratio, because the directory knows every object the overlay holds.
    assert directory_result.hit_ratio >= server_result.hit_ratio

    # And it shortens the average lookup: fewer 500 ms origin-server round
    # trips, replaced by intra-locality redirections.
    assert directory_result.average_lookup_latency_ms <= server_result.average_lookup_latency_ms
