"""Smoke tests of the perf-benchmark suite (`repro perf`).

These run the suite in its shrunken --quick configuration so CI exercises the
whole pipeline — microbenchmarks, scenario benchmarks, JSON document, and the
baseline regression gate — in a few seconds.  The real, tracked numbers live
in the committed ``BENCH_core.json`` next to this file.
"""

import copy
import io
import json

from repro import cli
from repro.perf import suite


class TestRunSuite:
    def test_quick_suite_document_schema(self):
        document = suite.run_suite(scenarios=["paper-default"], quick=True)
        assert document["schema"] == suite.SCHEMA_VERSION
        assert document["quick"] is True
        micro = document["micro"]
        for key in (
            "event_core",
            "event_cancellation",
            "periodic_rescheduling",
            "latency_cache",
            "zipf",
        ):
            assert key in micro, key
        assert micro["event_core"]["events_per_s"] > 0
        assert micro["latency_cache"]["cache_hits"] > micro["latency_cache"]["cache_misses"]
        assert micro["zipf"]["alias_draws_per_s"] > 0
        scenario = document["scenarios"]["paper-default"]
        assert scenario["events_per_s"] > 0
        assert scenario["queries_per_s"] > 0
        assert scenario["wall_s"] > 0
        assert scenario["events_fired"] > scenario["num_queries"] > 0

    def test_scenario_benchmark_deterministic_event_counts(self):
        first = suite.bench_scenario("paper-default", scale=0.25, repeats=1)
        second = suite.bench_scenario("paper-default", scale=0.25, repeats=1)
        assert first["events_fired"] == second["events_fired"]
        assert first["num_queries"] == second["num_queries"]


class TestBaselineComparison:
    def _document(self):
        return {
            "schema": suite.SCHEMA_VERSION,
            "micro": {"event_core": {"events_per_s": 100_000.0}},
            "scenarios": {"paper-default": {"events_per_s": 50_000.0}},
        }

    def test_identical_runs_pass(self):
        document = self._document()
        assert suite.compare_to_baseline(document, copy.deepcopy(document)) == []

    def test_regression_beyond_threshold_fails(self):
        baseline = self._document()
        fresh = copy.deepcopy(baseline)
        fresh["scenarios"]["paper-default"]["events_per_s"] = 30_000.0
        failures = suite.compare_to_baseline(fresh, baseline)
        assert failures and "paper-default" in failures[0]

    def test_uniformly_slower_machine_passes(self):
        """A machine running everything 2x slower is not a regression."""
        baseline = self._document()
        fresh = copy.deepcopy(baseline)
        fresh["micro"]["event_core"]["events_per_s"] = 50_000.0
        fresh["scenarios"]["paper-default"]["events_per_s"] = 25_000.0
        assert suite.compare_to_baseline(fresh, baseline) == []

    def test_missing_scenario_fails(self):
        baseline = self._document()
        fresh = copy.deepcopy(baseline)
        del fresh["scenarios"]["paper-default"]
        failures = suite.compare_to_baseline(fresh, baseline)
        assert failures and "missing" in failures[0]

    def test_committed_baseline_loads_and_has_headline_scenario(self):
        baseline = suite.load_baseline()
        assert "paper-default" in baseline["scenarios"]
        assert baseline["scenarios"]["paper-default"]["events_per_s"] > 0


class TestCli:
    def test_perf_quick_writes_document(self, tmp_path):
        output = tmp_path / "BENCH_core.json"
        buffer = io.StringIO()
        code = cli.main(
            ["perf", "--quick", "--output", str(output), "--scenarios", "paper-default"],
            out=buffer,
        )
        assert code == 0
        document = json.loads(output.read_text())
        assert "paper-default" in document["scenarios"]

    def test_perf_check_against_self(self, tmp_path, monkeypatch):
        """--check against a baseline produced by the same configuration passes."""
        baseline = tmp_path / "baseline.json"
        buffer = io.StringIO()
        code = cli.main(
            ["perf", "--quick", "--output", str(baseline), "--scenarios", "paper-default"],
            out=buffer,
        )
        assert code == 0
        code = cli.main(
            [
                "perf", "--quick", "--scenarios", "paper-default",
                "--output", "-", "--check", "--baseline", str(baseline),
            ],
            out=io.StringIO(),
        )
        assert code == 0

    def test_perf_invalid_repeats_rejected(self):
        assert cli.main(["perf", "--repeats", "0"], out=io.StringIO()) == 2

    def test_update_baseline_with_check_rejected(self):
        """--update-baseline --check would vacuously compare a run to itself."""
        code = cli.main(
            ["perf", "--quick", "--update-baseline", "--check"], out=io.StringIO()
        )
        assert code == 2


class TestMemoryBudgets:
    """tracemalloc-based peak-allocation budgets for the memory-lean layers.

    Budgets are set ~2x above the measured values so they catch accidental
    re-introduction of per-event/per-record object churn, not allocator noise.
    """

    def test_trace_scheduling_is_leaner_than_batch_scheduling(self):
        # Enough events that the 16k trace-feeder chunk is a small fraction
        # of the schedule — the regime the trace path is built for.
        result = suite.bench_memory_event_queue(50_000)
        for backend in ("heap", "calendar"):
            batch = result[f"{backend}_batch_peak_bytes_per_event"]
            trace = result[f"{backend}_trace_peak_bytes_per_event"]
            # Pooled, chunked trace feeding must stay well under the
            # one-retained-handle-per-event batch path ...
            assert trace < 0.6 * batch, (backend, trace, batch)
            # ... and under an absolute per-event budget.
            assert trace < 150.0, (backend, trace)

    def test_event_pool_bounds_live_handles(self):
        from repro.sim.engine import Simulator

        sim = Simulator(seed=1, queue_backend="calendar")
        times = [float(i) * 0.01 for i in range(100_000)]
        sim.schedule_trace(times, lambda: None, chunk_size=4096)
        sim.run()
        assert sim.events_fired >= 100_000
        # The pool retains at most one chunk of recycled handles.
        assert sim._queue.pool_size <= 4096

    def test_latency_cache_memory_budgets(self):
        result = suite.bench_memory_latency_cache(300)
        pairs = 300 * 299 // 2
        # Dense: 8-byte slots per possible pair (+ row offsets) plus a boxed
        # float per computed pair — still an order of magnitude leaner than a
        # ~100 B/entry dict at full fill.
        assert result["dense_cache_nbytes"] == (
            8 * (pairs + 300) + 24 * result["dense_cache_entries"]
        )
        # The forced-LRU variant is bounded by its capacity (300 entries).
        assert result["lru_cache_entries"] <= 300
        assert result["lru_cache_nbytes"] <= 100 * 300

    def test_metric_reservoirs_are_allocation_bounded(self):
        result = suite.bench_memory_metrics(50_000)
        retained = result["retained_peak_bytes_per_record"]
        compact = result["compact_peak_bytes_per_record"]
        # Compact reservoirs must not scale with the query count.
        assert compact < 32.0, compact
        assert compact < retained / 4.0, (compact, retained)

    def test_memory_section_is_part_of_the_suite_document(self):
        document = suite.run_suite(scenarios=["paper-default"], quick=True)
        memory = document["memory"]
        assert set(memory) == {"event_queue", "latency_cache", "metrics"}
        assert memory["metrics"]["compact_peak_bytes_per_record"] > 0

    def test_memory_section_can_be_disabled(self):
        document = suite.run_suite(scenarios=["paper-default"], quick=True, memory=False)
        assert "memory" not in document


class TestPaperScaleSection:
    def test_paper_scale_is_not_part_of_the_default_suite(self):
        document = suite.run_suite(scenarios=["paper-default"], quick=True)
        assert "paper_scale" not in document

    def test_committed_baseline_has_the_paper_scale_section(self):
        baseline = suite.load_baseline()
        paper = baseline["paper_scale"]
        assert paper["scenario"] == suite.PAPER_SCALE_SCENARIO
        assert paper["num_queries"] > 500_000
        assert paper["events_per_s"] > 0
        assert paper["peak_rss_mb"] > 0

    def test_paper_scale_scenario_excluded_from_regression_gate(self):
        """The per-PR gate never requires a minutes-long fresh run."""
        baseline = suite.load_baseline()
        assert suite.PAPER_SCALE_SCENARIO not in baseline.get("scenarios", {})

    def test_committed_baseline_has_the_kernel_section(self):
        """Both backends' paper-scale numbers are tracked side by side."""
        baseline = suite.load_baseline()
        paper = baseline["paper_scale"]
        kernel = baseline["paper_scale_kernel"]
        assert kernel["scenario"] == suite.PAPER_SCALE_SCENARIO
        assert kernel["kernel"] is True
        assert paper["kernel"] is False
        # Identical runs (byte-identical goldens), different implementations.
        assert kernel["num_queries"] == paper["num_queries"]
        assert kernel["events_fired"] == paper["events_fired"]
        assert kernel["hit_ratio"] == paper["hit_ratio"]
        assert kernel["events_per_s"] > 0

    def test_update_baseline_without_paper_scale_keeps_the_section(
        self, tmp_path, monkeypatch
    ):
        """`make perf-baseline` (no --paper-scale) must not drop paper_scale."""
        baseline = tmp_path / "BENCH_core.json"
        baseline.write_text(
            json.dumps({"schema": suite.SCHEMA_VERSION, "scenarios": {},
                        "micro": {}, "paper_scale": {"wall_s": 1.0},
                        "paper_scale_kernel": {"wall_s": 0.5}}),
            encoding="utf-8",
        )
        monkeypatch.setenv(suite.BASELINE_PATH_ENV, str(baseline))
        code = cli.main(
            ["perf", "--quick", "--no-memory", "--update-baseline",
             "--scenarios", "paper-default", "--output", "-"],
            out=io.StringIO(),
        )
        assert code == 0
        refreshed = json.loads(baseline.read_text())
        assert refreshed["paper_scale"] == {"wall_s": 1.0}
        assert refreshed["paper_scale_kernel"] == {"wall_s": 0.5}
        assert "paper-default" in refreshed["scenarios"]
