"""Smoke tests of the perf-benchmark suite (`repro perf`).

These run the suite in its shrunken --quick configuration so CI exercises the
whole pipeline — microbenchmarks, scenario benchmarks, JSON document, and the
baseline regression gate — in a few seconds.  The real, tracked numbers live
in the committed ``BENCH_core.json`` next to this file.
"""

import copy
import io
import json

from repro import cli
from repro.perf import suite


class TestRunSuite:
    def test_quick_suite_document_schema(self):
        document = suite.run_suite(scenarios=["paper-default"], quick=True)
        assert document["schema"] == suite.SCHEMA_VERSION
        assert document["quick"] is True
        micro = document["micro"]
        for key in (
            "event_core",
            "event_cancellation",
            "periodic_rescheduling",
            "latency_cache",
            "zipf",
        ):
            assert key in micro, key
        assert micro["event_core"]["events_per_s"] > 0
        assert micro["latency_cache"]["cache_hits"] > micro["latency_cache"]["cache_misses"]
        assert micro["zipf"]["alias_draws_per_s"] > 0
        scenario = document["scenarios"]["paper-default"]
        assert scenario["events_per_s"] > 0
        assert scenario["queries_per_s"] > 0
        assert scenario["wall_s"] > 0
        assert scenario["events_fired"] > scenario["num_queries"] > 0

    def test_scenario_benchmark_deterministic_event_counts(self):
        first = suite.bench_scenario("paper-default", scale=0.25, repeats=1)
        second = suite.bench_scenario("paper-default", scale=0.25, repeats=1)
        assert first["events_fired"] == second["events_fired"]
        assert first["num_queries"] == second["num_queries"]


class TestBaselineComparison:
    def _document(self):
        return {
            "schema": suite.SCHEMA_VERSION,
            "micro": {"event_core": {"events_per_s": 100_000.0}},
            "scenarios": {"paper-default": {"events_per_s": 50_000.0}},
        }

    def test_identical_runs_pass(self):
        document = self._document()
        assert suite.compare_to_baseline(document, copy.deepcopy(document)) == []

    def test_regression_beyond_threshold_fails(self):
        baseline = self._document()
        fresh = copy.deepcopy(baseline)
        fresh["scenarios"]["paper-default"]["events_per_s"] = 30_000.0
        failures = suite.compare_to_baseline(fresh, baseline)
        assert failures and "paper-default" in failures[0]

    def test_uniformly_slower_machine_passes(self):
        """A machine running everything 2x slower is not a regression."""
        baseline = self._document()
        fresh = copy.deepcopy(baseline)
        fresh["micro"]["event_core"]["events_per_s"] = 50_000.0
        fresh["scenarios"]["paper-default"]["events_per_s"] = 25_000.0
        assert suite.compare_to_baseline(fresh, baseline) == []

    def test_missing_scenario_fails(self):
        baseline = self._document()
        fresh = copy.deepcopy(baseline)
        del fresh["scenarios"]["paper-default"]
        failures = suite.compare_to_baseline(fresh, baseline)
        assert failures and "missing" in failures[0]

    def test_committed_baseline_loads_and_has_headline_scenario(self):
        baseline = suite.load_baseline()
        assert "paper-default" in baseline["scenarios"]
        assert baseline["scenarios"]["paper-default"]["events_per_s"] > 0


class TestCli:
    def test_perf_quick_writes_document(self, tmp_path):
        output = tmp_path / "BENCH_core.json"
        buffer = io.StringIO()
        code = cli.main(
            ["perf", "--quick", "--output", str(output), "--scenarios", "paper-default"],
            out=buffer,
        )
        assert code == 0
        document = json.loads(output.read_text())
        assert "paper-default" in document["scenarios"]

    def test_perf_check_against_self(self, tmp_path, monkeypatch):
        """--check against a baseline produced by the same configuration passes."""
        baseline = tmp_path / "baseline.json"
        buffer = io.StringIO()
        code = cli.main(
            ["perf", "--quick", "--output", str(baseline), "--scenarios", "paper-default"],
            out=buffer,
        )
        assert code == 0
        code = cli.main(
            [
                "perf", "--quick", "--scenarios", "paper-default",
                "--output", "-", "--check", "--baseline", str(baseline),
            ],
            out=io.StringIO(),
        )
        assert code == 0

    def test_perf_invalid_repeats_rejected(self):
        assert cli.main(["perf", "--repeats", "0"], out=io.StringIO()) == 2

    def test_update_baseline_with_check_rejected(self):
        """--update-baseline --check would vacuously compare a run to itself."""
        code = cli.main(
            ["perf", "--quick", "--update-baseline", "--check"], out=io.StringIO()
        )
        assert code == 2
