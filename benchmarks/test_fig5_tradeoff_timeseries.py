"""Figure 5: hit ratio and background traffic over time for the chosen setting.

Paper reference: with Tgossip = 30 min, Lgossip = 10 and Vgossip = 50 the
cumulative hit ratio keeps rising through the 24-hour run while the per-peer
background traffic stabilises at ≈74 bps after about 5 hours.

Expected shape here: a (near) monotonically increasing hit-ratio curve and a
bounded, stabilising background-traffic level.
"""

from repro.experiments.timeseries import run_tradeoff_timeseries


def test_fig5_hit_ratio_and_traffic_over_time(benchmark, bench_setup, report):
    result = benchmark.pedantic(
        run_tradeoff_timeseries, args=(bench_setup,), rounds=1, iterations=1
    )

    report(result.format())

    # Figure 5 shape: the cumulative hit ratio keeps improving over time.
    assert result.hit_ratio_is_non_decreasing()
    curve = [value for _, value in result.hit_ratio_over_time]
    assert curve[-1] > curve[0]

    # Background traffic exists, is modest, and does not keep growing: the last
    # windows sit near the overall per-peer average.
    assert 0 < result.final_background_bps < 1000
    tail = [bps for _, bps in result.background_bps_over_time[-3:]]
    assert tail and max(tail) < 5 * max(result.final_background_bps, 1.0)
