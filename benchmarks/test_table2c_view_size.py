"""Table 2(c): hit ratio and background bandwidth when varying Vgossip.

Paper reference (24 h, PeerSim):

    Vgossip   hit ratio   background BW
    20        0.78        74 bps
    50        0.86        74 bps
    70        0.863       74 bps

Expected shape: the view size does not change the amount of information
exchanged per round, so bandwidth stays flat; the hit ratio improves slightly
with a larger view and saturates once the view covers the overlay.  The grid
is sourced from the sweep registry (``table2c-view-size``).
"""

import pytest

from repro.sweeps.artifacts import format_sweep_result


def test_table2c_view_size_sweep(benchmark, run_registered_sweep, report):
    result = benchmark.pedantic(
        run_registered_sweep,
        args=("table2c-view-size",),
        rounds=1,
        iterations=1,
    )

    report(format_sweep_result(result))

    small = result.cell(view_size=20)
    medium = result.cell(view_size=50)
    large = result.cell(view_size=70)

    # Bandwidth is unaffected by the view size (storage-only cost); only the
    # second-order effect of slightly different push batches remains.
    bandwidth = lambda cell: cell.metric("background_bps_per_peer")  # noqa: E731
    assert bandwidth(small) == pytest.approx(bandwidth(medium), rel=0.05)
    assert bandwidth(medium) == pytest.approx(bandwidth(large), rel=0.05)

    # The hit ratio does not degrade with a larger view; differences are small
    # (the paper reports +0.083 from 20 to 70 contacts).
    hit = lambda cell: cell.metric("hit_ratio")  # noqa: E731
    assert hit(large) >= hit(small) - 0.03
    assert abs(hit(large) - hit(medium)) < 0.05
