"""Table 2(c): hit ratio and background bandwidth when varying Vgossip.

Paper reference (24 h, PeerSim):

    Vgossip   hit ratio   background BW
    20        0.78        74 bps
    50        0.86        74 bps
    70        0.863       74 bps

Expected shape: the view size does not change the amount of information
exchanged per round, so bandwidth stays flat; the hit ratio improves slightly
with a larger view and saturates once the view covers the overlay.
"""

import pytest

from repro.experiments.gossip_tradeoff import (
    PAPER_VIEW_SIZES,
    format_sweep,
    run_view_size_sweep,
)


def test_table2c_view_size_sweep(benchmark, bench_setup, report):
    rows = benchmark.pedantic(
        run_view_size_sweep,
        args=(bench_setup,),
        kwargs={"values": PAPER_VIEW_SIZES},
        rounds=1,
        iterations=1,
    )

    report(format_sweep(rows, "Table 2(c): varying Vgossip (Lgossip = 10, Tgossip = 30 min)"))

    by_value = {row.value: row for row in rows}
    small, medium, large = by_value[20], by_value[50], by_value[70]

    # Bandwidth is unaffected by the view size (storage-only cost); only the
    # second-order effect of slightly different push batches remains.
    assert small.background_bps == pytest.approx(medium.background_bps, rel=0.05)
    assert medium.background_bps == pytest.approx(large.background_bps, rel=0.05)

    # The hit ratio does not degrade with a larger view; differences are small
    # (the paper reports +0.083 from 20 to 70 contacts).
    assert large.hit_ratio >= small.hit_ratio - 0.03
    assert abs(large.hit_ratio - medium.hit_ratio) < 0.05
