"""Figure 8(b): transfer-distance distribution, Flower-CDN versus Squirrel.

Paper reference: 59% of Flower-CDN's queries are served from within 100 ms
versus 17% for Squirrel; on average Flower-CDN reduces the transfer distance
by a factor of ≈2.

Expected shape here: Flower-CDN serves far more transfers from close-by peers
than Squirrel does, and its average transfer distance is at least ~2× lower.
"""

from repro.experiments.locality import run_locality_experiment


def test_fig8b_transfer_distance_distribution(benchmark, bench_setup, report):
    result = benchmark.pedantic(
        run_locality_experiment, args=(bench_setup,), rounds=1, iterations=1
    )

    report(result.format_figure8())

    flower_close = result.flower_fraction_close_transfers(100.0)
    squirrel_close = result.squirrel_fraction_close_transfers(100.0)

    # Locality awareness: most Flower-CDN transfers are close to the requester,
    # a much smaller share of Squirrel's are (59% vs 17% in the paper).
    assert flower_close > 0.5
    assert flower_close > squirrel_close + 0.2

    # Average transfer distance is reduced by at least the paper's factor of ~2.
    assert result.transfer_distance_reduction > 2.0
