"""Figure 6: hit ratio over time, Flower-CDN versus Squirrel.

Paper reference: both hit ratios converge towards 1; Squirrel converges
faster because its search space is the whole overlay, and after 24 hours
Flower-CDN trails Squirrel by about 13%.

Expected shape here: both cumulative curves rise, Squirrel's final hit ratio
is at least Flower-CDN's, and Flower-CDN still reaches a useful hit ratio.
"""

from repro.experiments.comparison import run_hit_ratio_comparison


def test_fig6_hit_ratio_flower_vs_squirrel(benchmark, bench_setup, report):
    result = benchmark.pedantic(
        run_hit_ratio_comparison, args=(bench_setup,), rounds=1, iterations=1
    )

    report(result.format())

    # Squirrel converges faster / higher (the paper's 13% gap after 24 h).
    assert result.squirrel_final >= result.flower_final
    assert 0.0 <= result.final_gap <= 0.5

    # Both curves rise over time.
    flower_values = [value for _, value in result.flower_curve]
    squirrel_values = [value for _, value in result.squirrel_curve]
    assert flower_values[-1] > flower_values[0]
    assert squirrel_values[-1] >= squirrel_values[0]

    # Flower-CDN still relieves the origin server for the majority of queries
    # by the end of the (scaled) run.
    assert result.flower_final > 0.5
