"""Figure 6: hit ratio over time, Flower-CDN versus Squirrel.

Paper reference: both hit ratios converge towards 1; Squirrel converges
faster because its search space is the whole overlay, and after 24 hours
Flower-CDN trails Squirrel by about 13%.

Expected shape here: both cumulative curves rise, Squirrel's final hit ratio
is at least Flower-CDN's, and Flower-CDN still reaches a useful hit ratio.
The single-cell grid is sourced from the sweep registry
(``fig6-hit-ratio-comparison``); both systems process the exact same trace.
"""

from repro.sweeps.artifacts import format_sweep_result


def test_fig6_hit_ratio_flower_vs_squirrel(benchmark, run_registered_sweep, report):
    result = benchmark.pedantic(
        run_registered_sweep,
        args=("fig6-hit-ratio-comparison",),
        rounds=1,
        iterations=1,
    )

    report(format_sweep_result(result))

    (cell,) = result.cells
    flower_final = cell.metric("hit_ratio", system="flower")
    squirrel_final = cell.metric("hit_ratio", system="squirrel")

    # Squirrel converges faster / higher (the paper's 13% gap after 24 h).
    assert squirrel_final >= flower_final
    assert 0.0 <= squirrel_final - flower_final <= 0.5

    # Both cumulative curves rise over time (sequential sweep runs keep the
    # full ScenarioResult attached, series included).
    scenario = cell.result
    flower_values = [v for _, v in scenario.flower.series["hit_ratio_cumulative"]]
    squirrel_values = [v for _, v in scenario.squirrel.series["hit_ratio_cumulative"]]
    assert flower_values[-1] > flower_values[0]
    assert squirrel_values[-1] >= squirrel_values[0]

    # Flower-CDN still relieves the origin server for the majority of queries
    # by the end of the (scaled) run.
    assert flower_final > 0.5
