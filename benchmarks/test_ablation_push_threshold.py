"""Ablation: push-threshold variation (discussed in the prose of Section 6.2).

Paper reference: "we also varied push threshold; but we do not show the
results which illustrate similar performance (i.e., almost same gains and
same trade-off) for different values of push threshold (0.1; 0.5; 0.7)".

Expected shape here: hit ratio and background bandwidth are essentially
insensitive to the push threshold.
"""

from repro.experiments.gossip_tradeoff import (
    PAPER_PUSH_THRESHOLDS,
    format_sweep,
    run_push_threshold_sweep,
)


def test_ablation_push_threshold(benchmark, bench_setup, report):
    rows = benchmark.pedantic(
        run_push_threshold_sweep,
        args=(bench_setup,),
        kwargs={"values": PAPER_PUSH_THRESHOLDS},
        rounds=1,
        iterations=1,
    )

    report(format_sweep(rows, "Ablation: varying the push threshold (0.1 / 0.5 / 0.7)"))

    hit_ratios = [row.hit_ratio for row in rows]
    bandwidths = [row.background_bps for row in rows]

    # "Almost same gains and same trade-off" across thresholds.
    assert max(hit_ratios) - min(hit_ratios) < 0.1
    assert max(bandwidths) < 2.0 * max(min(bandwidths), 1.0)
