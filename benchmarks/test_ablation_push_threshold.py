"""Ablation: push-threshold variation (discussed in the prose of Section 6.2).

Paper reference: "we also varied push threshold; but we do not show the
results which illustrate similar performance (i.e., almost same gains and
same trade-off) for different values of push threshold (0.1; 0.5; 0.7)".

Expected shape here: hit ratio and background bandwidth are essentially
insensitive to the push threshold.  The grid is sourced from the sweep
registry (``ablation-push-threshold``).
"""

from repro.sweeps.artifacts import format_sweep_result


def test_ablation_push_threshold(benchmark, run_registered_sweep, report):
    result = benchmark.pedantic(
        run_registered_sweep,
        args=("ablation-push-threshold",),
        rounds=1,
        iterations=1,
    )

    report(format_sweep_result(result))

    hit_ratios = result.series("hit_ratio")
    bandwidths = result.series("background_bps_per_peer")

    # "Almost same gains and same trade-off" across thresholds.
    assert max(hit_ratios) - min(hit_ratios) < 0.1
    assert max(bandwidths) < 2.0 * max(min(bandwidths), 1.0)
