"""Figure 8(a): Flower-CDN's average transfer distance over time.

Paper reference: the transfer distance is high at first, while objects are
still fetched from the origin servers, then drops significantly (to ≈80 ms)
once transfers happen within the requester's own locality.

Expected shape here: a decreasing curve whose steady state is far below both
the initial value and the origin-server distance.
"""

from repro.experiments.locality import run_locality_experiment
from repro.metrics.report import format_series


def test_fig8a_transfer_distance_over_time(benchmark, bench_setup, report):
    result = benchmark.pedantic(
        run_locality_experiment, args=(bench_setup,), rounds=1, iterations=1
    )

    report(
        format_series(
            "Figure 8a: Flower-CDN average transfer distance (ms) over time",
            result.flower_distance_over_time,
            y_label="distance (ms)",
        )
        + f"\noverall average: {result.flower_run.average_transfer_distance_ms:.1f} ms"
    )

    curve = [value for _, value in result.flower_distance_over_time]
    assert len(curve) >= 3
    # After the warm-up the transfer distance settles below its initial level ...
    assert curve[-1] <= curve[0]
    # ... and well below the origin-server distance (the topology's max latency).
    server_distance = bench_setup.topology.max_latency_ms
    assert curve[-1] < 0.5 * server_distance
