"""Ablation: active replication between content overlays (Section 8 future work).

The paper plans to "introduce active replication by pushing popular contents
from some content overlay towards other overlays of the same website".  This
harness runs the same workload with and without the extension and reports the
effect on hit ratio and on remote-overlay hits, plus the extra bandwidth the
replication pushes cost.
"""

from repro.core.replication import ReplicationConfig
from repro.experiments.driver import ExperimentRunner
from repro.metrics.collectors import QueryOutcome
from repro.metrics.report import format_table


def test_ablation_active_replication(benchmark, bench_setup, report):
    def run_both():
        baseline_runner = ExperimentRunner(bench_setup)
        baseline = baseline_runner.run_flower()
        replicated_runner = ExperimentRunner(bench_setup)
        replicated = replicated_runner.run_flower(
            replication=ReplicationConfig(period_s=1800.0, top_k=10, min_requests=3)
        )
        replicator = replicated_runner.last_replicator
        return baseline, replicated, replicator

    baseline, replicated, replicator = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def remote_fraction(run):
        fractions = run.metrics.outcome_fractions()
        return fractions.get(QueryOutcome.REMOTE_OVERLAY_HIT, 0.0)

    report(
        format_table(
            ["run", "hit ratio", "remote-overlay hits", "background bps/peer"],
            [
                ("without replication", baseline.hit_ratio, remote_fraction(baseline),
                 baseline.background_bps_per_peer),
                ("with replication", replicated.hit_ratio, remote_fraction(replicated),
                 replicated.background_bps_per_peer),
            ],
            title="Ablation: active replication between content overlays",
        )
        + f"\nobjects replicated across overlays: {replicator.replications_performed}"
    )

    # The extension actually replicated popular objects across overlays.
    assert replicator is not None and replicator.replications_performed > 0

    # It never hurts the hit ratio, and it costs extra (accounted) bandwidth.
    assert replicated.hit_ratio >= baseline.hit_ratio - 0.01
    assert replicated.background_bps_per_peer >= baseline.background_bps_per_peer
    assert (
        replicated.bandwidth.messages_by_category().get("replication", 0)
        == replicator.replications_performed
    )
