"""Table 2(b): hit ratio and background bandwidth when varying Tgossip.

Paper reference (24 h, PeerSim):

    Tgossip   hit ratio   background BW
    1 min     0.94        2239 bps
    30 min    0.86        74 bps
    1 hour    0.81        37 bps

Expected shape: lengthening the gossip period reduces bandwidth by a large
factor (×60 from 1 min to 1 h in the paper) and costs some hit ratio.
"""

from repro.experiments.gossip_tradeoff import (
    PAPER_GOSSIP_PERIODS_S,
    format_sweep,
    run_gossip_period_sweep,
)


def test_table2b_gossip_period_sweep(benchmark, bench_setup, report):
    rows = benchmark.pedantic(
        run_gossip_period_sweep,
        args=(bench_setup,),
        kwargs={"values": PAPER_GOSSIP_PERIODS_S},
        rounds=1,
        iterations=1,
    )

    report(format_sweep(rows, "Table 2(b): varying Tgossip (Lgossip = 10, Vgossip = 50)"))

    by_value = {row.value: row for row in rows}
    fast, medium, slow = by_value[60.0], by_value[1800.0], by_value[3600.0]

    # Gossiping every minute costs far more bandwidth than every hour.
    assert fast.background_bps > medium.background_bps > slow.background_bps
    assert fast.background_bps / slow.background_bps > 10.0

    # The hit ratio degrades as gossip becomes less frequent.
    assert fast.hit_ratio >= medium.hit_ratio >= slow.hit_ratio - 0.02
    assert fast.hit_ratio > slow.hit_ratio
