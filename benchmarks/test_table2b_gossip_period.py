"""Table 2(b): hit ratio and background bandwidth when varying Tgossip.

Paper reference (24 h, PeerSim):

    Tgossip   hit ratio   background BW
    1 min     0.94        2239 bps
    30 min    0.86        74 bps
    1 hour    0.81        37 bps

Expected shape: lengthening the gossip period reduces bandwidth by a large
factor (×60 from 1 min to 1 h in the paper) and costs some hit ratio.  The
grid is sourced from the sweep registry (``table2b-gossip-period``).
"""

from repro.sweeps.artifacts import format_sweep_result


def test_table2b_gossip_period_sweep(benchmark, run_registered_sweep, report):
    result = benchmark.pedantic(
        run_registered_sweep,
        args=("table2b-gossip-period",),
        rounds=1,
        iterations=1,
    )

    report(format_sweep_result(result))

    fast = result.cell(gossip_period_s=60.0)
    medium = result.cell(gossip_period_s=1800.0)
    slow = result.cell(gossip_period_s=3600.0)

    # Gossiping every minute costs far more bandwidth than every hour.
    bandwidth = lambda cell: cell.metric("background_bps_per_peer")  # noqa: E731
    assert bandwidth(fast) > bandwidth(medium) > bandwidth(slow)
    assert bandwidth(fast) / bandwidth(slow) > 10.0

    # The hit ratio degrades as gossip becomes less frequent.
    hit = lambda cell: cell.metric("hit_ratio")  # noqa: E731
    assert hit(fast) >= hit(medium) >= hit(slow) - 0.02
    assert hit(fast) > hit(slow)
