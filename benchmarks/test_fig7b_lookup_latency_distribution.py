"""Figure 7(b): lookup-latency distribution, Flower-CDN versus Squirrel.

Paper reference: 87% of Flower-CDN's queries are resolved within 150 ms while
61% of Squirrel's queries take more than 1050 ms; on average Flower-CDN
reduces lookup latency by a factor of ≈9.

Expected shape here: Flower-CDN's latency mass is concentrated in the low
bins, Squirrel's in the high bins, and the average speedup is a multiple.
"""

from repro.experiments.locality import run_locality_experiment


def test_fig7b_lookup_latency_distribution(benchmark, bench_setup, report):
    result = benchmark.pedantic(
        run_locality_experiment, args=(bench_setup,), rounds=1, iterations=1
    )

    report(result.format_figure7())

    # Flower-CDN resolves most queries quickly; Squirrel only does so for
    # queries its peers answer from their own cache — every other query pays
    # multi-hop DHT routing.
    flower_fast = result.flower_latency_histogram.fraction_below(150.0)
    squirrel_fast = result.squirrel_latency_histogram.fraction_below(150.0)
    assert flower_fast > 0.4
    assert flower_fast > squirrel_fast + 0.15

    # A large share of Squirrel's queries exceed 1050 ms (61% in the paper),
    # while almost none of Flower-CDN's do.
    assert result.squirrel_fraction_slow_lookups(1050.0) > 0.3
    assert result.flower_latency_histogram.fraction_above(1050.0) < 0.1

    # Average speedup is a multiple (paper: ~9x; the simulated substrate and
    # scale change the constant, not the direction).
    assert result.lookup_latency_speedup > 2.0
