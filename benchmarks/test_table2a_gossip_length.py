"""Table 2(a): hit ratio and background bandwidth when varying Lgossip.

Paper reference (24 h, PeerSim):

    Lgossip   hit ratio   background BW
    5         0.823       37 bps
    10        0.86        74 bps
    20        0.89        147 bps

Expected shape: bandwidth grows roughly linearly with Lgossip (×4 from 5 to
20 in the paper) while the hit ratio improves only marginally.
"""

from repro.experiments.gossip_tradeoff import (
    PAPER_GOSSIP_LENGTHS,
    format_sweep,
    run_gossip_length_sweep,
)


def test_table2a_gossip_length_sweep(benchmark, bench_setup, report):
    rows = benchmark.pedantic(
        run_gossip_length_sweep,
        args=(bench_setup,),
        kwargs={"values": PAPER_GOSSIP_LENGTHS},
        rounds=1,
        iterations=1,
    )

    report(format_sweep(rows, "Table 2(a): varying Lgossip (Tgossip = 30 min, Vgossip = 50)"))

    by_value = {row.value: row for row in rows}
    short, medium, long = by_value[5], by_value[10], by_value[20]

    # Bandwidth grows with the gossip length, roughly linearly.
    assert short.background_bps < medium.background_bps < long.background_bps
    assert long.background_bps / short.background_bps > 2.0

    # The hit ratio gain is positive but modest (paper: +0.067 from 5 to 20).
    assert long.hit_ratio >= short.hit_ratio - 0.02
    assert long.hit_ratio - short.hit_ratio < 0.25
