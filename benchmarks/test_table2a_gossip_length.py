"""Table 2(a): hit ratio and background bandwidth when varying Lgossip.

Paper reference (24 h, PeerSim):

    Lgossip   hit ratio   background BW
    5         0.823       37 bps
    10        0.86        74 bps
    20        0.89        147 bps

Expected shape: bandwidth grows roughly linearly with Lgossip (×4 from 5 to
20 in the paper) while the hit ratio improves only marginally.  The grid is
sourced from the sweep registry (``table2a-gossip-length``), the same sweep
``repro sweep run`` executes and the sweep goldens pin.
"""

from repro.sweeps.artifacts import format_sweep_result


def test_table2a_gossip_length_sweep(benchmark, run_registered_sweep, report):
    result = benchmark.pedantic(
        run_registered_sweep,
        args=("table2a-gossip-length",),
        rounds=1,
        iterations=1,
    )

    report(format_sweep_result(result))

    short = result.cell(gossip_length=5)
    medium = result.cell(gossip_length=10)
    long = result.cell(gossip_length=20)

    # Bandwidth grows with the gossip length, roughly linearly.
    bandwidth = lambda cell: cell.metric("background_bps_per_peer")  # noqa: E731
    assert bandwidth(short) < bandwidth(medium) < bandwidth(long)
    assert bandwidth(long) / bandwidth(short) > 2.0

    # The hit ratio gain is positive but modest (paper: +0.067 from 5 to 20).
    assert long.metric("hit_ratio") >= short.metric("hit_ratio") - 0.02
    assert long.metric("hit_ratio") - short.metric("hit_ratio") < 0.25
