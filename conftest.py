"""Pytest root configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. on offline machines where ``pip install -e .`` cannot build a wheel).
"""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
