#!/usr/bin/env python3
"""Gossip tuning: explore the hit-ratio / bandwidth trade-off of Section 6.2.

A website operator deploying Flower-CDN has to pick the gossip parameters
(Tgossip, Lgossip, Vgossip) to balance how fast the hit ratio converges
against how much background bandwidth volunteer peers spend.  This example
re-runs the Table 2 sweeps on a laptop-scale deployment and then suggests a
setting for a given per-peer bandwidth budget, mirroring the discussion at
the end of Section 6.2 ("for relatively fast convergence we could set
Tgossip = 30 min and Lgossip = 10 ...").

Run with:  python examples/gossip_tuning.py
"""

from repro.core.config import HOUR, MINUTE
from repro.experiments import (
    ExperimentSetup,
    run_gossip_length_sweep,
    run_gossip_period_sweep,
    run_view_size_sweep,
)
from repro.experiments.gossip_tradeoff import format_sweep
from repro.scenarios import get_scenario

#: per-peer background bandwidth the volunteer community is willing to spend
BANDWIDTH_BUDGET_BPS = 100.0


def build_setup() -> ExperimentSetup:
    # The sweeps vary the gossip knobs around the library's canonical
    # paper-default workload, so the baseline matches every other figure.
    return get_scenario("paper-default").with_seed(7).to_setup()


def main() -> None:
    setup = build_setup()

    print("Reproducing the Table 2 sweeps at laptop scale\n")

    length_rows = run_gossip_length_sweep(setup, values=(5, 10, 20))
    print(format_sweep(length_rows, "Table 2(a): varying Lgossip (Tgossip=30min, Vgossip=50)"))
    print()

    period_rows = run_gossip_period_sweep(
        setup, values=(1 * MINUTE, 30 * MINUTE, 1 * HOUR)
    )
    print(format_sweep(period_rows, "Table 2(b): varying Tgossip (Lgossip=10, Vgossip=50)"))
    print()

    view_rows = run_view_size_sweep(setup, values=(20, 50, 70))
    print(format_sweep(view_rows, "Table 2(c): varying Vgossip (Lgossip=10, Tgossip=30min)"))
    print()

    # Pick the setting with the best hit ratio under the bandwidth budget,
    # exactly the trade-off the paper discusses.
    candidates = [row for row in length_rows + period_rows if row.background_bps <= BANDWIDTH_BUDGET_BPS]
    if candidates:
        best = max(candidates, key=lambda row: row.hit_ratio)
        print(
            f"Recommended setting under a {BANDWIDTH_BUDGET_BPS:.0f} bps/peer budget: "
            f"{best.parameter} = {best.value:g} "
            f"(hit ratio {best.hit_ratio:.3f} at {best.background_bps:.1f} bps/peer)"
        )
    else:
        print(
            f"No sweep point fits a {BANDWIDTH_BUDGET_BPS:.0f} bps/peer budget; "
            "increase Tgossip or reduce Lgossip further."
        )


if __name__ == "__main__":
    main()
