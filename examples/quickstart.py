#!/usr/bin/env python3
"""Quickstart: run a small Flower-CDN simulation and print the headline metrics.

This is the fastest way to see the system working end to end: it builds a
laptop-scale deployment (a few hundred peers, two active websites, three
network localities), replays a Zipf query workload against it and prints the
four metrics the paper evaluates — hit ratio, lookup latency, transfer
distance and background gossip traffic.

Run with:  python examples/quickstart.py
"""

from repro.metrics.report import format_table
from repro.scenarios import ScenarioRunner, get_scenario


def main() -> None:
    # The canonical laptop-scale configuration lives in the scenario library:
    # `paper-default` keeps the paper's parameter ratios (Table 1) but
    # finishes in a couple of seconds.  `scaled()` shrinks it further.
    spec = get_scenario("paper-default").scaled(0.67)  # ≈ two simulated hours

    scenario_runner = ScenarioRunner(spec, seed=42)
    scenario_result = scenario_runner.run()
    runner = scenario_runner.experiment
    result = scenario_result.flower.run

    print("Flower-CDN quickstart")
    print("=====================")
    print(f"simulated duration : {result.duration_s / 3600:.1f} h")
    print(f"queries processed  : {result.num_queries}")
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ("hit ratio", f"{result.hit_ratio:.3f}"),
                ("avg lookup latency (ms)", f"{result.average_lookup_latency_ms:.1f}"),
                ("avg transfer distance (ms)", f"{result.average_transfer_distance_ms:.1f}"),
                ("background traffic (bps/peer)", f"{result.background_bps_per_peer:.1f}"),
                ("redirection failures", result.redirection_failures),
            ],
            title="Headline metrics (Section 6 of the paper)",
        )
    )

    # The content overlays that formed during the run.
    system = runner.last_flower_system
    print()
    print(
        format_table(
            ["website", "locality", "content peers", "objects indexed"],
            [
                (stats.website, stats.locality, stats.num_content_peers,
                 stats.unique_objects_indexed)
                for stats in system.active_overlays()
            ],
            title="Content overlays built during the run",
        )
    )


if __name__ == "__main__":
    main()
