#!/usr/bin/env python3
"""Churn resilience: exercise the failure-handling mechanisms of Section 5.

The paper describes how Flower-CDN survives content-peer failures (ageing +
keepalives, Section 5.1), directory failures (replacement by a content peer
under the same engineered identifier, Section 5.2) and locality changes
(Section 5.4), but defers their empirical study.  This example injects all
three kinds of churn into a running deployment and reports how the hit ratio
and lookup latency respond, plus how many directory replacements the system
performed.

Run with:  python examples/churn_resilience.py
"""

from repro.experiments import run_churn_experiment
from repro.scenarios import get_scenario


def main() -> None:
    # Both the workload and the churn rates come from the library's
    # heavy-churn scenario (scaled down a little for a snappier example).
    spec = get_scenario("heavy-churn").scaled(0.7).with_seed(23)
    setup = spec.to_setup()
    churn = spec.churn.to_config()

    print("Injected churn rates (events per hour over the whole system):")
    print(f"  content-peer failures : {churn.content_failures_per_hour:g}")
    print(f"  directory failures    : {churn.directory_failures_per_hour:g}")
    print(f"  locality changes      : {churn.locality_changes_per_hour:g}")
    print()

    result = run_churn_experiment(setup, churn=churn)
    print(result.format())
    print()

    if result.hit_ratio_drop < 0.15:
        print(
            "The gossip-based self-monitoring and the directory replacement protocol "
            f"keep the hit-ratio loss small ({result.hit_ratio_drop:+.3f}), as the paper's "
            "design intends."
        )
    else:
        print(
            f"Hit ratio dropped by {result.hit_ratio_drop:.3f} under this churn level — "
            "try a shorter gossip period (Tgossip) to recover faster."
        )


if __name__ == "__main__":
    main()
