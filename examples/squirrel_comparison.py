#!/usr/bin/env python3
"""Flower-CDN vs Squirrel: the locality-awareness comparison of Sections 6.3/6.4.

Both systems process exactly the same Zipf query trace on the same underlying
topology.  The example prints the three comparisons the paper plots:

* Figure 6 — cumulative hit ratio over time (Squirrel converges faster);
* Figure 7 — lookup latency, average and distribution (Flower-CDN is several
  times faster because only first queries traverse the DHT);
* Figure 8 — transfer distance, average and distribution (Flower-CDN serves
  content from the requester's own locality).

Run with:  python examples/squirrel_comparison.py
"""

from repro.experiments import ExperimentSetup, run_hit_ratio_comparison, run_locality_experiment
from repro.scenarios import get_scenario


def build_setup() -> ExperimentSetup:
    # The head-to-head workload is a library scenario; the experiment modules
    # below extract the per-figure curves from the same setup.
    return get_scenario("squirrel-head-to-head").with_seed(11).to_setup()


def main() -> None:
    setup = build_setup()

    print("Figure 6: hit ratio, Flower-CDN vs Squirrel")
    print("===========================================")
    comparison = run_hit_ratio_comparison(setup)
    print(comparison.format())
    print()

    print("Figures 7 and 8: locality-awareness gains")
    print("=========================================")
    locality = run_locality_experiment(setup)
    print(locality.format_figure7())
    print()
    print(locality.format_figure8())
    print()

    print("Summary of the paper's headline claims on this run:")
    print(
        f"  lookup latency reduction   : {locality.lookup_latency_speedup:.1f}x "
        "(paper reports ~9x on its 24h PeerSim run)"
    )
    print(
        f"  transfer distance reduction: {locality.transfer_distance_reduction:.1f}x "
        "(paper reports ~2x)"
    )
    print(
        f"  final hit ratio gap        : {comparison.final_gap:+.3f} in Squirrel's favour "
        "(paper reports ~0.13 after 24h)"
    )


if __name__ == "__main__":
    main()
