"""Zipf popularity sampling.

Object requests within a single website follow a Zipf-like distribution
(Breslau et al., "Web Caching and Zipf-like Distributions").  The seed
implementation drew ranks by O(log n) CDF bisection; this module provides two
O(1) strategies instead, selected by the ``method`` argument:

* ``"alias"`` (default) — a Walker/Vose alias table: one uniform variate is
  split into a table column and a coin flip.  Fastest and rank-count
  independent, but its u -> rank mapping differs from the historical
  bisection sampler.
* ``"cdf"`` — inverse-CDF sampling accelerated by a guide table (indexed
  search, Chen & Asau).  Produces *bit-identical* draws to the original
  ``bisect_left`` implementation in O(1) expected time; the workload
  generator pins this method because the committed golden digests are
  defined over its exact draw sequence.

Both strategies consume exactly one uniform variate per draw, like the
bisection sampler they replace, so samplers sharing a random stream with
other components do not shift those components' draw sequences.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

#: guide-table buckets per rank; 2x gives short forward scans even in the
#: flat tail of the distribution at negligible memory cost
_GUIDE_FACTOR = 2


class ZipfSampler:
    """Samples ranks in ``[0, population_size)`` with Zipf(alpha) probabilities.

    Rank 0 is the most popular item.  ``alpha = 0.8`` is the commonly cited
    web-workload exponent and the default used by the experiments.

    Args:
        population_size: number of ranks.
        alpha: Zipf exponent (``0`` degenerates to uniform).
        method: ``"alias"`` (Walker alias table, default) or ``"cdf"``
            (guide-table inverse CDF, exactly reproducing the historical
            bisection draw sequence).
    """

    def __init__(self, population_size: int, alpha: float = 0.8, method: str = "alias") -> None:
        if population_size <= 0:
            raise ValueError(f"population_size must be positive, got {population_size}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if method not in ("alias", "cdf"):
            raise ValueError(f"method must be 'alias' or 'cdf', got {method!r}")
        self._population_size = population_size
        self._alpha = alpha
        self._method = method
        weights = [1.0 / ((rank + 1) ** alpha) for rank in range(population_size)]
        total = sum(weights)
        self._probabilities = [weight / total for weight in weights]
        if method == "alias":
            self._prob, self._alias = self._build_alias(self._probabilities)
            self._cdf: List[float] = []
            self._guide: List[int] = []
            self.sample = self._sample_alias  # bind once: no per-draw dispatch
        else:
            self._prob, self._alias = [], []
            self._cdf = self._build_cdf(weights, total)
            self._guide = self._build_guide(self._cdf)
            self.sample = self._sample_cdf

    # -- table construction --------------------------------------------------

    @staticmethod
    def _build_alias(probabilities: Sequence[float]) -> Tuple[List[float], List[int]]:
        """Vose's O(n) alias-table construction.

        ``prob[i]`` is the probability that column ``i`` keeps its own rank;
        otherwise the draw falls through to ``alias[i]``.  Deterministic for a
        given probability vector.
        """
        n = len(probabilities)
        prob = [0.0] * n
        alias = [0] * n
        scaled = [p * n for p in probabilities]
        small = [i for i, s in enumerate(scaled) if s < 1.0]
        large = [i for i, s in enumerate(scaled) if s >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Residuals are 1.0 up to floating-point error.
        for remaining in large:
            prob[remaining] = 1.0
        for remaining in small:
            prob[remaining] = 1.0
        return prob, alias

    @staticmethod
    def _build_cdf(weights: Sequence[float], total: float) -> List[float]:
        # Accumulation order matches the historical implementation exactly so
        # the resulting CDF — and therefore every draw — is bit-identical.
        cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against floating-point shortfall
        return cdf

    @staticmethod
    def _build_guide(cdf: Sequence[float]) -> List[int]:
        """Guide table: ``guide[k]`` = first rank whose CDF reaches ``k/K``."""
        buckets = max(1, len(cdf) * _GUIDE_FACTOR)
        guide: List[int] = []
        rank = 0
        n = len(cdf)
        for k in range(buckets + 1):
            threshold = k / buckets
            while rank < n and cdf[rank] < threshold:
                rank += 1
            guide.append(rank)
        return guide

    # -- accessors -----------------------------------------------------------

    @property
    def population_size(self) -> int:
        return self._population_size

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def method(self) -> str:
        return self._method

    def probability(self, rank: int) -> float:
        """Probability mass of ``rank`` (0-based)."""
        if not 0 <= rank < self._population_size:
            raise IndexError(f"rank {rank} outside [0, {self._population_size})")
        return self._probabilities[rank]

    # -- sampling ------------------------------------------------------------
    # ``sample`` is bound per instance in __init__ to one of the two
    # strategies; both consume exactly one uniform variate per draw.

    def _sample_alias(self, rng: random.Random) -> int:
        """O(1) draw from the Walker alias table."""
        n = self._population_size
        x = rng.random() * n
        column = int(x)
        if column >= n:  # guard against u*n rounding up at the boundary
            column = n - 1
        return column if (x - column) < self._prob[column] else self._alias[column]

    def _sample_cdf(self, rng: random.Random) -> int:
        """O(1) expected inverse-CDF draw, bit-identical to ``bisect_left``."""
        u = rng.random()
        cdf = self._cdf
        guide = self._guide
        buckets = len(guide) - 1
        bucket = int(u * buckets)
        if bucket > buckets:
            bucket = buckets
        rank = guide[bucket]
        # Guard against u*buckets rounding up across a bucket boundary.
        while rank > 0 and cdf[rank - 1] >= u:
            rank -= 1
        while cdf[rank] < u:
            rank += 1
        return rank

    def sample_many(self, rng: random.Random, count: int) -> Sequence[int]:
        """Draw ``count`` ranks; equivalent to ``count`` calls to :meth:`sample`.

        The alias path is batched over locally bound lookups, which is
        measurably faster than repeated :meth:`sample` calls for large
        workloads.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if self._method == "cdf":
            sample = self._sample_cdf
            return [sample(rng) for _ in range(count)]
        n = self._population_size
        prob = self._prob
        alias = self._alias
        rand = rng.random
        ranks: List[int] = []
        append = ranks.append
        for _ in range(count):
            x = rand() * n
            column = int(x)
            if column >= n:
                column = n - 1
            append(column if (x - column) < prob[column] else alias[column])
        return ranks

    def expected_unique_fraction(self, num_draws: int) -> float:
        """Expected fraction of the population touched after ``num_draws`` draws.

        Used by tests and by the experiment harness to sanity-check how fast a
        content overlay can possibly converge to a full replica set.
        """
        if num_draws < 0:
            raise ValueError("num_draws must be non-negative")
        touched = 0.0
        for probability in self._probabilities:
            touched += 1.0 - (1.0 - probability) ** num_draws
        return touched / self._population_size
