"""Zipf popularity sampling.

Object requests within a single website follow a Zipf-like distribution
(Breslau et al., "Web Caching and Zipf-like Distributions").  The sampler
precomputes the cumulative distribution over ranks ``1..n`` with exponent
``alpha`` and draws ranks by inverse-transform sampling, which keeps a draw
O(log n) without requiring numpy.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence


class ZipfSampler:
    """Samples ranks in ``[0, population_size)`` with Zipf(alpha) probabilities.

    Rank 0 is the most popular item.  ``alpha = 0.8`` is the commonly cited
    web-workload exponent and the default used by the experiments.
    """

    def __init__(self, population_size: int, alpha: float = 0.8) -> None:
        if population_size <= 0:
            raise ValueError(f"population_size must be positive, got {population_size}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self._population_size = population_size
        self._alpha = alpha
        self._cdf = self._build_cdf(population_size, alpha)

    @staticmethod
    def _build_cdf(population_size: int, alpha: float) -> List[float]:
        weights = [1.0 / ((rank + 1) ** alpha) for rank in range(population_size)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against floating-point shortfall
        return cdf

    @property
    def population_size(self) -> int:
        return self._population_size

    @property
    def alpha(self) -> float:
        return self._alpha

    def probability(self, rank: int) -> float:
        """Probability mass of ``rank`` (0-based)."""
        if not 0 <= rank < self._population_size:
            raise IndexError(f"rank {rank} outside [0, {self._population_size})")
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - previous

    def sample(self, rng: random.Random) -> int:
        """Draw one rank using the provided random stream."""
        u = rng.random()
        return bisect.bisect_left(self._cdf, u)

    def sample_many(self, rng: random.Random, count: int) -> Sequence[int]:
        return [self.sample(rng) for _ in range(count)]

    def expected_unique_fraction(self, num_draws: int) -> float:
        """Expected fraction of the population touched after ``num_draws`` draws.

        Used by tests and by the experiment harness to sanity-check how fast a
        content overlay can possibly converge to a full replica set.
        """
        if num_draws < 0:
            raise ValueError("num_draws must be non-negative")
        touched = 0.0
        for rank in range(self._population_size):
            p = self.probability(rank)
            touched += 1.0 - (1.0 - p) ** num_draws
        return touched / self._population_size
