"""Website and object catalogue.

A :class:`Website` owns a list of requestable, cacheable objects ("each
website provides 500 objects which are requestable and cacheable", Section
6.1).  Object identifiers are URL-like strings so the rest of the stack can
hash them exactly as the paper does (``hash(url)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

ObjectId = str


@dataclass(frozen=True)
class Website:
    """One website served by the CDN."""

    name: str
    num_objects: int
    object_size_bytes: int = 50_000  # paper: pages of 10-100 KB, size not modelled
    #: lazily materialised object-URL table; building the identifier strings
    #: once beats re-formatting them on every Zipf draw of a long trace
    _ids: tuple = field(default=(), init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("website name must be non-empty")
        if self.num_objects <= 0:
            raise ValueError(f"num_objects must be positive, got {self.num_objects}")

    @property
    def url(self) -> str:
        return f"http://{self.name}"

    def object_id(self, index: int) -> ObjectId:
        """The URL of the ``index``-th object of this website."""
        if not 0 <= index < self.num_objects:
            raise IndexError(f"object index {index} outside [0, {self.num_objects})")
        ids = self._ids
        if not ids:
            url = self.url
            ids = tuple(f"{url}/object/{i}" for i in range(self.num_objects))
            object.__setattr__(self, "_ids", ids)  # frozen dataclass: one-time cache
        return ids[index]

    def objects(self) -> Iterator[ObjectId]:
        for index in range(self.num_objects):
            yield self.object_id(index)

    def owns(self, object_id: ObjectId) -> bool:
        return object_id.startswith(f"{self.url}/object/")


@dataclass
class Catalog:
    """The set ``W`` of websites supported by the CDN."""

    websites: List[Website] = field(default_factory=list)
    _by_name: Dict[str, Website] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        for site in self.websites:
            if site.name in self._by_name:
                raise ValueError(f"duplicate website name {site.name!r}")
            self._by_name[site.name] = site

    @classmethod
    def synthetic(cls, num_websites: int, objects_per_website: int) -> "Catalog":
        """Create the paper's synthetic catalogue (|W| websites, nb-ob objects each)."""
        if num_websites <= 0:
            raise ValueError("num_websites must be positive")
        sites = [
            Website(name=f"site-{index:03d}.example.org", num_objects=objects_per_website)
            for index in range(num_websites)
        ]
        return cls(websites=sites)

    def __len__(self) -> int:
        return len(self.websites)

    def __iter__(self) -> Iterator[Website]:
        return iter(self.websites)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def website(self, name: str) -> Website:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"website {name!r} is not in the catalogue") from None

    def names(self) -> Sequence[str]:
        return tuple(site.name for site in self.websites)

    def website_of_object(self, object_id: ObjectId) -> Website:
        """Resolve an object URL back to its website."""
        for site in self.websites:
            if site.owns(object_id):
                return site
        raise KeyError(f"object {object_id!r} does not belong to any catalogued website")

    def total_objects(self) -> int:
        return sum(site.num_objects for site in self.websites)
