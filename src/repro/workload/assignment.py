"""Client assignment: turning abstract queries into queries from concrete hosts.

The generator decides *what* is requested and *from which locality*; this
module decides *who* asks.  Following Section 6.1, each query originates
either from a brand-new client of the website or from an existing content
peer, chosen from the query's locality; new clients stop joining an overlay
once it reached the maximum size ``Sco``.

Keeping this decision outside the CDN systems guarantees that Flower-CDN and
Squirrel process *exactly the same* stream of (host, website, object) events,
which is what the comparative figures require.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.network.topology import Topology
from repro.sim.rng import RandomStreams
from repro.workload.generator import Query


@dataclass(slots=True, unsafe_hash=True)
class ResolvedQuery:
    """A query bound to a concrete originating host.

    Constructed transiently once per dispatched event on the array fast
    path.  Deliberately *not* frozen — a frozen ``__init__`` routes every
    field through ``object.__setattr__``, a measurable dispatch-phase cost;
    ``unsafe_hash`` keeps value-object hashing.  Treat instances as
    immutable.
    """

    query_id: int
    time: float
    website: str
    object_id: str
    locality: int
    client_host: int
    is_new_client: bool


class ClientAssigner:
    """Tracks per-(website, locality) client populations and assigns originators."""

    __slots__ = (
        "_topology",
        "_streams",
        "_max_clients",
        "_reserved",
        "_clients",
        "_available",
    )

    def __init__(
        self,
        topology: Topology,
        streams: RandomStreams,
        max_clients_per_overlay: int,
        reserved_hosts: Set[int] | None = None,
    ) -> None:
        if max_clients_per_overlay <= 0:
            raise ValueError("max_clients_per_overlay must be positive")
        self._topology = topology
        self._streams = streams
        self._max_clients = max_clients_per_overlay
        self._reserved: Set[int] = set(reserved_hosts or ())
        #: hosts already enrolled as clients of a website, per (website, locality)
        self._clients: Dict[Tuple[str, int], List[int]] = {}
        #: hosts of a locality not yet used as a client of a given website
        self._available: Dict[Tuple[str, int], List[int]] = {}

    # -- bookkeeping -----------------------------------------------------------

    def clients_of(self, website: str, locality: int) -> List[int]:
        return list(self._clients.get((website, locality), ()))

    def num_clients(self, website: str, locality: int) -> int:
        return len(self._clients.get((website, locality), ()))

    def overlay_full(self, website: str, locality: int) -> bool:
        return self.num_clients(website, locality) >= self._max_clients

    def total_clients(self) -> int:
        return sum(len(hosts) for hosts in self._clients.values())

    def reserve_host(self, host_id: int) -> None:
        """Mark a host as unavailable for client assignment (e.g. a directory peer)."""
        self._reserved.add(host_id)

    def _candidates(self, website: str, locality: int) -> List[int]:
        key = (website, locality)
        if key not in self._available:
            members = [
                host
                for host in self._topology.hosts_in_locality(locality)
                if host not in self._reserved
            ]
            self._available[key] = self._streams.shuffle(f"assign:{website}:{locality}", members)
        return self._available[key]

    # -- assignment ----------------------------------------------------------------

    def assign(self, query: Query) -> Optional[ResolvedQuery]:
        """Bind ``query`` to an originating host, or ``None`` if nobody can ask it.

        A new client is used when the query prefers one (or when the overlay
        has no member yet) and the overlay still has room and the locality
        still has unused hosts; otherwise an existing client is drawn
        uniformly.  ``None`` is only returned in the degenerate case of an
        empty locality.
        """
        key = (query.website, query.locality)
        existing = self._clients.get(key, [])
        candidates = self._candidates(query.website, query.locality)

        wants_new = query.prefers_new_client or not existing
        can_add_new = bool(candidates) and len(existing) < self._max_clients

        if wants_new and can_add_new:
            host = candidates.pop()
            self._clients.setdefault(key, []).append(host)
            return ResolvedQuery(
                query_id=query.query_id,
                time=query.time,
                website=query.website,
                object_id=query.object_id,
                locality=query.locality,
                client_host=host,
                is_new_client=True,
            )

        if existing:
            host = self._streams.choice("assign:existing", existing)
            return ResolvedQuery(
                query_id=query.query_id,
                time=query.time,
                website=query.website,
                object_id=query.object_id,
                locality=query.locality,
                client_host=host,
                is_new_client=False,
            )

        return None

    def assign_all(self, queries) -> List[ResolvedQuery]:
        """Assign a whole trace, silently dropping unassignable queries."""
        resolved = []
        for query in queries:
            bound = self.assign(query)
            if bound is not None:
                resolved.append(bound)
        return resolved

    def assign_trace(self, trace):
        """Array-path :meth:`assign_all`: columns in, columns out.

        Consumes a :class:`~repro.workload.trace.QueryTraceArrays` and returns
        a :class:`~repro.workload.trace.ResolvedTraceArrays` whose
        materialised queries — and the post-call state of the assignment
        streams — are bit-identical to running :meth:`assign` per query.
        """
        from repro.workload.trace import ResolvedTraceArrays

        query_id = array("L")
        times = array("d")
        website_index = array("H")
        object_rank = array("I")
        locality = array("H")
        client_host = array("l")
        is_new = array("b")

        websites = trace.websites
        first_query_id = trace.first_query_id
        clients = self._clients
        max_clients = self._max_clients
        existing_choice = self._streams.stream("assign:existing").choice
        for index in range(len(trace)):
            w = trace.website_index[index]
            loc = trace.locality[index]
            website_name = websites[w].name
            key = (website_name, loc)
            existing = clients.get(key, [])
            candidates = self._candidates(website_name, loc)

            wants_new = trace.prefers_new[index] or not existing
            can_add_new = bool(candidates) and len(existing) < max_clients

            if wants_new and can_add_new:
                host = candidates.pop()
                clients.setdefault(key, []).append(host)
                new_client = True
            elif existing:
                host = existing_choice(existing)
                new_client = False
            else:
                continue  # degenerate: empty locality — drop the query

            query_id.append(first_query_id + index)
            times.append(trace.times[index])
            website_index.append(w)
            object_rank.append(trace.object_rank[index])
            locality.append(loc)
            client_host.append(host)
            is_new.append(new_client)

        return ResolvedTraceArrays(
            websites=websites,
            query_id=query_id,
            times=times,
            website_index=website_index,
            object_rank=object_rank,
            locality=locality,
            client_host=client_host,
            is_new=is_new,
        )
