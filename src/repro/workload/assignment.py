"""Client assignment: turning abstract queries into queries from concrete hosts.

The generator decides *what* is requested and *from which locality*; this
module decides *who* asks.  Following Section 6.1, each query originates
either from a brand-new client of the website or from an existing content
peer, chosen from the query's locality; new clients stop joining an overlay
once it reached the maximum size ``Sco``.

Keeping this decision outside the CDN systems guarantees that Flower-CDN and
Squirrel process *exactly the same* stream of (host, website, object) events,
which is what the comparative figures require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.network.topology import Topology
from repro.sim.rng import RandomStreams
from repro.workload.generator import Query


@dataclass(frozen=True, slots=True)
class ResolvedQuery:
    """A query bound to a concrete originating host."""

    query_id: int
    time: float
    website: str
    object_id: str
    locality: int
    client_host: int
    is_new_client: bool


class ClientAssigner:
    """Tracks per-(website, locality) client populations and assigns originators."""

    def __init__(
        self,
        topology: Topology,
        streams: RandomStreams,
        max_clients_per_overlay: int,
        reserved_hosts: Set[int] | None = None,
    ) -> None:
        if max_clients_per_overlay <= 0:
            raise ValueError("max_clients_per_overlay must be positive")
        self._topology = topology
        self._streams = streams
        self._max_clients = max_clients_per_overlay
        self._reserved: Set[int] = set(reserved_hosts or ())
        #: hosts already enrolled as clients of a website, per (website, locality)
        self._clients: Dict[Tuple[str, int], List[int]] = {}
        #: hosts of a locality not yet used as a client of a given website
        self._available: Dict[Tuple[str, int], List[int]] = {}

    # -- bookkeeping -----------------------------------------------------------

    def clients_of(self, website: str, locality: int) -> List[int]:
        return list(self._clients.get((website, locality), ()))

    def num_clients(self, website: str, locality: int) -> int:
        return len(self._clients.get((website, locality), ()))

    def overlay_full(self, website: str, locality: int) -> bool:
        return self.num_clients(website, locality) >= self._max_clients

    def total_clients(self) -> int:
        return sum(len(hosts) for hosts in self._clients.values())

    def reserve_host(self, host_id: int) -> None:
        """Mark a host as unavailable for client assignment (e.g. a directory peer)."""
        self._reserved.add(host_id)

    def _candidates(self, website: str, locality: int) -> List[int]:
        key = (website, locality)
        if key not in self._available:
            members = [
                host
                for host in self._topology.hosts_in_locality(locality)
                if host not in self._reserved
            ]
            self._available[key] = self._streams.shuffle(f"assign:{website}:{locality}", members)
        return self._available[key]

    # -- assignment ----------------------------------------------------------------

    def assign(self, query: Query) -> Optional[ResolvedQuery]:
        """Bind ``query`` to an originating host, or ``None`` if nobody can ask it.

        A new client is used when the query prefers one (or when the overlay
        has no member yet) and the overlay still has room and the locality
        still has unused hosts; otherwise an existing client is drawn
        uniformly.  ``None`` is only returned in the degenerate case of an
        empty locality.
        """
        key = (query.website, query.locality)
        existing = self._clients.get(key, [])
        candidates = self._candidates(query.website, query.locality)

        wants_new = query.prefers_new_client or not existing
        can_add_new = bool(candidates) and len(existing) < self._max_clients

        if wants_new and can_add_new:
            host = candidates.pop()
            self._clients.setdefault(key, []).append(host)
            return ResolvedQuery(
                query_id=query.query_id,
                time=query.time,
                website=query.website,
                object_id=query.object_id,
                locality=query.locality,
                client_host=host,
                is_new_client=True,
            )

        if existing:
            host = self._streams.choice("assign:existing", existing)
            return ResolvedQuery(
                query_id=query.query_id,
                time=query.time,
                website=query.website,
                object_id=query.object_id,
                locality=query.locality,
                client_host=host,
                is_new_client=False,
            )

        return None

    def assign_all(self, queries) -> List[ResolvedQuery]:
        """Assign a whole trace, silently dropping unassignable queries."""
        resolved = []
        for query in queries:
            bound = self.assign(query)
            if bound is not None:
                resolved.append(bound)
        return resolved
