"""Compiled workload phases: the execution-level view of a scenario program.

A scenario *program* (an ordered tuple of declarative
:class:`~repro.scenarios.program.WorkloadPhase` values) compiles down to a
tuple of :class:`PhaseSpan` segments — absolute, contiguous ``[start_s,
end_s)`` intervals carrying the effective workload parameters of that slice
of the run.  The :class:`~repro.workload.generator.QueryGenerator` consumes
spans directly: arrival rates are modulated per span (exact inhomogeneous
Poisson via residual rescaling at the boundaries), and the per-query draws of
a span use that span's Zipf exponent and hotspot rotation.

The compiled representation deliberately lives in the workload layer, below
:mod:`repro.scenarios`: the generator knows nothing about scenario specs,
only about spans, which keeps the declarative vocabulary and the execution
substrate independently testable.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class PhaseSpan:
    """One compiled, absolute segment of a phased workload.

    ``rate_multiplier`` scales the configured aggregate query rate inside the
    span; ``zipf_alpha`` overrides the workload's Zipf exponent (``None``
    inherits it); ``hotspot_rotation`` rotates the active-website window by
    that many positions through the catalogue (applied modulo the catalogue
    size, so a spec stays valid when it is scaled down).
    """

    start_s: float
    end_s: float
    rate_multiplier: float = 1.0
    zipf_alpha: float | None = None
    hotspot_rotation: int = 0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.end_s <= self.start_s:
            raise ValueError("end_s must exceed start_s")
        if self.rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")
        if self.zipf_alpha is not None and self.zipf_alpha < 0:
            raise ValueError("zipf_alpha must be non-negative or None")
        if self.hotspot_rotation < 0:
            raise ValueError("hotspot_rotation must be non-negative")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def is_default(self) -> bool:
        """True when the span does not modulate the base workload at all."""
        return (
            self.rate_multiplier == 1.0
            and self.zipf_alpha is None
            and self.hotspot_rotation == 0
        )


def validate_spans(spans: Sequence[PhaseSpan], duration_s: float) -> Tuple[PhaseSpan, ...]:
    """Check that ``spans`` tile ``[0, duration_s)`` contiguously.

    Returns the spans as a tuple.  An empty sequence is valid and means "one
    implicit default span over the whole run".
    """
    spans = tuple(spans)
    if not spans:
        return spans
    if spans[0].start_s != 0.0:
        raise ValueError("the first phase span must start at 0")
    for previous, current in zip(spans, spans[1:]):
        if current.start_s != previous.end_s:
            raise ValueError(
                f"phase spans must be contiguous: span ending at {previous.end_s} "
                f"is followed by span starting at {current.start_s}"
            )
    if spans[-1].end_s != duration_s:
        raise ValueError(
            f"phase spans must cover the whole run: last span ends at "
            f"{spans[-1].end_s}, run duration is {duration_s}"
        )
    return spans


def spans_are_trivial(spans: Sequence[PhaseSpan]) -> bool:
    """True when ``spans`` describe exactly the unmodulated base workload.

    A trivial program — empty, or default spans only — must take the
    historical single-phase generation path so its random draws (and
    therefore every committed golden) stay byte-identical.
    """
    return all(span.is_default for span in spans)


def segment_counts(times: Sequence[float], ends: Sequence[float]) -> Tuple[int, ...]:
    """How many of the sorted ``times`` fall into each contiguous segment.

    ``ends`` holds the segment end times; segment ``i`` is the half-open
    interval up to ``ends[i]`` (a time equal to a boundary belongs to the
    *next* segment).  Times at or past the final end are counted into the
    last segment (the horizon-crossing draw).
    """
    counts = []
    previous = 0
    for end in ends[:-1]:
        index = bisect_left(times, end, lo=previous)
        counts.append(index - previous)
        previous = index
    counts.append(len(times) - previous)
    return tuple(counts)
