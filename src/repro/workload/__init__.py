"""Synthetic workload generation.

The paper uses a synthetic workload because "available web traces reflect
object accesses while we are interested in website accesses": |W| websites
each publish a set of requestable objects, only a subset of websites is
*active* (receives queries), object popularity within a website follows a
Zipf law (Breslau et al.), queries arrive at a fixed aggregate rate, and each
query originates either from a new client or from an existing content peer of
the targeted website, drawn from a random locality.
"""

from repro.workload.catalog import Catalog, ObjectId, Website
from repro.workload.zipf import ZipfSampler
from repro.workload.generator import Query, QueryGenerator, WorkloadConfig
from repro.workload.trace import QueryTrace, TraceRecord

__all__ = [
    "Catalog",
    "Website",
    "ObjectId",
    "ZipfSampler",
    "Query",
    "QueryGenerator",
    "WorkloadConfig",
    "QueryTrace",
    "TraceRecord",
]
