"""Query workload generation.

Reproduces the paper's workload model (Section 6.1):

* queries arrive at an aggregate rate of ``query_rate`` per second;
* each query targets one of the *active* websites (6 of the 100 catalogued
  websites receive queries);
* the requested object is drawn from the website's objects with a Zipf law;
* the query originates from a random locality; whether the originator is a
  brand-new client or an existing content peer of the website is decided by
  the system driving the simulation (it depends on overlay membership), so
  the generator exposes only a *preference* drawn from ``new_client_bias``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.sim.rng import RandomStreams
from repro.workload.catalog import Catalog, ObjectId, Website
from repro.workload.phases import segment_counts, spans_are_trivial
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the synthetic query workload."""

    num_websites: int = 100
    active_websites: int = 6
    objects_per_website: int = 500
    num_localities: int = 6
    query_rate_per_s: float = 6.0
    zipf_alpha: float = 0.8
    new_client_bias: float = 0.5
    arrival_process: str = "poisson"  # "poisson" or "uniform"
    locality_weights: Sequence[float] = ()

    def __post_init__(self) -> None:
        if self.num_websites <= 0:
            raise ValueError("num_websites must be positive")
        if not 0 < self.active_websites <= self.num_websites:
            raise ValueError("active_websites must be in (0, num_websites]")
        if self.objects_per_website <= 0:
            raise ValueError("objects_per_website must be positive")
        if self.num_localities <= 0:
            raise ValueError("num_localities must be positive")
        if self.query_rate_per_s <= 0:
            raise ValueError("query_rate_per_s must be positive")
        if not 0.0 <= self.new_client_bias <= 1.0:
            raise ValueError("new_client_bias must be in [0, 1]")
        if self.arrival_process not in ("poisson", "uniform"):
            raise ValueError("arrival_process must be 'poisson' or 'uniform'")
        if self.locality_weights and len(self.locality_weights) != self.num_localities:
            raise ValueError("locality_weights must have num_localities entries")


@dataclass(slots=True, unsafe_hash=True)
class Query:
    """One client query for an object of a website.

    Constructed once per generated query.  Deliberately *not* frozen: a
    frozen dataclass's ``__init__`` routes every field through
    ``object.__setattr__``, which is several times slower — measurable at
    paper-scale trace volumes.  ``unsafe_hash`` keeps the value-object
    hashing the frozen variant provided; treat instances as immutable.
    """

    query_id: int
    time: float
    website: str
    object_id: ObjectId
    locality: int
    prefers_new_client: bool

    def __str__(self) -> str:
        return (
            f"Query#{self.query_id}(t={self.time:.3f}s, ws={self.website}, "
            f"obj={self.object_id.rsplit('/', 1)[-1]}, loc={self.locality})"
        )


class QueryGenerator:
    """Generates the stream of :class:`Query` objects driving an experiment."""

    __slots__ = (
        "_config",
        "_streams",
        "_catalog",
        "_active",
        "_samplers",
        "_phase_samplers",
        "_next_id",
        "_arrival_rng",
        "_locality_rng",
        "_website_rng",
        "_zipf_rng",
        "_originator_rng",
    )

    def __init__(
        self,
        config: WorkloadConfig,
        streams: RandomStreams,
        catalog: Optional[Catalog] = None,
    ) -> None:
        self._config = config
        self._streams = streams
        self._catalog = catalog or Catalog.synthetic(
            config.num_websites, config.objects_per_website
        )
        if len(self._catalog) < config.active_websites:
            raise ValueError(
                "catalogue has fewer websites than the requested number of active websites"
            )
        self._active: List[Website] = list(self._catalog.websites[: config.active_websites])
        # The "cdf" strategy reproduces the historical bisection draw
        # sequence bit for bit (in O(1) expected time): the committed golden
        # digests are defined over that exact u -> rank mapping.
        self._samplers: Dict[str, ZipfSampler] = {
            site.name: ZipfSampler(site.num_objects, config.zipf_alpha, method="cdf")
            for site in self._active
        }
        # Samplers for phased programs, keyed by (population, alpha); seeded
        # with the base samplers so a program at the base skew reuses the
        # exact instances (and therefore the exact u -> rank mapping) the
        # single-phase path uses.
        self._phase_samplers: Dict[tuple, ZipfSampler] = {
            (site.num_objects, config.zipf_alpha): self._samplers[site.name]
            for site in self._active
        }
        self._next_id = 0
        # Bind the named streams once: next_query() draws from five streams
        # per query, and the per-call registry lookups dominate generation
        # time for long traces.  The stream objects are the same ones the
        # registry hands out, so draw sequences are unchanged.
        self._arrival_rng = streams.stream("workload:arrival")
        self._locality_rng = streams.stream("workload:locality")
        self._website_rng = streams.stream("workload:website")
        self._zipf_rng = streams.stream("workload:zipf")
        self._originator_rng = streams.stream("workload:originator")

    # -- accessors ----------------------------------------------------------

    @property
    def config(self) -> WorkloadConfig:
        return self._config

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def active_websites(self) -> Sequence[Website]:
        return tuple(self._active)

    @property
    def queries_generated(self) -> int:
        return self._next_id

    # -- sampling -----------------------------------------------------------

    def _next_interarrival(self) -> float:
        if self._config.arrival_process == "poisson":
            return self._arrival_rng.expovariate(self._config.query_rate_per_s)
        return 1.0 / self._config.query_rate_per_s

    def _pick_locality(self) -> int:
        weights = self._config.locality_weights
        if not weights:
            return self._locality_rng.randint(0, self._config.num_localities - 1)
        u = self._locality_rng.random()
        total = sum(weights)
        acc = 0.0
        for index, weight in enumerate(weights):
            acc += weight / total
            if u <= acc:
                return index
        return self._config.num_localities - 1

    def _pick_website(self) -> Website:
        return self._website_rng.choice(self._active)

    def _pick_object(self, website: Website) -> ObjectId:
        rank = self._samplers[website.name].sample(self._zipf_rng)
        return website.object_id(rank)

    def next_query(self, current_time: float) -> Query:
        """Generate the next query; its ``time`` is ``current_time`` + inter-arrival."""
        website = self._pick_website()
        query = Query(
            query_id=self._next_id,
            time=current_time + self._next_interarrival(),
            website=website.name,
            object_id=self._pick_object(website),
            locality=self._pick_locality(),
            prefers_new_client=(
                self._originator_rng.random() < self._config.new_client_bias
            ),
        )
        self._next_id += 1
        return query

    def generate(self, duration_s: float, start_time: float = 0.0) -> Iterator[Query]:
        """Yield every query arriving in ``[start_time, start_time + duration_s)``."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        clock = start_time
        end = start_time + duration_s
        while True:
            query = self.next_query(clock)
            if query.time >= end:
                return
            clock = query.time
            yield query

    def generate_trace(self, duration_s: float, start_time: float = 0.0, phases=None):
        """Vectorised :meth:`generate`: the whole workload as array columns.

        Produces a :class:`~repro.workload.trace.QueryTraceArrays` whose
        materialised queries — and the post-call state of every random
        stream — are **bit-identical** to iterating :meth:`generate`.  The
        five per-query draws are batched per stream instead of interleaved
        per query, which is legal because the named streams are independent
        ``random.Random`` instances: batching reorders draws *across* streams
        but never within one.  Like :meth:`generate`, the draw that first
        crosses the horizon is consumed (one extra draw per stream).

        ``phases`` optionally supplies compiled
        :class:`~repro.workload.phases.PhaseSpan` segments (a scenario
        *program*): arrival rates are modulated per span and each query's
        website/object draws use the span containing its arrival time.  A
        trivial program (empty, or default spans only) takes this exact
        single-phase path, so its draws stay byte-identical.
        """
        from repro.workload.trace import QueryTraceArrays

        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if phases and not spans_are_trivial(phases):
            return self._generate_program_trace(tuple(phases), duration_s, start_time)
        cfg = self._config
        end = start_time + duration_s
        first_query_id = self._next_id

        # 1. Arrival stream: cumulative inter-arrival sums up to the horizon.
        times = array("d")
        clock = start_time
        if cfg.arrival_process == "poisson":
            expovariate = self._arrival_rng.expovariate
            rate = cfg.query_rate_per_s
            while True:
                clock += expovariate(rate)
                if clock >= end:
                    break
                times.append(clock)
        else:
            step = 1.0 / cfg.query_rate_per_s
            while True:
                clock += step
                if clock >= end:
                    break
                times.append(clock)
        count = len(times) + 1  # the crossing query consumed draws too

        # 2. Website stream: random.choice over indices consumes the same
        #    underlying _randbelow draw as choice over the Website list.
        website_choice = self._website_rng.choice
        indices = range(len(self._active))
        website_index = array("H", (website_choice(indices) for _ in range(count)))

        # 3. Zipf stream: one rank per query.  All synthetic websites share
        #    one population size, so a single sampler reproduces the per-site
        #    draw mapping; unequal catalogues fall back to per-query samplers.
        populations = {site.num_objects for site in self._active}
        if len(populations) == 1:
            sampler = self._samplers[self._active[0].name]
            object_rank = array("I", sampler.sample_many(self._zipf_rng, count))
        else:
            zipf_rng = self._zipf_rng
            object_rank = array(
                "I",
                (
                    self._samplers[self._active[w].name].sample(zipf_rng)
                    for w in website_index
                ),
            )

        # 4. Locality stream.
        if cfg.locality_weights:
            locality = array("H", (self._pick_locality() for _ in range(count)))
        else:
            randint = self._locality_rng.randint
            top = cfg.num_localities - 1
            locality = array("H", (randint(0, top) for _ in range(count)))

        # 5. Originator stream.
        originator = self._originator_rng.random
        bias = cfg.new_client_bias
        prefers_new = array("b", (originator() < bias for _ in range(count)))

        self._next_id += count
        n = len(times)
        return QueryTraceArrays(
            websites=tuple(self._active),
            first_query_id=first_query_id,
            times=times,
            website_index=website_index[:n],
            object_rank=object_rank[:n],
            locality=locality[:n],
            prefers_new=prefers_new[:n],
        )

    # -- phased programs ----------------------------------------------------

    def _sampler_for(self, population: int, alpha: float) -> ZipfSampler:
        """The (cached) cdf-method sampler for one ``(population, alpha)``."""
        key = (population, alpha)
        sampler = self._phase_samplers.get(key)
        if sampler is None:
            sampler = ZipfSampler(population, alpha, method="cdf")
            self._phase_samplers[key] = sampler
        return sampler

    def _phase_window(self, rotation: int) -> List[Website]:
        """The active-website window rotated ``rotation`` catalogue positions.

        Rotation is applied modulo the catalogue size, so a program written
        for the full catalogue stays valid when the spec is scaled down.
        """
        sites = self._catalog.websites
        if rotation % len(sites) == 0:
            return list(self._active)
        count = len(self._active)
        return [sites[(rotation + i) % len(sites)] for i in range(count)]

    def _program_arrivals(self, spans, duration_s: float, start_time: float):
        """Arrival times under per-span rate modulation (one shared stream).

        Inside a span, inter-arrivals are exponential (or uniform) at
        ``rate * span.rate_multiplier``.  A draw that crosses into a span
        with a *different* multiplier has its residual rescaled by the rate
        ratio — the exact inhomogeneous-Poisson construction, by
        memorylessness.  When consecutive spans share a multiplier the draw
        is passed through untouched, so homogeneous programs reproduce the
        single-phase arrival sequence bit for bit.
        """
        cfg = self._config
        rate = cfg.query_rate_per_s
        poisson = cfg.arrival_process == "poisson"
        expovariate = self._arrival_rng.expovariate
        end = start_time + duration_s
        times = array("d")
        index = 0
        current = spans[0]
        boundary = start_time + current.end_s
        clock = start_time
        while True:
            if poisson:
                t = clock + expovariate(rate * current.rate_multiplier)
            else:
                t = clock + 1.0 / (rate * current.rate_multiplier)
            while t >= boundary and index + 1 < len(spans):
                nxt = spans[index + 1]
                if nxt.rate_multiplier != current.rate_multiplier:
                    t = boundary + (t - boundary) * (
                        current.rate_multiplier / nxt.rate_multiplier
                    )
                index += 1
                current = nxt
                boundary = start_time + current.end_s
            if t >= end:
                break
            times.append(t)
            clock = t
        return times

    def _generate_program_trace(self, spans, duration_s: float, start_time: float):
        """The phased-program counterpart of :meth:`generate_trace`.

        Arrivals are generated in one pass across the spans; the remaining
        four per-query draws are batched per span (each span's queries form a
        contiguous index range of the sorted arrival sequence), using the
        span's Zipf exponent and hotspot rotation.  With homogeneous spans
        the per-span batches concatenate to exactly the full-trace batches of
        the single-phase path, so the draw sequences — and the post-call
        stream states — are byte-identical to an equivalent un-phased run.
        """
        from repro.workload.trace import QueryTraceArrays

        cfg = self._config
        first_query_id = self._next_id

        # 1. Arrival stream.
        times = self._program_arrivals(spans, duration_s, start_time)
        counts = list(
            segment_counts(times, [start_time + span.end_s for span in spans])
        )
        counts[-1] += 1  # the horizon-crossing draw belongs to the last span
        count = len(times) + 1

        # 2. Website stream: per-span windows mapped into one shared tuple of
        #    every website the program references, kept in catalogue order.
        windows = [self._phase_window(span.hotspot_rotation) for span in spans]
        catalog_position = {site.name: i for i, site in enumerate(self._catalog.websites)}
        used = sorted(
            {catalog_position[site.name] for window in windows for site in window}
        )
        trace_websites = tuple(self._catalog.websites[i] for i in used)
        trace_position = {self._catalog.websites[i].name: j for j, i in enumerate(used)}

        website_choice = self._website_rng.choice
        local_range = range(len(self._active))
        website_index = array("H")
        for window, seg_count in zip(windows, counts):
            window_positions = [trace_position[site.name] for site in window]
            website_index.extend(
                window_positions[website_choice(local_range)] for _ in range(seg_count)
            )

        # 3. Zipf stream: per-span exponent; equal populations batch through
        #    one sampler, unequal catalogues fall back to per-query sampling.
        zipf_rng = self._zipf_rng
        object_rank = array("I")
        cursor = 0
        for span, window, seg_count in zip(spans, windows, counts):
            alpha = cfg.zipf_alpha if span.zipf_alpha is None else span.zipf_alpha
            populations = {site.num_objects for site in window}
            if len(populations) == 1:
                sampler = self._sampler_for(populations.pop(), alpha)
                object_rank.extend(sampler.sample_many(zipf_rng, seg_count))
            else:
                segment_sites = [
                    trace_websites[website_index[cursor + offset]]
                    for offset in range(seg_count)
                ]
                object_rank.extend(
                    self._sampler_for(site.num_objects, alpha).sample(zipf_rng)
                    for site in segment_sites
                )
            cursor += seg_count

        # 4. Locality stream (phase-independent: one full batch, as in the
        #    single-phase path).
        if cfg.locality_weights:
            locality = array("H", (self._pick_locality() for _ in range(count)))
        else:
            randint = self._locality_rng.randint
            top = cfg.num_localities - 1
            locality = array("H", (randint(0, top) for _ in range(count)))

        # 5. Originator stream.
        originator = self._originator_rng.random
        bias = cfg.new_client_bias
        prefers_new = array("b", (originator() < bias for _ in range(count)))

        self._next_id += count
        n = len(times)
        return QueryTraceArrays(
            websites=trace_websites,
            first_query_id=first_query_id,
            times=times,
            website_index=website_index[:n],
            object_rank=object_rank[:n],
            locality=locality[:n],
            prefers_new=prefers_new[:n],
        )

    def generate_batch(self, count: int, start_time: float = 0.0) -> List[Query]:
        """Generate exactly ``count`` queries (used by benchmarks with fixed work)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        queries: List[Query] = []
        clock = start_time
        for _ in range(count):
            query = self.next_query(clock)
            clock = query.time
            queries.append(query)
        return queries
