"""Query-trace recording and replay.

Experiments that compare two systems (Flower-CDN vs Squirrel, Figures 6-8)
must feed *exactly the same* query stream to both.  A :class:`QueryTrace`
materialises a generated workload so it can be replayed, saved to disk as
JSON lines and reloaded — useful both for apples-to-apples comparisons and
for regression-testing experiment results.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence

from repro.workload.generator import Query, QueryGenerator


@dataclass(frozen=True)
class TraceRecord:
    """A serialisable snapshot of one query."""

    query_id: int
    time: float
    website: str
    object_id: str
    locality: int
    prefers_new_client: bool

    @classmethod
    def from_query(cls, query: Query) -> "TraceRecord":
        return cls(
            query_id=query.query_id,
            time=query.time,
            website=query.website,
            object_id=query.object_id,
            locality=query.locality,
            prefers_new_client=query.prefers_new_client,
        )

    def to_query(self) -> Query:
        return Query(
            query_id=self.query_id,
            time=self.time,
            website=self.website,
            object_id=self.object_id,
            locality=self.locality,
            prefers_new_client=self.prefers_new_client,
        )


class QueryTrace:
    """An ordered, replayable sequence of queries."""

    def __init__(self, records: Iterable[TraceRecord] = ()) -> None:
        self._records: List[TraceRecord] = sorted(records, key=lambda r: (r.time, r.query_id))

    # -- construction -------------------------------------------------------

    @classmethod
    def record(cls, generator: QueryGenerator, duration_s: float) -> "QueryTrace":
        """Materialise ``duration_s`` seconds of workload from ``generator``."""
        return cls(TraceRecord.from_query(q) for q in generator.generate(duration_s))

    @classmethod
    def record_count(cls, generator: QueryGenerator, count: int) -> "QueryTrace":
        """Materialise exactly ``count`` queries from ``generator``."""
        return cls(TraceRecord.from_query(q) for q in generator.generate_batch(count))

    @classmethod
    def from_queries(cls, queries: Iterable[Query]) -> "QueryTrace":
        return cls(TraceRecord.from_query(q) for q in queries)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Query]:
        return (record.to_query() for record in self._records)

    def __getitem__(self, index: int) -> Query:
        return self._records[index].to_query()

    def records(self) -> Sequence[TraceRecord]:
        return tuple(self._records)

    @property
    def duration_s(self) -> float:
        if not self._records:
            return 0.0
        return self._records[-1].time - self._records[0].time

    def websites(self) -> Sequence[str]:
        return tuple(sorted({record.website for record in self._records}))

    def localities(self) -> Sequence[int]:
        return tuple(sorted({record.locality for record in self._records}))

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON lines."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(asdict(record)) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "QueryTrace":
        """Load a trace previously written by :meth:`save`."""
        source = Path(path)
        records: List[TraceRecord] = []
        with source.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                records.append(TraceRecord(**json.loads(line)))
        return cls(records)
