"""Query-trace recording and replay.

Experiments that compare two systems (Flower-CDN vs Squirrel, Figures 6-8)
must feed *exactly the same* query stream to both.  A :class:`QueryTrace`
materialises a generated workload so it can be replayed, saved to disk as
JSON lines and reloaded — useful both for apples-to-apples comparisons and
for regression-testing experiment results.

For paper-scale runs the object representations above are too heavy: half a
million :class:`Query`/:class:`ResolvedQuery` instances cost hundreds of
megabytes.  :class:`QueryTraceArrays` and :class:`ResolvedTraceArrays` hold
the same information as parallel ``array`` columns (a few bytes per query)
and materialise individual query objects only on demand — one transient
object per dispatched event instead of a resident list.  They are produced
by :meth:`repro.workload.generator.QueryGenerator.generate_trace` and
:meth:`repro.workload.assignment.ClientAssigner.assign_trace`, whose draw
sequences are bit-identical to the object-path equivalents.
"""

from __future__ import annotations

import json
from array import array
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

from repro.workload.catalog import Website
from repro.workload.generator import Query, QueryGenerator


@dataclass(frozen=True)
class TraceRecord:
    """A serialisable snapshot of one query."""

    query_id: int
    time: float
    website: str
    object_id: str
    locality: int
    prefers_new_client: bool

    @classmethod
    def from_query(cls, query: Query) -> "TraceRecord":
        return cls(
            query_id=query.query_id,
            time=query.time,
            website=query.website,
            object_id=query.object_id,
            locality=query.locality,
            prefers_new_client=query.prefers_new_client,
        )

    def to_query(self) -> Query:
        return Query(
            query_id=self.query_id,
            time=self.time,
            website=self.website,
            object_id=self.object_id,
            locality=self.locality,
            prefers_new_client=self.prefers_new_client,
        )


class QueryTrace:
    """An ordered, replayable sequence of queries."""

    __slots__ = ("_records",)

    def __init__(self, records: Iterable[TraceRecord] = ()) -> None:
        self._records: List[TraceRecord] = sorted(records, key=lambda r: (r.time, r.query_id))

    # -- construction -------------------------------------------------------

    @classmethod
    def record(cls, generator: QueryGenerator, duration_s: float) -> "QueryTrace":
        """Materialise ``duration_s`` seconds of workload from ``generator``."""
        return cls(TraceRecord.from_query(q) for q in generator.generate(duration_s))

    @classmethod
    def record_count(cls, generator: QueryGenerator, count: int) -> "QueryTrace":
        """Materialise exactly ``count`` queries from ``generator``."""
        return cls(TraceRecord.from_query(q) for q in generator.generate_batch(count))

    @classmethod
    def from_queries(cls, queries: Iterable[Query]) -> "QueryTrace":
        return cls(TraceRecord.from_query(q) for q in queries)

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Query]:
        return (record.to_query() for record in self._records)

    def __getitem__(self, index: int) -> Query:
        return self._records[index].to_query()

    def records(self) -> Sequence[TraceRecord]:
        return tuple(self._records)

    @property
    def duration_s(self) -> float:
        if not self._records:
            return 0.0
        return self._records[-1].time - self._records[0].time

    def websites(self) -> Sequence[str]:
        return tuple(sorted({record.website for record in self._records}))

    def localities(self) -> Sequence[int]:
        return tuple(sorted({record.locality for record in self._records}))

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON lines."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(asdict(record)) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "QueryTrace":
        """Load a trace previously written by :meth:`save`."""
        source = Path(path)
        records: List[TraceRecord] = []
        with source.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                records.append(TraceRecord(**json.loads(line)))
        return cls(records)


# -- array-backed traces (paper-scale fast path) -----------------------------


class QueryTraceArrays:
    """A generated workload held as parallel array columns.

    Column-for-column equivalent to the :class:`Query` stream produced by
    :meth:`QueryGenerator.generate` — ``query(i)`` materialises the identical
    object — but ~20 bytes per query instead of several hundred.
    """

    __slots__ = (
        "websites",
        "first_query_id",
        "times",
        "website_index",
        "object_rank",
        "locality",
        "prefers_new",
    )

    def __init__(
        self,
        websites: Tuple[Website, ...],
        first_query_id: int,
        times: array,
        website_index: array,
        object_rank: array,
        locality: array,
        prefers_new: array,
    ) -> None:
        self.websites = websites
        self.first_query_id = first_query_id
        self.times = times
        self.website_index = website_index
        self.object_rank = object_rank
        self.locality = locality
        self.prefers_new = prefers_new

    def __len__(self) -> int:
        return len(self.times)

    @property
    def nbytes(self) -> int:
        """Bytes held by the columns (diagnostic)."""
        return sum(
            column.itemsize * len(column)
            for column in (
                self.times,
                self.website_index,
                self.object_rank,
                self.locality,
                self.prefers_new,
            )
        )

    def query(self, index: int) -> Query:
        """Materialise the ``index``-th query (identical to the object path)."""
        website = self.websites[self.website_index[index]]
        return Query(
            query_id=self.first_query_id + index,
            time=self.times[index],
            website=website.name,
            object_id=website.object_id(self.object_rank[index]),
            locality=self.locality[index],
            prefers_new_client=bool(self.prefers_new[index]),
        )

    def iter_queries(self) -> Iterator[Query]:
        for index in range(len(self)):
            yield self.query(index)


class ResolvedTraceArrays:
    """A client-assigned workload held as parallel array columns.

    The array counterpart of a ``List[ResolvedQuery]``; built by
    :meth:`repro.workload.assignment.ClientAssigner.assign_trace`.
    """

    __slots__ = (
        "websites",
        "query_id",
        "times",
        "website_index",
        "object_rank",
        "locality",
        "client_host",
        "is_new",
    )

    def __init__(
        self,
        websites: Tuple[Website, ...],
        query_id: array,
        times: array,
        website_index: array,
        object_rank: array,
        locality: array,
        client_host: array,
        is_new: array,
    ) -> None:
        self.websites = websites
        self.query_id = query_id
        self.times = times
        self.website_index = website_index
        self.object_rank = object_rank
        self.locality = locality
        self.client_host = client_host
        self.is_new = is_new

    def __len__(self) -> int:
        return len(self.times)

    @property
    def nbytes(self) -> int:
        """Bytes held by the columns (diagnostic)."""
        return sum(
            column.itemsize * len(column)
            for column in (
                self.query_id,
                self.times,
                self.website_index,
                self.object_rank,
                self.locality,
                self.client_host,
                self.is_new,
            )
        )

    def resolved_query(self, index: int):
        """Materialise the ``index``-th resolved query on demand."""
        from repro.workload.assignment import ResolvedQuery

        website = self.websites[self.website_index[index]]
        return ResolvedQuery(
            query_id=self.query_id[index],
            time=self.times[index],
            website=website.name,
            object_id=website.object_id(self.object_rank[index]),
            locality=self.locality[index],
            client_host=self.client_host[index],
            is_new_client=bool(self.is_new[index]),
        )

    def iter_queries(self) -> Iterator:
        for index in range(len(self)):
            yield self.resolved_query(index)

    def dispatcher(self, handle: Callable) -> Callable[[], None]:
        """A zero-argument callback for :meth:`Simulator.schedule_trace`.

        Each invocation materialises the next resolved query (in trace order)
        and passes it to ``handle`` — one transient object per event, no
        resident per-query closures or partials.
        """
        cursor = 0
        websites = self.websites
        query_ids = self.query_id
        times = self.times
        website_index = self.website_index
        object_ranks = self.object_rank
        localities = self.locality
        client_hosts = self.client_host
        is_new = self.is_new
        from repro.workload.assignment import ResolvedQuery

        def fire() -> None:
            nonlocal cursor
            index = cursor
            cursor = index + 1
            website = websites[website_index[index]]
            handle(
                ResolvedQuery(
                    query_id=query_ids[index],
                    time=times[index],
                    website=website.name,
                    object_id=website.object_id(object_ranks[index]),
                    locality=localities[index],
                    client_host=client_hosts[index],
                    is_new_client=bool(is_new[index]),
                )
            )

        return fire
