"""The discrete-event simulator.

The :class:`Simulator` owns the virtual clock, the event queue and the random
streams.  Components schedule callbacks either at absolute times
(:meth:`Simulator.at`) or after a delay (:meth:`Simulator.after`), and the
main loop pops events in time order until a stop condition is reached.

The engine deliberately mirrors the PeerSim event-driven model used by the
paper: there is no bandwidth or CPU contention model, only per-message
latencies supplied by the network layer.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.sim.calendar import CalendarEventQueue
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams

#: queue backends selectable per run
QUEUE_BACKENDS = ("heap", "calendar")
#: events scheduled per trace-feeder chunk (see Simulator.schedule_trace)
TRACE_CHUNK_SIZE = 1 << 14


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests or a corrupted simulation state."""


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: master seed for all random streams.
        end_time: optional absolute time after which :meth:`run` stops even if
            events remain; events scheduled past ``end_time`` are not fired.
        queue_backend: ``"heap"`` (tuple-heap queue, the default — best for
            sparse or irregular schedules) or ``"calendar"`` (bucketed
            calendar queue — best for dense, near-uniform schedules such as
            paper-scale trace replay).  Both produce byte-identical runs; see
            ``docs/performance.md`` for the selection heuristic.
    """

    __slots__ = (
        "_queue",
        "_queue_backend",
        "_now",
        "_end_time",
        "_running",
        "_stopped",
        "_events_fired",
        "streams",
    )

    def __init__(
        self,
        seed: int = 42,
        end_time: Optional[float] = None,
        queue_backend: str = "heap",
    ) -> None:
        if queue_backend not in QUEUE_BACKENDS:
            raise SimulationError(
                f"unknown queue backend {queue_backend!r}; expected one of {QUEUE_BACKENDS}"
            )
        self._queue = EventQueue() if queue_backend == "heap" else CalendarEventQueue()
        self._queue_backend = queue_backend
        self._now = 0.0
        self._end_time = end_time
        self._running = False
        self._stopped = False
        self._events_fired = 0
        self.streams = RandomStreams(seed)

    @property
    def queue_backend(self) -> str:
        return self._queue_backend

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def end_time(self) -> Optional[float]:
        return self._end_time

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (diagnostic)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # -- scheduling --------------------------------------------------------

    def at(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, clock is already at {self._now:.6f}"
            )
        return self._queue.push(time, callback, label=label)

    def after(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self._now + delay, callback, label=label)

    def schedule_batch(
        self,
        items: Iterable[Tuple[float, Callable[[], Any]]],
        label: str = "",
    ) -> List[Event]:
        """Schedule many ``(time, callback)`` pairs in one bulk operation.

        Semantically identical to calling :meth:`at` per pair, but the queue
        is re-heapified once, which is substantially cheaper for large traces.
        """
        now = self._now
        pairs = []
        for time, callback in items:
            if time < now:
                raise SimulationError(
                    f"cannot schedule event at {time:.6f}, clock is already at {now:.6f}"
                )
            pairs.append((time, callback))
        return self._queue.extend(pairs, label=label)

    def schedule_trace(
        self,
        times: Iterable[float],
        callback: Callable[[], Any],
        label: str = "trace",
        chunk_size: int = TRACE_CHUNK_SIZE,
    ) -> None:
        """Schedule a long, time-ordered series of calls to one ``callback``.

        ``times`` must be non-decreasing (a pre-sorted trace).  The series is
        fed to the queue in chunks: each chunk is bulk-scheduled with pooled
        fire-and-forget handles, and a feeder event at the chunk's last
        timestamp pulls the next chunk.  Peak live Event handles for the trace
        therefore stay bounded by ``chunk_size`` (plus the pool), independent
        of trace length — the memory-lean counterpart of :meth:`schedule_batch`
        for workloads where no per-event handle is ever needed.

        ``callback`` is invoked once per timestamp with no arguments; callers
        that need per-event payloads close over their own cursor (the events
        fire in exactly the order of ``times``).
        """
        if chunk_size <= 0:
            raise SimulationError(f"chunk_size must be positive, got {chunk_size}")
        iterator = iter(times)
        queue = self._queue

        def feed() -> None:
            batch = list(islice(iterator, chunk_size))
            if not batch:
                return
            if batch[0] < self._now:
                raise SimulationError(
                    f"trace time {batch[0]:.6f} precedes the clock ({self._now:.6f})"
                )
            queue.extend_transient(batch, callback, label=label)
            if len(batch) == chunk_size:
                # The feeder runs after every event of its own chunk (same
                # timestamp, later sequence number), so the next chunk is
                # scheduled before any later event fires.
                queue.push(batch[-1], feed, label=label + ":feeder")

        feed()

    def cancel(self, event: Event) -> None:
        self._queue.cancel(event)

    def _reschedule(self, event: Event, time: float) -> Event:
        """Re-arm a just-fired event handle (fast path for ``call_every``).

        Skips the past-scheduling validation of :meth:`at` — callers guarantee
        ``time >= now`` — and reuses the popped handle instead of allocating.
        """
        return self._queue.reschedule(event, time)

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when nothing remains.

        An event scheduled past ``end_time`` is *peeked*, never consumed: the
        clock advances to the horizon and the event stays in the queue (it
        would otherwise be silently discarded while remaining counted as
        pending nowhere).
        """
        next_time = self._queue.peek_time()
        if next_time is None:
            return False
        if self._end_time is not None and next_time > self._end_time:
            # Past the horizon: advance the clock to the horizon and stop,
            # leaving the event in place.
            self._now = self._end_time
            return False
        event = self._queue.pop()
        if event.time < self._now:
            raise SimulationError("event queue returned an event in the past")
        self._now = event.time
        self._events_fired += 1
        event.callback()
        if event.poolable:
            self._queue.recycle(event)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or :meth:`stop` is called.

        Returns the simulation time at which the run ended.
        """
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"cannot run until {until:.6f}, clock is already at {self._now:.6f}"
                )
            horizon = until if self._end_time is None else min(until, self._end_time)
        else:
            horizon = self._end_time

        self._running = True
        self._stopped = False
        # The dispatch loop is the single hottest loop of the simulator: bind
        # the queue method once and skip the per-event safety checks `step()`
        # performs for external callers (the heap already guarantees time
        # order, and pop_before has filtered the horizon).
        queue = self._queue
        pop_before = queue.pop_before
        recycle = queue.recycle
        try:
            while not self._stopped:
                event = pop_before(horizon)
                if event is None:
                    if queue:
                        # Next event lies beyond the horizon.
                        self._now = horizon
                    break
                self._now = event.time
                # Updated per event (not batched into a local) so callbacks
                # reading `events_fired` mid-run observe the live count.
                self._events_fired += 1
                event.callback()
                if event.poolable:
                    recycle(event)
        finally:
            self._running = False
        if horizon is not None and self._now < horizon and not self._stopped and not self._queue:
            # Queue drained before the horizon: advance the clock so callers
            # observing `now` see the full requested duration.
            self._now = horizon
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # -- helpers -----------------------------------------------------------

    def call_every(
        self,
        period: float,
        callback: Callable[[], Any],
        start: Optional[float] = None,
        label: str = "",
    ) -> "PeriodicHandle":
        """Schedule ``callback`` every ``period`` seconds starting at ``start``.

        Returns a handle whose :meth:`PeriodicHandle.cancel` stops the series.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        handle = PeriodicHandle(self, period, callback, label)
        first = self._now + period if start is None else start
        handle.schedule(first)
        return handle


class PeriodicHandle:
    """Handle for a repeating callback created by :meth:`Simulator.call_every`."""

    __slots__ = ("_sim", "_period", "_callback", "_label", "_event", "_cancelled", "fired")

    def __init__(
        self, sim: Simulator, period: float, callback: Callable[[], Any], label: str = ""
    ) -> None:
        self._sim = sim
        self._period = period
        self._callback = callback
        self._label = label
        self._event: Optional[Event] = None
        self._cancelled = False
        self.fired = 0

    @property
    def period(self) -> float:
        return self._period

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def schedule(self, time: float) -> None:
        if self._cancelled:
            return
        self._event = self._sim.at(time, self._fire, label=self._label)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fired += 1
        self._callback()
        if not self._cancelled:
            # Fast path: the event that invoked us was just popped, so its
            # handle is free to be re-armed in place for the next period.
            event = self._event
            if event is not None and not event.cancelled:
                self._event = self._sim._reschedule(event, self._sim.now + self._period)
            else:
                self.schedule(self._sim.now + self._period)

    def cancel(self) -> None:
        self._cancelled = True
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None
