"""The discrete-event simulator.

The :class:`Simulator` owns the virtual clock, the event queue and the random
streams.  Components schedule callbacks either at absolute times
(:meth:`Simulator.at`) or after a delay (:meth:`Simulator.after`), and the
main loop pops events in time order until a stop condition is reached.

The engine deliberately mirrors the PeerSim event-driven model used by the
paper: there is no bandwidth or CPU contention model, only per-message
latencies supplied by the network layer.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests or a corrupted simulation state."""


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: master seed for all random streams.
        end_time: optional absolute time after which :meth:`run` stops even if
            events remain; events scheduled past ``end_time`` are not fired.
    """

    def __init__(self, seed: int = 42, end_time: Optional[float] = None) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._end_time = end_time
        self._running = False
        self._stopped = False
        self._events_fired = 0
        self.streams = RandomStreams(seed)

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def end_time(self) -> Optional[float]:
        return self._end_time

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (diagnostic)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # -- scheduling --------------------------------------------------------

    def at(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, clock is already at {self._now:.6f}"
            )
        return self._queue.push(time, callback, label=label)

    def after(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self._now + delay, callback, label=label)

    def cancel(self, event: Event) -> None:
        self._queue.cancel(event)

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when nothing remains."""
        event = self._queue.pop()
        if event is None:
            return False
        if self._end_time is not None and event.time > self._end_time:
            # Past the horizon: advance the clock to the horizon and stop.
            self._now = self._end_time
            return False
        if event.time < self._now:
            raise SimulationError("event queue returned an event in the past")
        self._now = event.time
        self._events_fired += 1
        event.callback()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or :meth:`stop` is called.

        Returns the simulation time at which the run ended.
        """
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"cannot run until {until:.6f}, clock is already at {self._now:.6f}"
                )
            horizon = until if self._end_time is None else min(until, self._end_time)
        else:
            horizon = self._end_time

        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if horizon is not None and next_time > horizon:
                    self._now = horizon
                    break
                if not self.step():
                    break
        finally:
            self._running = False
        if horizon is not None and self._now < horizon and not self._stopped and not self._queue:
            # Queue drained before the horizon: advance the clock so callers
            # observing `now` see the full requested duration.
            self._now = horizon
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # -- helpers -----------------------------------------------------------

    def call_every(
        self,
        period: float,
        callback: Callable[[], Any],
        start: Optional[float] = None,
        label: str = "",
    ) -> "PeriodicHandle":
        """Schedule ``callback`` every ``period`` seconds starting at ``start``.

        Returns a handle whose :meth:`PeriodicHandle.cancel` stops the series.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        handle = PeriodicHandle(self, period, callback, label)
        first = self._now + period if start is None else start
        handle.schedule(first)
        return handle


class PeriodicHandle:
    """Handle for a repeating callback created by :meth:`Simulator.call_every`."""

    def __init__(
        self, sim: Simulator, period: float, callback: Callable[[], Any], label: str = ""
    ) -> None:
        self._sim = sim
        self._period = period
        self._callback = callback
        self._label = label
        self._event: Optional[Event] = None
        self._cancelled = False
        self.fired = 0

    @property
    def period(self) -> float:
        return self._period

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def schedule(self, time: float) -> None:
        if self._cancelled:
            return
        self._event = self._sim.at(time, self._fire, label=self._label)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fired += 1
        self._callback()
        if not self._cancelled:
            self.schedule(self._sim.now + self._period)

    def cancel(self) -> None:
        self._cancelled = True
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None
