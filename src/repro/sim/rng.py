"""Deterministic random-number streams.

Every stochastic component of the simulation (topology generation, workload
generation, gossip partner selection, churn injection, ...) draws from its own
named stream.  Streams are derived from a single master seed, so a run is
fully determined by ``(configuration, seed)`` while components stay
statistically independent of one another — adding a random draw to the
workload generator does not perturb the gossip schedule.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A registry of named, independently seeded ``random.Random`` streams."""

    __slots__ = ("_master_seed", "_streams")

    def __init__(self, master_seed: int = 42) -> None:
        self._master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under ``name``, creating it on demand."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self._master_seed, name))
        return self._streams[name]

    def names(self) -> Sequence[str]:
        return tuple(sorted(self._streams))

    # Convenience wrappers used throughout the code base -------------------

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def randint(self, name: str, low: int, high: int) -> int:
        return self.stream(name).randint(low, high)

    def choice(self, name: str, population: Sequence[T]) -> T:
        return self.stream(name).choice(population)

    def sample(self, name: str, population: Sequence[T], k: int) -> list[T]:
        rng = self.stream(name)
        k = min(k, len(population))
        return rng.sample(list(population), k)

    def shuffle(self, name: str, population: Iterable[T]) -> list[T]:
        items = list(population)
        self.stream(name).shuffle(items)
        return items

    def expovariate(self, name: str, rate: float) -> float:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self.stream(name).expovariate(rate)

    def random(self, name: str) -> float:
        return self.stream(name).random()
