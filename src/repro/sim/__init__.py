"""Discrete-event simulation engine used by every experiment.

This package is the reproduction's substitute for PeerSim: it provides a
global virtual clock, an event queue with deterministic tie-breaking,
periodic processes (used for gossip rounds and keepalives) and seeded
random-number streams so that every experiment is reproducible bit-for-bit
from its configuration.
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RandomStreams

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "EventQueue",
    "PeriodicProcess",
    "RandomStreams",
]
