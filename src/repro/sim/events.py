"""Event primitives for the discrete-event engine.

An :class:`Event` couples a firing time with a callback.  Events are totally
ordered by ``(time, sequence)`` where the sequence number is assigned at
scheduling time, so two events scheduled for the same instant fire in the
order they were scheduled.  This makes simulation runs deterministic, which
the test-suite and the experiment harness rely on.

The queue is the single hottest data structure of the simulator, so it is
built for speed:

* the heap holds plain ``(time, sequence, event)`` tuples, so ``heappush`` /
  ``heappop`` compare machine floats and ints inside the C heap
  implementation instead of dispatching into a Python-level ``__lt__``;
* :class:`Event` is a ``__slots__`` handle (no dataclass machinery, no
  per-instance ``__dict__``);
* bulk scheduling (:meth:`EventQueue.extend`, used to replay query traces)
  re-heapifies once — O(n) — instead of paying n heap-pushes;
* cancellation stays lazy, but the heap is compacted once more than half of
  its entries are dead, so workloads that cancel a lot (periodic gossip and
  keepalive processes under churn) cannot grow the heap without bound;
* :meth:`EventQueue.reschedule` re-arms a popped event handle in place, which
  lets ``call_every`` avoid allocating a fresh handle every period.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional, Tuple

#: compaction is considered once this many cancelled entries have accumulated
#: (tiny heaps are never worth compacting) ...
_COMPACT_MIN_DEAD = 64
#: ... and triggered when the dead entries outnumber the live ones.
_COMPACT_DEAD_FRACTION = 0.5
#: upper bound on the freelist of recycled transient event handles; equal to
#: the trace-feeder chunk size so a chunked replay reuses one chunk's handles
_POOL_MAX = 1 << 14


class Event:
    """A single scheduled callback.

    Attributes:
        time: simulation time (seconds) at which the event fires.
        sequence: monotonically increasing tie-breaker assigned by the queue.
        callback: zero-argument callable invoked when the event fires; compared
            neither for ordering nor equality.
        cancelled: events may be cancelled in place instead of being removed
            from the heap (lazy deletion).
        label: free-form tag used in diagnostics and tests.
        poolable: True for fire-and-forget handles created by
            ``extend_transient`` — no external reference exists, so the engine
            returns them to the queue's freelist right after they fire.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled", "label", "poolable")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[[], Any],
        cancelled: bool = False,
        label: str = "",
        poolable: bool = False,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = cancelled
        self.label = label
        self.poolable = poolable

    # Ordering mirrors the original dataclass(order=True) semantics: only
    # (time, sequence) participate; callback/cancelled/label are ignored.

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __le__(self, other: "Event") -> bool:
        return (self.time, self.sequence) <= (other.time, other.sequence)

    def __gt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) > (other.time, other.sequence)

    def __ge__(self, other: "Event") -> bool:
        return (self.time, self.sequence) >= (other.time, other.sequence)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.sequence) == (other.time, other.sequence)

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, sequence={self.sequence!r}, "
            f"cancelled={self.cancelled!r}, label={self.label!r})"
        )

    def cancel(self) -> None:
        """Mark the event so the queue skips it when it reaches the front."""
        self.cancelled = True

    @property
    def is_cancelled(self) -> bool:
        return self.cancelled


class EventQueue:
    """Priority queue of :class:`Event` objects with lazy cancellation."""

    __slots__ = ("_heap", "_next_sequence", "_live", "_dead", "_pool")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._next_sequence = 0
        self._live = 0
        self._dead = 0
        #: freelist of recycled transient Event handles (see extend_transient)
        self._pool: list[Event] = []

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def heap_size(self) -> int:
        """Entries physically in the heap, live and cancelled (diagnostic)."""
        return len(self._heap)

    @property
    def dead_entries(self) -> int:
        """Cancelled entries still awaiting lazy removal (diagnostic)."""
        return self._dead

    def push(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        event = Event(time, sequence, callback, False, label)
        heapq.heappush(self._heap, (time, sequence, event))
        self._live += 1
        return event

    def extend(
        self,
        items: Iterable[Tuple[float, Callable[[], Any]]],
        label: str = "",
    ) -> list[Event]:
        """Bulk-schedule ``(time, callback)`` pairs and return their handles.

        Equivalent to calling :meth:`push` per pair (sequence numbers are
        assigned in iteration order) but re-heapifies once — O(n) instead of
        O(n log n) — which matters when replaying a whole query trace.
        """
        # Build and validate every entry before touching the heap: a failure
        # mid-iterable must not leave a half-appended, un-heapified queue.
        entries: list[tuple[float, int, Event]] = []
        sequence = self._next_sequence
        for time, callback in items:
            if time < 0:
                raise ValueError(f"event time must be non-negative, got {time}")
            entries.append((time, sequence, Event(time, sequence, callback, False, label)))
            sequence += 1
        self._next_sequence = sequence
        heap = self._heap
        heap.extend(entries)
        heapq.heapify(heap)
        self._live += len(entries)
        return [entry[2] for entry in entries]

    def extend_transient(
        self,
        times: Iterable[float],
        callback: Callable[[], Any],
        label: str = "",
    ) -> int:
        """Bulk-schedule pooled fire-and-forget events sharing one ``callback``.

        Unlike :meth:`extend` no handles are returned: the events are marked
        poolable, so the engine recycles each handle into the queue's freelist
        the moment it has fired, and subsequent chunks of a long trace reuse
        the same bounded set of Event objects.  Returns the number scheduled.
        """
        entries: list[tuple[float, int, Event]] = []
        sequence = self._next_sequence
        pool = self._pool
        for time in times:
            if time < 0:
                raise ValueError(f"event time must be non-negative, got {time}")
            if pool:
                event = pool.pop()
                event.time = time
                event.sequence = sequence
                event.callback = callback
                event.cancelled = False
                event.label = label
                event.poolable = True
            else:
                event = Event(time, sequence, callback, False, label, True)
            entries.append((time, sequence, event))
            sequence += 1
        self._next_sequence = sequence
        heap = self._heap
        heap.extend(entries)
        heapq.heapify(heap)
        self._live += len(entries)
        return len(entries)

    def recycle(self, event: Event) -> None:
        """Return a fired transient handle to the freelist."""
        pool = self._pool
        if len(pool) < _POOL_MAX:
            event.callback = None
            pool.append(event)

    @property
    def pool_size(self) -> int:
        """Recycled transient handles awaiting reuse (diagnostic)."""
        return len(self._pool)

    def reschedule(self, event: Event, time: float) -> Event:
        """Re-arm a previously *popped* event handle at a new time.

        The handle keeps its callback and label but receives a fresh sequence
        number, exactly as if it had been pushed anew — without allocating a
        new :class:`Event`.  Only call this with handles that are no longer in
        the heap (i.e. after :meth:`pop` returned them); rescheduling an event
        that is still queued would fire it twice.
        """
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        event.time = time
        event.sequence = sequence
        event.cancelled = False
        heapq.heappush(self._heap, (time, sequence, event))
        self._live += 1
        return event

    def pop_before(self, horizon: Optional[float]) -> Optional[Event]:
        """Pop the next live event, unless it fires after ``horizon``.

        Returns ``None`` when the queue is empty *or* the next live event lies
        beyond the horizon (check ``bool(queue)`` to tell the two apart).  One
        call replaces the peek+pop pair in the dispatch loop and runs once per
        fired event.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2].cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            if horizon is not None and head[0] > horizon:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return head[2]
        self._live = 0
        self._dead = 0
        return None

    def pop(self) -> Optional[Event]:
        """Return the next non-cancelled event, or ``None`` if the queue is empty."""
        return self.pop_before(None)

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without removing it."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2].cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            return head[0]
        self._live = 0
        self._dead = 0
        return None

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy deletion)."""
        if event.cancelled:
            return
        event.cancelled = True
        self._live = self._live - 1 if self._live > 0 else 0
        self._dead += 1
        if (
            self._dead >= _COMPACT_MIN_DEAD
            and self._dead > _COMPACT_DEAD_FRACTION * len(self._heap)
        ):
            self.compact()

    def compact(self) -> None:
        """Drop every cancelled entry and re-heapify.

        O(n); called automatically once cancelled entries outnumber live ones,
        so its amortised cost per cancellation is O(1).  Relative order of the
        surviving entries is untouched (the heap invariant is rebuilt from the
        same ``(time, sequence)`` keys).
        """
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._dead = 0
        self._live = len(self._heap)

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0
        self._dead = 0
