"""Event primitives for the discrete-event engine.

An :class:`Event` couples a firing time with a callback.  Events are totally
ordered by ``(time, sequence)`` where the sequence number is assigned at
scheduling time, so two events scheduled for the same instant fire in the
order they were scheduled.  This makes simulation runs deterministic, which
the test-suite and the experiment harness rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: simulation time (seconds) at which the event fires.
        sequence: monotonically increasing tie-breaker assigned by the queue.
        callback: zero-argument callable invoked when the event fires; compared
            neither for ordering nor equality.
        cancelled: events may be cancelled in place instead of being removed
            from the heap (lazy deletion).
        label: free-form tag used in diagnostics and tests.
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when it reaches the front."""
        self.cancelled = True

    @property
    def is_cancelled(self) -> bool:
        return self.cancelled


class EventQueue:
    """Priority queue of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time=time, sequence=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Return the next non-cancelled event, or ``None`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            self._live = 0
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy deletion)."""
        if not event.cancelled:
            event.cancel()
            self._live = max(0, self._live - 1)

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0
