"""Calendar (bucketed) event-queue backend.

A calendar queue maps event times onto fixed-width buckets (one "day" per
bucket) and only keeps the *current* bucket sorted: future buckets accumulate
entries unsorted and are sorted once, when the clock reaches them.  For the
dense, near-uniform schedules of a paper-scale run — a Poisson query trace
plus thousands of periodic gossip/keepalive processes — this makes bulk
scheduling O(n) distribution + one small per-bucket sort, and popping an
amortised pointer increment, instead of O(log n) heap operations per event.

The backend is a drop-in replacement for :class:`repro.sim.events.EventQueue`
(same entry ordering ``(time, sequence)``, same lazy cancellation and
compaction semantics), so a run produces byte-identical results on either
backend; which one is faster depends on the schedule shape (see
``docs/performance.md`` for the selection heuristic).  Sparse or severely
non-uniform schedules degenerate to one entry per bucket, where the tuple
heap is the better choice — hence the engine keeps the heap as its default.

Both backends share the :class:`~repro.sim.events.Event` handle type and the
freelist pool protocol (``extend_transient`` / ``recycle``) that lets trace
replay reuse a bounded set of handles instead of allocating one per event.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, Iterable, Optional, Sequence, Tuple

from repro.sim.events import (
    _COMPACT_MIN_DEAD,
    _COMPACT_DEAD_FRACTION,
    _POOL_MAX,
    Event,
)

#: default bucket width (seconds) before the first bulk extend tunes it
_DEFAULT_BUCKET_WIDTH = 1.0
#: target mean number of events per bucket after tuning
_TARGET_BUCKET_OCCUPANCY = 4.0
#: bucket widths are clamped to this range (seconds)
_MIN_BUCKET_WIDTH = 1e-6
_MAX_BUCKET_WIDTH = 1e6


class CalendarEventQueue:
    """Bucketed priority queue of :class:`Event` objects with lazy cancellation."""

    __slots__ = (
        "_width",
        "_width_tuned",
        "_buckets",
        "_bucket_heap",
        "_current",
        "_current_index",
        "_pos",
        "_next_sequence",
        "_live",
        "_dead",
        "_entries",
        "_pool",
    )

    def __init__(self, bucket_width: Optional[float] = None) -> None:
        if bucket_width is not None and bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self._width = bucket_width if bucket_width is not None else _DEFAULT_BUCKET_WIDTH
        #: False until the width has been fixed (explicitly or by the first
        #: sufficiently large bulk extend)
        self._width_tuned = bucket_width is not None
        #: future buckets: bucket index -> unsorted list of (time, seq, event)
        self._buckets: dict[int, list] = {}
        #: min-heap of the indices present in _buckets
        self._bucket_heap: list[int] = []
        #: the sorted head bucket and the pop cursor into it
        self._current: Optional[list] = None
        self._current_index = 0
        self._pos = 0
        self._next_sequence = 0
        self._live = 0
        self._dead = 0
        #: physical entries across all buckets (live + cancelled) — kept as a
        #: counter so the compaction predicate in cancel() stays O(1)
        self._entries = 0
        #: freelist of recycled transient Event handles
        self._pool: list[Event] = []

    # -- sizing ------------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def bucket_width(self) -> float:
        return self._width

    @property
    def heap_size(self) -> int:
        """Entries physically stored, live and cancelled (diagnostic)."""
        return self._entries

    @property
    def dead_entries(self) -> int:
        """Cancelled entries still awaiting lazy removal (diagnostic)."""
        return self._dead

    @property
    def num_buckets(self) -> int:
        """Buckets currently materialised (diagnostic)."""
        return len(self._buckets) + (1 if self._current is not None else 0)

    @property
    def pool_size(self) -> int:
        """Recycled transient handles awaiting reuse (diagnostic)."""
        return len(self._pool)

    # -- internal plumbing -------------------------------------------------

    def _insert(self, entry: tuple) -> None:
        index = int(entry[0] / self._width)
        if self._current is not None:
            if index < self._current_index:
                # The entry precedes the already-sorted head bucket (possible
                # when the clock lags behind the queue head): demote the head
                # back to an ordinary future bucket and fall through.
                self._buckets[self._current_index] = self._current[self._pos :]
                heapq.heappush(self._bucket_heap, self._current_index)
                self._current = None
            elif index == self._current_index:
                # Sorted-insert into the not-yet-popped tail of the head bucket.
                insort(self._current, entry, lo=self._pos)
                return
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [entry]
            heapq.heappush(self._bucket_heap, index)
        else:
            bucket.append(entry)

    def _advance(self) -> bool:
        """Make the head bucket available; False when the queue is empty."""
        while self._current is None or self._pos >= len(self._current):
            if not self._bucket_heap:
                self._current = None
                return False
            index = heapq.heappop(self._bucket_heap)
            bucket = self._buckets.pop(index, None)
            if not bucket:
                continue
            bucket.sort()  # (time, seq, event) tuples: one C-level sort per bucket
            self._current = bucket
            self._current_index = index
            self._pos = 0
        return True

    def _new_event(
        self,
        time: float,
        sequence: int,
        callback: Callable[[], Any],
        label: str,
        poolable: bool,
    ) -> Event:
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.sequence = sequence
            event.callback = callback
            event.cancelled = False
            event.label = label
            event.poolable = poolable
            return event
        return Event(time, sequence, callback, False, label, poolable)

    def _maybe_tune_width(self, times: Sequence[float]) -> None:
        """Fix the bucket width from the first large bulk schedule.

        Aims at :data:`_TARGET_BUCKET_OCCUPANCY` events per bucket over the
        batch's time span — the classic calendar-queue operating point.  Only
        runs while the queue is still (nearly) empty so no re-bucketing of
        existing entries is needed.
        """
        if self._width_tuned or len(times) < 64 or self.heap_size > len(times) // 4:
            return
        span = max(times) - min(times)
        if span <= 0:
            return
        width = span / len(times) * _TARGET_BUCKET_OCCUPANCY
        width = min(_MAX_BUCKET_WIDTH, max(_MIN_BUCKET_WIDTH, width))
        existing = []
        if self._current is not None:
            existing.extend(self._current[self._pos :])
            self._current = None
        for bucket in self._buckets.values():
            existing.extend(bucket)
        self._buckets.clear()
        self._bucket_heap.clear()
        self._width = width
        self._width_tuned = True
        for entry in existing:
            self._insert(entry)

    # -- scheduling --------------------------------------------------------

    def push(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        event = self._new_event(time, sequence, callback, label, False)
        self._insert((time, sequence, event))
        self._live += 1
        self._entries += 1
        return event

    def extend(
        self,
        items: Iterable[Tuple[float, Callable[[], Any]]],
        label: str = "",
    ) -> list[Event]:
        """Bulk-schedule ``(time, callback)`` pairs and return their handles."""
        entries: list[tuple] = []
        sequence = self._next_sequence
        for time, callback in items:
            if time < 0:
                raise ValueError(f"event time must be non-negative, got {time}")
            entries.append(
                (time, sequence, Event(time, sequence, callback, False, label))
            )
            sequence += 1
        self._next_sequence = sequence
        self._maybe_tune_width([entry[0] for entry in entries])
        for entry in entries:
            self._insert(entry)
        self._live += len(entries)
        self._entries += len(entries)
        return [entry[2] for entry in entries]

    def extend_transient(
        self,
        times: Iterable[float],
        callback: Callable[[], Any],
        label: str = "",
    ) -> int:
        """Bulk-schedule pooled fire-and-forget events sharing one ``callback``.

        No handles are returned (they may be recycled the moment they fire),
        which is what lets the queue reuse a bounded pool of Event objects for
        an arbitrarily long trace.  Returns the number of events scheduled.
        """
        times = list(times)
        for time in times:
            if time < 0:
                raise ValueError(f"event time must be non-negative, got {time}")
        self._maybe_tune_width(times)
        sequence = self._next_sequence
        for time in times:
            self._insert((time, sequence, self._new_event(time, sequence, callback, label, True)))
            sequence += 1
        self._next_sequence = sequence
        self._live += len(times)
        self._entries += len(times)
        return len(times)

    def reschedule(self, event: Event, time: float) -> Event:
        """Re-arm a previously popped handle at a new time (fresh sequence)."""
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        event.time = time
        event.sequence = sequence
        event.cancelled = False
        self._insert((time, sequence, event))
        self._live += 1
        self._entries += 1
        return event

    def recycle(self, event: Event) -> None:
        """Return a fired transient handle to the freelist."""
        pool = self._pool
        if len(pool) < _POOL_MAX:
            event.callback = None
            pool.append(event)

    # -- consumption -------------------------------------------------------

    def pop_before(self, horizon: Optional[float]) -> Optional[Event]:
        """Pop the next live event, unless it fires after ``horizon``."""
        while True:
            if (self._current is None or self._pos >= len(self._current)) and not self._advance():
                self._live = 0
                self._dead = 0
                self._entries = 0
                return None
            entry = self._current[self._pos]
            event = entry[2]
            if event.cancelled:
                self._pos += 1
                self._dead -= 1
                self._entries -= 1
                continue
            if horizon is not None and entry[0] > horizon:
                return None
            self._pos += 1
            self._live -= 1
            self._entries -= 1
            return event

    def pop(self) -> Optional[Event]:
        """Return the next non-cancelled event, or ``None`` if the queue is empty."""
        return self.pop_before(None)

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without removing it."""
        while True:
            if (self._current is None or self._pos >= len(self._current)) and not self._advance():
                self._live = 0
                self._dead = 0
                self._entries = 0
                return None
            entry = self._current[self._pos]
            if entry[2].cancelled:
                self._pos += 1
                self._dead -= 1
                self._entries -= 1
                continue
            return entry[0]

    # -- cancellation ------------------------------------------------------

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy deletion)."""
        if event.cancelled:
            return
        event.cancelled = True
        self._live = self._live - 1 if self._live > 0 else 0
        self._dead += 1
        if (
            self._dead >= _COMPACT_MIN_DEAD
            and self._dead > _COMPACT_DEAD_FRACTION * self.heap_size
        ):
            self.compact()

    def compact(self) -> None:
        """Drop every cancelled entry; relative order of survivors is untouched."""
        survivors: list[tuple] = []
        if self._current is not None:
            survivors.extend(
                entry for entry in self._current[self._pos :] if not entry[2].cancelled
            )
            self._current = None
        for bucket in self._buckets.values():
            survivors.extend(entry for entry in bucket if not entry[2].cancelled)
        self._buckets.clear()
        self._bucket_heap.clear()
        for entry in survivors:
            self._insert(entry)
        self._dead = 0
        self._live = len(survivors)
        self._entries = len(survivors)

    def clear(self) -> None:
        self._buckets.clear()
        self._bucket_heap.clear()
        self._current = None
        self._pos = 0
        self._live = 0
        self._dead = 0
        self._entries = 0
