"""Periodic processes bound to simulated peers.

Gossip rounds, keepalives and age incrementing are all modelled as periodic
processes.  :class:`PeriodicProcess` is a thin object-oriented wrapper over
:meth:`repro.sim.engine.Simulator.call_every` that supports jittered starts —
the paper's peers do not gossip in lock-step, so each process can start at a
random phase within its first period.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import PeriodicHandle, Simulator


class PeriodicProcess:
    """A named periodic activity that can be started, stopped and restarted."""

    __slots__ = ("_sim", "_period", "_callback", "_name", "_jitter_stream", "_handle")

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        name: str = "",
        jitter_stream: Optional[str] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._name = name
        self._jitter_stream = jitter_stream
        self._handle: Optional[PeriodicHandle] = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def period(self) -> float:
        return self._period

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    @property
    def fired(self) -> int:
        return 0 if self._handle is None else self._handle.fired

    def start(self) -> None:
        """Start the process; the first firing is phase-jittered if configured."""
        if self.running:
            return
        if self._jitter_stream is not None:
            phase = self._sim.streams.uniform(self._jitter_stream, 0.0, self._period)
        else:
            phase = self._period
        self._handle = self._sim.call_every(
            self._period, self._callback, start=self._sim.now + phase, label=self._name
        )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def restart(self, period: Optional[float] = None) -> None:
        """Stop and start again, optionally with a new period."""
        self.stop()
        if period is not None:
            if period <= 0:
                raise ValueError(f"period must be positive, got {period}")
            self._period = period
        self.start()
