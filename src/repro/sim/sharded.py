"""Sharded space-parallel execution of Flower-CDN scenarios.

One scenario run is split into ``N`` shard engines, each a complete
:class:`~repro.sim.engine.Simulator` + :class:`~repro.core.system.FlowerCDN`
owning a website-atomic slice of the workload (see
:mod:`repro.core.sharding` for why the partition makes the cross-shard
message channel empty, and therefore the merged outputs exactly equal to a
single-process run).  Shards fan out over the shared
:func:`repro.scenarios.parallel.map_tasks` pool; each advances through the
conservative window barriers derived from the spec's lookahead and reports
a typed :class:`~repro.core.sharding.WindowReport` per window.

Merging is exact, not approximate:

* retained-records mode concatenates the per-shard query records, sorts
  them by ``(time, query_id)`` (the single-process dispatch order) and
  replays them into a fresh collector — bitwise-identical series,
  histograms and counts;
* compact mode (paper scale) folds the per-shard reservoirs bucket-wise —
  integer counts and integer-valued byte totals add exactly;
* bandwidth, delivery-gate and resilience blocks merge by the rules in
  their classes (sums, min-first-seen, max reconciliation rounds, then a
  recompute of the resilience summary over the merged series).

``shards=1`` never reaches this module: the session runs the plain
single-process path, which the shard-count-independence tests then compare
against.
"""

from __future__ import annotations

# Wall-clock reads below are perf accounting only (ShardRunStats); they
# never feed simulated time or draws, hence the DET002 suppressions.
import time as _time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.scenarios.spec import ScenarioSpec

from repro.core.sharding import (
    ShardPlan,
    WindowReport,
    conservative_lookahead_s,
    plan_shards,
    validate_shardable,
    window_boundaries,
)
from repro.core.system import FlowerCDN
from repro.experiments.driver import ExperimentRunner, RunResult
from repro.metrics.collectors import BandwidthAccountant, MetricsCollector
from repro.metrics.resilience import summarise_resilience
from repro.network.latency import LatencyModel
from repro.network.reachability import DeliveryStats
from repro.scenarios.models import build_churn_model, build_fault_model
from repro.sim.engine import Simulator
from repro.workload.trace import ResolvedTraceArrays


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to run one shard (picklable)."""

    spec: object  # ScenarioSpec (kept duck-typed to avoid an import cycle)
    seed: int
    shard_index: int
    num_shards: int
    websites: Tuple[str, ...]
    kernel: bool = False


@dataclass
class ShardOutcome:
    """One shard's complete result, shipped back for the barrier merge."""

    shard_index: int
    websites: Tuple[str, ...]
    events_fired: int
    num_queries: int
    setup_s: float
    dispatch_s: float
    reports: Tuple[WindowReport, ...]
    metrics: MetricsCollector
    bandwidth: BandwidthAccountant
    delivery_stats: Optional[DeliveryStats]
    fault_windows: Tuple[Tuple[float, float], ...]
    emits_resilience: bool


@dataclass(frozen=True)
class ShardRunStats:
    """Coordinator-side accounting of one sharded run (perf reporting)."""

    num_shards: int
    lookahead_s: float
    num_windows: int
    wall_s: float
    setup_s_per_shard: Tuple[float, ...]
    dispatch_s_per_shard: Tuple[float, ...]
    events_per_shard: Tuple[int, ...]
    queries_per_shard: Tuple[int, ...]

    @property
    def total_events(self) -> int:
        return sum(self.events_per_shard)

    @property
    def critical_path_s(self) -> float:
        """The slowest shard's dispatch time: the lockstep-parallel bound."""
        return max(self.dispatch_s_per_shard) if self.dispatch_s_per_shard else 0.0


# -- per-shard worker ----------------------------------------------------------


def _filter_trace(trace: ResolvedTraceArrays, websites: frozenset) -> ResolvedTraceArrays:
    """The sub-trace of queries targeting ``websites`` (columns copied).

    Every worker rebuilds the *full* resolved trace from ``(spec, seed)``
    (bit-identical across processes) and keeps only its own websites'
    queries; query ids, times and client assignments are untouched, so the
    union of all shards' sub-traces is exactly the original trace.
    """
    wanted = {
        index
        for index, website in enumerate(trace.websites)
        if website.name in websites
    }
    keep = [i for i in range(len(trace)) if trace.website_index[i] in wanted]

    def take(column: Sequence[Any]) -> Sequence[Any]:
        # array.array columns stay arrays (typecode preserved); lists stay lists.
        taken = type(column)(column.typecode) if hasattr(column, "typecode") else []
        if hasattr(column, "typecode"):
            taken.extend(column[i] for i in keep)
            return taken
        return [column[i] for i in keep]

    return ResolvedTraceArrays(
        websites=trace.websites,
        query_id=take(trace.query_id),
        times=take(trace.times),
        website_index=take(trace.website_index),
        object_rank=take(trace.object_rank),
        locality=take(trace.locality),
        client_host=take(trace.client_host),
        is_new=take(trace.is_new),
    )


def _run_shard(task: ShardTask) -> ShardOutcome:
    """Run one shard start to finish, advancing in conservative windows."""
    spec = task.spec
    setup = spec.to_setup(task.seed)
    if task.kernel:
        setup = replace(setup, kernel=True)
    duration = setup.flower.simulation_duration_s

    setup_started = _time.perf_counter()  # repro: allow(DET002)
    runner = ExperimentRunner(setup)
    trace = runner.resolved_trace()
    sub_trace = _filter_trace(trace, frozenset(task.websites))

    sim = Simulator(
        seed=setup.seed, end_time=duration, queue_backend=setup.queue_backend
    )
    system = FlowerCDN(
        setup.flower,
        sim,
        runner.topology,
        latency_model=LatencyModel(runner.topology),
        catalog=runner.catalog,
        compact_metrics=setup.compact_metrics,
        kernel=setup.kernel,
        owned_websites=frozenset(task.websites),
    )
    system.bootstrap()

    # Attach the spec's churn/fault models exactly like Session.attach_models
    # does on the single-process path.  validate_shardable() has already
    # guaranteed the churn profile is idle and the fault model time-driven,
    # so per-shard attachment reproduces the union run.
    injectors = []
    for attached in (
        build_churn_model(spec.churn_model).attach(system, spec),
        build_fault_model(spec.fault_model).attach(system, spec),
    ):
        if attached is None:
            continue
        if hasattr(attached, "start"):
            injectors.append(attached)
        else:
            injectors.extend(attached)
    for injector in injectors:
        injector.start()

    sim.schedule_trace(
        sub_trace.times, sub_trace.dispatcher(system.handle_query), label="query"
    )
    setup_s = _time.perf_counter() - setup_started  # repro: allow(DET002)

    lookahead = conservative_lookahead_s(spec)
    boundaries = window_boundaries(duration, lookahead)
    reports: List[WindowReport] = []
    dispatch_started = _time.perf_counter()  # repro: allow(DET002)
    for window_index, boundary in enumerate(boundaries):
        sim.run(until=boundary)
        reports.append(
            WindowReport(
                timestamp=boundary,
                shard=task.shard_index,
                seq=window_index,
                window_index=window_index,
                window_end_s=boundary,
                events_fired=sim.events_fired,
                queries_handled=system.metrics.num_queries,
            )
        )
    dispatch_s = _time.perf_counter() - dispatch_started  # repro: allow(DET002)

    for injector in reversed(injectors):
        injector.stop()

    model = system.reachability or system._last_reachability
    emits = bool(model is not None and model.emits_metrics and system.delivery_stats)
    fault_windows = tuple(model.fault_windows()) if emits else ()
    return ShardOutcome(
        shard_index=task.shard_index,
        websites=task.websites,
        events_fired=sim.events_fired,
        num_queries=system.metrics.num_queries,
        setup_s=setup_s,
        dispatch_s=dispatch_s,
        reports=tuple(reports),
        metrics=system.metrics,
        bandwidth=system.bandwidth,
        delivery_stats=system.delivery_stats,
        fault_windows=fault_windows,
        emits_resilience=emits,
    )


# -- barrier merge -------------------------------------------------------------


def merge_outcomes(
    spec: "ScenarioSpec", outcomes: Sequence[ShardOutcome]
) -> RunResult:
    """Fold per-shard outcomes into the single-process :class:`RunResult`.

    Outcomes are consumed in shard order and their records in
    ``(time, query_id)`` order — the deterministic merge order every digest
    relies on.
    """
    duration = spec.duration_s
    window_s = spec.effective_metrics_window_s
    retained = not spec.compact_metrics

    merged = MetricsCollector(window_s=window_s, retain_records=retained)
    if retained:
        records = [
            record for outcome in outcomes for record in outcome.metrics.records
        ]
        records.sort(key=lambda record: (record.time, record.query_id))
        merged.record_all(records)
    else:
        for outcome in outcomes:
            merged.merge_compact_from(outcome.metrics)

    bandwidth = BandwidthAccountant(window_s=window_s)
    for outcome in outcomes:
        bandwidth.merge_from(outcome.bandwidth)

    stats: Optional[DeliveryStats] = None
    if any(outcome.delivery_stats is not None for outcome in outcomes):
        stats = DeliveryStats()
        for outcome in outcomes:
            if outcome.delivery_stats is not None:
                stats.merge_from(outcome.delivery_stats)

    resilience = None
    if stats is not None and any(outcome.emits_resilience for outcome in outcomes):
        fault_windows: Sequence[Tuple[float, float]] = ()
        for outcome in outcomes:
            if outcome.emits_resilience:
                fault_windows = outcome.fault_windows
                break
        resilience = summarise_resilience(
            merged.hit_ratio_series, fault_windows, duration, stats
        )

    return RunResult(
        system_name="Flower-CDN",
        duration_s=duration,
        num_queries=merged.num_queries,
        hit_ratio=merged.hit_ratio,
        average_lookup_latency_ms=merged.average_lookup_latency_ms,
        average_transfer_distance_ms=merged.average_transfer_distance_ms,
        background_bps_per_peer=bandwidth.average_bps_per_peer(duration),
        redirection_failures=merged.redirection_failures,
        metrics=merged,
        bandwidth=bandwidth,
        # Diagnostics, not a digest metric: each shard chunks its own
        # sub-trace, so the summed counter can differ from the
        # single-process count by a few chunk-loader bookkeeping events.
        events_fired=sum(outcome.events_fired for outcome in outcomes),
        resilience=resilience,
    )


# -- public entry --------------------------------------------------------------


def run_sharded_flower(
    spec: "ScenarioSpec",
    seed: Optional[int] = None,
    shards: int = 2,
    kernel: bool = False,
    jobs: Optional[int] = None,
) -> Tuple[RunResult, ShardRunStats]:
    """Run a flower scenario across ``shards`` shard engines and merge.

    ``jobs`` sizes the worker pool (``None``: the CPU-affinity default;
    ``1`` runs every shard inline in this process — same results, handy for
    tests and debugging).  Returns the merged :class:`RunResult` plus the
    coordinator's :class:`ShardRunStats`.
    """
    if shards < 2:
        raise ValueError(
            f"shards must be >= 2 for sharded execution, got {shards} "
            "(shards=1 is the single-process path)"
        )
    validate_shardable(spec)
    resolved_seed = spec.seed if seed is None else seed
    plan: ShardPlan = plan_shards(spec, shards)
    tasks = [
        ShardTask(
            spec=spec,
            seed=resolved_seed,
            shard_index=index,
            num_shards=shards,
            websites=websites,
            kernel=kernel,
        )
        for index, websites in enumerate(plan.assignments)
    ]
    wall_started = _time.perf_counter()  # repro: allow(DET002)
    outcomes = map_tasks_shards(tasks, jobs=jobs)
    wall_s = _time.perf_counter() - wall_started  # repro: allow(DET002)
    result = merge_outcomes(spec, outcomes)
    stats = ShardRunStats(
        num_shards=shards,
        lookahead_s=conservative_lookahead_s(spec),
        num_windows=len(outcomes[0].reports) if outcomes else 0,
        wall_s=wall_s,
        setup_s_per_shard=tuple(outcome.setup_s for outcome in outcomes),
        dispatch_s_per_shard=tuple(outcome.dispatch_s for outcome in outcomes),
        events_per_shard=tuple(outcome.events_fired for outcome in outcomes),
        queries_per_shard=tuple(outcome.num_queries for outcome in outcomes),
    )
    return result, stats


def map_tasks_shards(
    tasks: Sequence[ShardTask], jobs: Optional[int] = None
) -> List[ShardOutcome]:
    """Fan the shard tasks over the shared scenario worker pool."""
    from repro.scenarios.parallel import map_tasks

    return map_tasks(_run_shard, tasks, jobs=jobs)
