"""Job-execution layer of the ``repro serve`` service.

A :class:`JobManager` owns a bounded FIFO queue of jobs and a pool of worker
threads.  Each worker executes one job at a time **in a child process**
(fork + pipe), so a crashing or runaway run can never take the server down:
a worker traceback comes back as text and becomes a ``failed`` status
carrying the familiar :class:`~repro.scenarios.parallel.TaskError` detail,
a per-job timeout terminates only that job's process, and ``DELETE`` on a
running job terminates it cleanly.  Worker sizing defaults to the same
CPU-affinity heuristic as the batch runners
(:func:`repro.scenarios.parallel.default_jobs`).

Jobs are deduplicated by the canonical request digest
(:func:`repro.service.store.request_digest`): submitting an identical
``(spec, seed, scale, shards, kernel)`` request while a matching job is
queued, running or done returns the same job; a digest already present in
the :class:`~repro.service.store.RunStore` completes instantly from cache.
Everything executes through :class:`repro.session.Session` — the service
adds no execution semantics, so results are byte-identical to CLI runs by
construction.

Wall-clock timestamps (submission/start/finish times reported by the API)
flow through an injectable ``clock`` callable — the sanctioned clock hook —
whose default is the single wall-clock read of the package.
"""

from __future__ import annotations

import json
import multiprocessing
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Callable, Dict, List, Optional, Tuple

from repro.scenarios.artifacts import dumps_json, run_documents
from repro.scenarios.parallel import TaskError, default_jobs
from repro.scenarios.spec import ScenarioSpec
from repro.service.store import RunStore, request_digest

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "JOB_STATES",
    "Job",
    "JobManager",
    "QueueFullError",
    "ServiceClosedError",
    "canonical_scenario_payload",
    "canonical_sweep_payload",
    "execute_request",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
#: every state a job can report, in lifecycle order
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
_TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: characters of the request digest used as the public run id
RUN_ID_LENGTH = 16


def wall_clock() -> float:
    """The package's sanctioned wall-clock hook (job timestamps only).

    Simulation results never depend on it — it feeds the ``submitted_at`` /
    ``started_at`` / ``finished_at`` fields the HTTP API reports.  Tests and
    deterministic harnesses inject their own counter via
    ``JobManager(clock=...)``.
    """
    return time.time()  # repro: allow(DET002)


class QueueFullError(RuntimeError):
    """The bounded job queue is full; retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: int) -> None:
        super().__init__(f"job queue full; retry after ~{retry_after_s}s")
        self.retry_after_s = retry_after_s


class ServiceClosedError(RuntimeError):
    """The manager is draining and no longer accepts submissions."""


# -- canonical request payloads ----------------------------------------------


def canonical_scenario_payload(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    scale: float = 1.0,
    shards: Optional[int] = None,
    kernel: bool = False,
) -> Dict[str, object]:
    """The canonical, digest-stable payload of one scenario run request.

    The scale factor is applied to the spec here, and every knob that can
    change result *bytes or identity* (spec, seed, scale, shards, kernel) is
    part of the payload — execution hints that cannot (worker counts) are
    not.  Two requests dedupe to one run exactly when these payloads match.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if scale != 1.0:
        spec = spec.scaled(scale)
    resolved_shards = spec.shards if shards is None else shards
    if resolved_shards < 1:
        raise ValueError("shards must be >= 1")
    return {
        "kind": "scenario",
        "spec": spec.to_dict(),
        "seed": spec.seed if seed is None else int(seed),
        "scale": scale,
        "shards": resolved_shards,
        "kernel": bool(kernel),
    }


def canonical_sweep_payload(
    sweep: str, seed: Optional[int] = None, scale: float = 1.0
) -> Dict[str, object]:
    """The canonical payload of one sweep-grid request (see above)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    from repro.sweeps.library import get_sweep

    get_sweep(sweep)  # unknown names fail at submission time
    return {
        "kind": "sweep",
        "sweep": sweep,
        "seed": None if seed is None else int(seed),
        "scale": scale,
    }


# -- request execution (module-level so the forked child can run it) ----------


def execute_request(
    payload: Dict[str, object], execution: Optional[Dict[str, object]] = None
) -> Dict[str, str]:
    """Execute one canonical request; returns the bundle documents.

    Runs entirely through :class:`repro.session.Session` /
    :func:`repro.sweeps.engine.run_sweep` — the same code paths as the CLI —
    and serialises through the shared bundle writer, so the returned
    documents are byte-identical to a CLI run/export of the same request.
    ``execution`` carries non-canonical hints (sweep cell workers).
    """
    from repro.session import Session

    execution = execution or {}
    kind = payload["kind"]
    if kind == "scenario":
        spec = ScenarioSpec.from_dict(payload["spec"])  # type: ignore[arg-type]
        session = Session.from_spec(
            spec,
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            kernel=bool(payload["kernel"]),
            shards=int(payload["shards"]),  # type: ignore[arg-type]
        )
        result = session.run()
        return run_documents(result, scale=float(payload["scale"]))  # type: ignore[arg-type]
    if kind == "sweep":
        from repro.sweeps.artifacts import to_csv, to_markdown
        from repro.sweeps.engine import run_sweep

        scale = float(payload["scale"])  # type: ignore[arg-type]
        seed = payload["seed"]
        sweep_result = run_sweep(
            str(payload["sweep"]),
            jobs=int(execution.get("jobs", 1)),  # type: ignore[arg-type]
            seed=None if seed is None else int(seed),  # type: ignore[arg-type]
            scale=None if scale == 1.0 else scale,
        )
        digest_text = dumps_json(sweep_result.to_dict())
        return {
            "digest.json": digest_text,
            "result.json": digest_text,
            "series.csv": to_csv(sweep_result),
            "summary.md": to_markdown(sweep_result),
        }
    raise ValueError(f"unknown request kind {kind!r}")


def _subprocess_entry(
    conn: Connection,
    payload: Dict[str, object],
    execution: Dict[str, object],
) -> None:
    """Child-process entry: run the request, ship the outcome over the pipe."""
    try:
        documents = execute_request(payload, execution)
        conn.send(("ok", documents))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


# -- the job table ------------------------------------------------------------


@dataclass
class Job:
    """One submitted request and its lifecycle state."""

    id: str
    digest: str
    kind: str
    label: str
    payload: Dict[str, object]
    execution: Dict[str, object] = field(default_factory=dict)
    state: str = QUEUED
    #: True when this submission was answered without a new execution
    #: (deduplicated against a live job or served from the run store)
    cached: bool = False
    #: failure detail (the TaskError text, including the worker traceback)
    detail: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    timeout_s: Optional[float] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)

    def to_dict(self, clock_now: Optional[float] = None) -> Dict[str, object]:
        """The status document ``GET /runs/{id}`` returns."""
        document: Dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "label": self.label,
            "digest": self.digest,
            "state": self.state,
            "cached": self.cached,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.detail is not None:
            document["detail"] = self.detail
        if self.state == RUNNING and clock_now is not None and self.started_at:
            document["elapsed_s"] = max(0.0, clock_now - self.started_at)
        if self.state == DONE and self.started_at and self.finished_at:
            document["duration_s"] = self.finished_at - self.started_at
        return document


class JobManager:
    """Bounded queue + worker pool + run-store integration (thread-safe)."""

    def __init__(
        self,
        store: RunStore,
        workers: Optional[int] = None,
        max_queue: int = 16,
        timeout_s: Optional[float] = None,
        clock: Callable[[], float] = wall_clock,
        executor: Optional[Callable[..., Dict[str, str]]] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.store = store
        self.workers = workers if workers is not None else min(4, default_jobs())
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.max_queue = max_queue
        self.timeout_s = timeout_s
        self._clock = clock
        #: in-thread executor override (tests); None = process isolation
        self._executor = executor
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._by_digest: Dict[str, str] = {}
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._stop = threading.Event()
        self._accepting = True
        self._busy = 0
        self._durations: List[float] = []
        self.dedup_hits = 0
        self.store_hits = 0
        self.misses = 0
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{index}", daemon=True
            )
            for index in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        payload: Dict[str, object],
        label: str,
        execution: Optional[Dict[str, object]] = None,
        timeout_s: Optional[float] = None,
    ) -> Tuple[Job, bool]:
        """Submit one canonical request; dedupes, caches, or enqueues.

        Returns ``(job, cached)`` — ``cached`` is True when this submission
        triggered **no new execution** (it joined a live identical job, or
        the digest was already in the run store).  Raises
        :class:`QueueFullError` on backpressure and
        :class:`ServiceClosedError` while draining.
        """
        digest = request_digest(payload)
        kind = str(payload["kind"])
        with self._lock:
            if not self._accepting:
                raise ServiceClosedError("service is draining; not accepting jobs")
            existing_id = self._by_digest.get(digest)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.state not in (FAILED, CANCELLED):
                    # Live dedup: identical submission joins the same run.
                    self.dedup_hits += 1
                    return existing, True
                # A failed/cancelled digest is re-runnable: requeue below.
            if digest in self.store:
                self.store_hits += 1
                job = self._register(
                    digest, kind, label, payload, execution, timeout_s
                )
                job.state = DONE
                job.cached = True
                job.finished_at = job.submitted_at
                return job, True
            queued = sum(1 for job in self._jobs.values() if job.state == QUEUED)
            if queued >= self.max_queue:
                raise QueueFullError(self._retry_after_locked(queued))
            self.misses += 1
            job = self._register(digest, kind, label, payload, execution, timeout_s)
            self._queue.put(job.id)
            return job, False

    def _register(
        self,
        digest: str,
        kind: str,
        label: str,
        payload: Dict[str, object],
        execution: Optional[Dict[str, object]],
        timeout_s: Optional[float],
    ) -> Job:
        job = Job(
            id=digest[:RUN_ID_LENGTH],
            digest=digest,
            kind=kind,
            label=label,
            payload=payload,
            execution=dict(execution or {}),
            submitted_at=self._clock(),
            timeout_s=self.timeout_s if timeout_s is None else timeout_s,
        )
        previous = self._jobs.get(job.id)
        if previous is not None and previous.digest != digest:
            # A 64-bit id prefix collision between distinct digests: keep the
            # full digest as the id instead of serving someone else's run.
            job.id = digest
        self._jobs[job.id] = job
        self._by_digest[digest] = job.id
        return job

    def _retry_after_locked(self, queued: int) -> int:
        if self._durations:
            average = sum(self._durations) / len(self._durations)
        else:
            average = 1.0
        waves = (queued + self.workers) / max(1, self.workers)
        return max(1, int(average * waves + 0.5))

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def queue_depth(self) -> int:
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.state == QUEUED)

    def stats(self) -> Dict[str, object]:
        """The counters behind ``GET /stats``."""
        with self._lock:
            states = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            submissions = self.dedup_hits + self.store_hits + self.misses
            hits = self.dedup_hits + self.store_hits
            return {
                "workers": self.workers,
                "busy_workers": self._busy,
                "worker_utilisation": self._busy / self.workers,
                "queue_depth": states[QUEUED],
                "max_queue": self.max_queue,
                "accepting": self._accepting,
                "jobs": states,
                "cache": {
                    "dedup_hits": self.dedup_hits,
                    "store_hits": self.store_hits,
                    "misses": self.misses,
                    "hit_ratio": (hits / submissions) if submissions else 0.0,
                },
            }

    # -- cancellation --------------------------------------------------------

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; returns the job, or None when unknown.

        Queued jobs cancel immediately; running jobs have their worker
        process terminated (in-thread executors finish their current step
        and are then marked cancelled).  Terminal jobs are left untouched.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state == QUEUED:
                self._finish_locked(job, CANCELLED, detail="cancelled while queued")
                return job
            if job.state == RUNNING:
                job.cancel_event.set()
                return job
            return job

    # -- worker loop ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state != QUEUED:
                    continue  # cancelled (or superseded) while queued
                job.state = RUNNING
                job.started_at = self._clock()
                self._busy += 1
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._busy -= 1

    def _execute(self, job: Job) -> None:
        try:
            if self._executor is not None:
                documents = self._run_inline(job)
            else:
                documents = self._run_isolated(job)
        except TaskError as error:
            self._finish(job, FAILED, detail=str(error))
            return
        except _CancelledExecution:
            self._finish(job, CANCELLED, detail="cancelled while running")
            return
        except _TimedOutExecution as error:
            self._finish(job, FAILED, detail=str(error))
            return
        if job.cancel_event.is_set():
            self._finish(job, CANCELLED, detail="cancelled while running")
            return
        self.store.put(
            job.digest,
            documents,
            kind=job.kind,
            meta={"label": job.label, "id": job.id},
        )
        self._finish(job, DONE)

    def _run_inline(self, job: Job) -> Dict[str, str]:
        assert self._executor is not None
        try:
            return self._executor(job.payload, job.execution)
        except Exception:
            raise TaskError(0, job.label, traceback.format_exc()) from None

    def _run_isolated(self, job: Job) -> Dict[str, str]:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_subprocess_entry,
            args=(child_conn, job.payload, job.execution),
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = (
            None if job.timeout_s is None else self._clock() + job.timeout_s
        )
        try:
            while True:
                if job.cancel_event.is_set():
                    _terminate(process)
                    raise _CancelledExecution()
                if deadline is not None and self._clock() >= deadline:
                    _terminate(process)
                    raise _TimedOutExecution(
                        f"job {job.id} exceeded its {job.timeout_s:g}s timeout "
                        "and was terminated"
                    )
                if parent_conn.poll(0.1):
                    break
                if not process.is_alive() and not parent_conn.poll(0):
                    raise TaskError(
                        0,
                        job.label,
                        f"worker process died with exit code {process.exitcode} "
                        "before reporting a result",
                    )
            try:
                status, detail = parent_conn.recv()
            except EOFError:
                raise TaskError(
                    0,
                    job.label,
                    f"worker process died with exit code {process.exitcode} "
                    "mid-result",
                ) from None
            if status != "ok":
                raise TaskError(0, job.label, str(detail))
            return dict(detail)
        finally:
            parent_conn.close()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                _terminate(process)
                process.join(timeout=5.0)

    def _finish(self, job: Job, state: str, detail: Optional[str] = None) -> None:
        with self._lock:
            self._finish_locked(job, state, detail=detail)

    def _finish_locked(self, job: Job, state: str, detail: Optional[str]) -> None:
        if job.state in _TERMINAL_STATES:
            return  # first terminal transition wins
        job.state = state
        job.detail = detail
        job.finished_at = self._clock()
        if state == DONE and job.started_at is not None:
            self._durations.append(job.finished_at - job.started_at)
            del self._durations[:-32]  # a short moving window is plenty

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout_s: float = 60.0) -> bool:
        """Stop accepting, wait for queued+running jobs to finish.

        Returns True when everything reached a terminal state in time.
        Queued jobs are *finished*, not dropped — the bounded queue keeps
        the remaining work finite.
        """
        with self._lock:
            self._accepting = False
        deadline = self._clock() + timeout_s
        while self._clock() < deadline:
            with self._lock:
                pending = [
                    job
                    for job in self._jobs.values()
                    if job.state not in _TERMINAL_STATES
                ]
            if not pending:
                return True
            threading.Event().wait(0.05)
        return False

    def shutdown(self, drain: bool = True, timeout_s: float = 60.0) -> bool:
        """Drain (optionally), then stop the worker threads."""
        drained = self.drain(timeout_s=timeout_s) if drain else True
        with self._lock:
            self._accepting = False
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        return drained


class _CancelledExecution(Exception):
    """Internal: the running job's process was terminated by a cancel."""


class _TimedOutExecution(Exception):
    """Internal: the running job's process was terminated by its timeout."""


def _terminate(process: multiprocessing.Process) -> None:
    if process.is_alive():
        process.terminate()
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - defensive
            process.kill()
            process.join(timeout=5.0)


def job_payload_json(job: Job) -> str:
    """The canonical JSON of a job's payload (diagnostics endpoint)."""
    return json.dumps(job.payload, indent=2, sort_keys=True) + "\n"
