"""On-disk content-addressed run store for the ``repro serve`` service.

Every completed job persists as a *bundle directory* keyed by the canonical
SHA-256 digest of its request (the same canonical-JSON + ``sha256`` scheme
the sweep engine uses for per-cell digests — see
:func:`repro.service.store.request_digest` and
:mod:`repro.sweeps.engine`).  Layout::

    <root>/index.json                   # digest -> {bytes, seq, kind, meta}
    <root>/runs/<digest>/digest.json    # the golden-rounded result document
    <root>/runs/<digest>/result.json    # full-precision result (byte witness)
    <root>/runs/<digest>/series.csv     # flattened metric series
    <root>/runs/<digest>/summary.md     # headline markdown table

Scenario bundles are written through
:func:`repro.scenarios.artifacts.run_documents`, so a stored run is
byte-for-byte the layout ``repro scenarios run NAME --out DIR`` exports.

Durability invariants:

* **atomic writes** — a bundle is staged under ``tmp/`` and published with a
  single ``os.replace``; the index is rewritten through a tmp file the same
  way.  A crash can leave stale staging files but never a half-visible run.
* **crash recovery** — on open, leftover staging files are deleted, index
  entries whose bundle directory vanished are dropped, and orphan bundle
  directories not in the index are adopted (re-measured and re-indexed).
* **LRU eviction** — the index carries a logical access sequence (no wall
  clock; the store is deterministic given its call sequence).  When
  ``max_bytes`` is set, publishing a bundle evicts least-recently-used
  entries until the store fits.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from threading import RLock
from typing import Dict, List, Optional

__all__ = ["StoredRun", "RunStore", "request_digest"]

_INDEX_FILENAME = "index.json"
_RUNS_DIRNAME = "runs"
_TMP_DIRNAME = "tmp"
_HEX_DIGEST_LENGTH = 64


def request_digest(payload: Dict[str, object]) -> str:
    """SHA-256 of the canonical JSON of a request payload.

    The store's addressing scheme — identical submissions produce identical
    digests, which is what request-level dedup/caching keys on.  Matches the
    per-cell digest scheme of :mod:`repro.sweeps.engine` (canonical
    ``json.dumps(..., sort_keys=True)`` hashed with SHA-256).
    """
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class StoredRun:
    """One stored bundle: its digest, byte size and caller-provided metadata."""

    digest: str
    bytes: int
    kind: str
    meta: Dict[str, object] = field(default_factory=dict)


class RunStore:
    """Thread-safe content-addressed bundle store with LRU eviction."""

    def __init__(self, root: Path, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive or None")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._lock = RLock()
        self._seq = 0
        self._entries: Dict[str, StoredRun] = {}
        self._access: Dict[str, int] = {}
        #: bundles evicted over this store's lifetime (reported by /stats)
        self.evictions = 0
        self._open()

    # -- filesystem layout ---------------------------------------------------

    @property
    def _index_path(self) -> Path:
        return self.root / _INDEX_FILENAME

    def _runs_dir(self) -> Path:
        return self.root / _RUNS_DIRNAME

    def _tmp_dir(self) -> Path:
        return self.root / _TMP_DIRNAME

    def run_dir(self, digest: str) -> Path:
        """The bundle directory of one digest (exists only once published)."""
        _check_digest(digest)
        return self._runs_dir() / digest

    # -- opening and recovery ------------------------------------------------

    def _open(self) -> None:
        self._runs_dir().mkdir(parents=True, exist_ok=True)
        # Staged-but-unpublished bundles and index tmp files from a crashed
        # process are garbage by definition: publishing is a single rename.
        tmp_dir = self._tmp_dir()
        if tmp_dir.exists():
            shutil.rmtree(tmp_dir)
        tmp_dir.mkdir(parents=True, exist_ok=True)
        document: Dict[str, object] = {}
        if self._index_path.exists():
            try:
                document = json.loads(self._index_path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError):
                document = {}
        raw_entries = document.get("entries", {})
        raw_seq = document.get("seq", 0)
        self._seq = raw_seq if isinstance(raw_seq, int) else 0
        if isinstance(raw_entries, dict):
            for digest, entry in raw_entries.items():
                if not isinstance(entry, dict):
                    continue
                if not self.run_dir(digest).is_dir():
                    continue  # bundle vanished: drop the stale index entry
                self._entries[digest] = StoredRun(
                    digest=digest,
                    bytes=int(entry.get("bytes", 0)),
                    kind=str(entry.get("kind", "scenario")),
                    meta=dict(entry.get("meta", {})),
                )
                self._access[digest] = int(entry.get("seq", 0))
        # Adopt orphan bundles (published bundle, crash before index write).
        for path in sorted(self._runs_dir().iterdir()):
            digest = path.name
            if not path.is_dir() or digest in self._entries:
                continue
            if len(digest) != _HEX_DIGEST_LENGTH:
                continue
            self._seq += 1
            self._entries[digest] = StoredRun(
                digest=digest, bytes=_tree_bytes(path), kind="scenario", meta={}
            )
            self._access[digest] = self._seq
        self._write_index()

    # -- index persistence ---------------------------------------------------

    def _write_index(self) -> None:
        document = {
            "seq": self._seq,
            "entries": {
                digest: {
                    "bytes": entry.bytes,
                    "kind": entry.kind,
                    "meta": entry.meta,
                    "seq": self._access[digest],
                }
                for digest, entry in self._entries.items()
            },
        }
        tmp = self._tmp_dir() / _INDEX_FILENAME
        tmp.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self._index_path)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def total_bytes(self) -> int:
        with self._lock:
            return sum(entry.bytes for entry in self._entries.values())

    def digests(self) -> List[str]:
        """All stored digests, least-recently-used first."""
        with self._lock:
            return sorted(self._entries, key=lambda digest: self._access[digest])

    def get(self, digest: str) -> Optional[StoredRun]:
        """The stored entry (bumping its LRU position), or ``None``."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                return None
            self._seq += 1
            self._access[digest] = self._seq
            self._write_index()
            return entry

    def read_document(self, digest: str, filename: str) -> str:
        """One file of a stored bundle (``KeyError`` when absent)."""
        if "/" in filename or "\\" in filename or filename.startswith("."):
            raise KeyError(f"invalid bundle filename {filename!r}")
        with self._lock:
            if digest not in self._entries:
                raise KeyError(f"no stored run for digest {digest!r}")
            path = self.run_dir(digest) / filename
            if not path.is_file():
                raise KeyError(f"stored run {digest!r} has no document {filename!r}")
            return path.read_text(encoding="utf-8")

    # -- writes --------------------------------------------------------------

    def put(
        self,
        digest: str,
        documents: Dict[str, str],
        kind: str = "scenario",
        meta: Optional[Dict[str, object]] = None,
    ) -> StoredRun:
        """Publish a bundle atomically; idempotent for an existing digest."""
        _check_digest(digest)
        if not documents:
            raise ValueError("a bundle must contain at least one document")
        with self._lock:
            existing = self._entries.get(digest)
            if existing is not None:
                return existing
            staging = self._tmp_dir() / f"put-{digest}"
            if staging.exists():
                shutil.rmtree(staging)
            staging.mkdir(parents=True)
            for filename, text in documents.items():
                if "/" in filename or "\\" in filename:
                    raise ValueError(f"invalid bundle filename {filename!r}")
                (staging / filename).write_text(text, encoding="utf-8")
            final = self.run_dir(digest)
            os.replace(staging, final)
            self._seq += 1
            entry = StoredRun(
                digest=digest,
                bytes=_tree_bytes(final),
                kind=kind,
                meta=dict(meta or {}),
            )
            self._entries[digest] = entry
            self._access[digest] = self._seq
            self._evict_locked(keep=digest)
            self._write_index()
            return entry

    def remove(self, digest: str) -> bool:
        """Delete one bundle (used by eviction and tests); True if present."""
        with self._lock:
            if digest not in self._entries:
                return False
            self._delete_locked(digest)
            self._write_index()
            return True

    def _delete_locked(self, digest: str) -> None:
        path = self.run_dir(digest)
        if path.exists():
            shutil.rmtree(path)
        del self._entries[digest]
        del self._access[digest]

    def _evict_locked(self, keep: str) -> None:
        if self.max_bytes is None:
            return
        total = sum(entry.bytes for entry in self._entries.values())
        for digest in sorted(self._entries, key=lambda d: self._access[d]):
            if total <= self.max_bytes:
                break
            if digest == keep:
                continue  # never evict the bundle being published
            total -= self._entries[digest].bytes
            self._delete_locked(digest)
            self.evictions += 1


def _check_digest(digest: str) -> None:
    if len(digest) != _HEX_DIGEST_LENGTH or not all(
        character in "0123456789abcdef" for character in digest
    ):
        raise ValueError(f"not a canonical sha256 hex digest: {digest!r}")


def _tree_bytes(path: Path) -> int:
    return sum(file.stat().st_size for file in path.rglob("*") if file.is_file())
