"""HTTP API layer of ``repro serve`` (pure stdlib, threaded).

Routes (all JSON unless noted)::

    GET    /healthz                      liveness probe
    GET    /stats                        queue depth, cache hit ratio, workers
    GET    /scenarios                    the scenario registry
    GET    /sweeps                       the sweep registry
    POST   /runs                         submit a scenario run (202; dedupes)
    POST   /sweeps                       submit a sweep grid run (202; dedupes)
    GET    /runs/{id}                    job status + progress
    DELETE /runs/{id}                    cancel a queued/running job
    GET    /runs/{id}/result             golden-rounded result document
    GET    /runs/{id}/payload            the canonical request payload
    GET    /runs/{id}/metrics?series=S   chunk-streamed metric series points
    GET    /runs/{id}/artifacts/{kind}   bundle artifact (csv | json | md)

``POST /runs`` accepts ``{"scenario": NAME}`` or an inline
``{"spec": {...}}`` (a :meth:`ScenarioSpec.to_dict` document) plus optional
``seed`` / ``scale`` / ``shards`` / ``kernel`` / ``timeout_s`` overrides.
Identical submissions dedupe to the same run id; a digest already in the
run store answers instantly with ``"cached": true``.  A full queue answers
``429`` with a ``Retry-After`` header; a draining server answers ``503``.

The server is a :class:`http.server.ThreadingHTTPServer` — requests are
cheap bookkeeping only, all heavy work happens in the
:class:`~repro.service.jobs.JobManager` worker pool.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.config import HOUR
from repro.scenarios.artifacts import ARTIFACT_FILES, DIGEST_FILENAME, RESULT_FILENAME
from repro.scenarios.library import get_scenario, iter_scenarios
from repro.scenarios.spec import ScenarioSpec
from repro.service.jobs import (
    DONE,
    FAILED,
    JobManager,
    QueueFullError,
    ServiceClosedError,
    canonical_scenario_payload,
    canonical_sweep_payload,
    job_payload_json,
    wall_clock,
)
from repro.service.store import RunStore

__all__ = ["ServiceConfig", "ReproService"]

_MAX_BODY_BYTES = 4 * 1024 * 1024
_RUN_PATH = re.compile(r"^/runs/(?P<id>[0-9a-f]{16,64})(?P<rest>/.*)?$")


class ApiError(Exception):
    """An error response: HTTP status + JSON body (+ optional headers)."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}
        self.extra = extra or {}


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to boot one service instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: pick an ephemeral port (reported once bound)
    workers: Optional[int] = None  # None: CPU-affinity default, capped at 4
    max_queue: int = 16
    store_dir: Path = field(default_factory=lambda: Path("run-store"))
    store_max_bytes: Optional[int] = None
    #: per-job wall-clock timeout; None disables (jobs are finite anyway)
    timeout_s: Optional[float] = 1 * HOUR
    #: log requests to stderr (quiet by default: tests drive the API hard)
    verbose: bool = False


class _ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server carrying its owning :class:`ReproService`."""

    daemon_threads = True
    allow_reuse_address = True
    service: "ReproService"


class ReproService:
    """One live service instance: store + job manager + HTTP server."""

    def __init__(
        self,
        config: ServiceConfig,
        executor: Optional[Callable[..., Dict[str, str]]] = None,
        clock: Callable[[], float] = wall_clock,
    ) -> None:
        self.config = config
        self.store = RunStore(config.store_dir, max_bytes=config.store_max_bytes)
        self.manager = JobManager(
            self.store,
            workers=config.workers,
            max_queue=config.max_queue,
            timeout_s=config.timeout_s,
            clock=clock,
            executor=executor,
        )
        self._clock = clock
        self._started_at = clock()
        self._httpd: Optional[_ServiceHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind the listening socket and serve requests on a daemon thread."""
        if self._httpd is not None:
            raise RuntimeError("service already started")
        httpd = _ServiceHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        httpd.service = self
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._httpd is None:
            raise RuntimeError("service not started")
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def stop(self, drain: bool = True, timeout_s: float = 60.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight jobs.

        Returns True when every job reached a terminal state in time.  The
        run store is already durable at this point (every completed job was
        published atomically), so a drained exit loses nothing.
        """
        drained = self.manager.shutdown(drain=drain, timeout_s=timeout_s)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        return drained

    # -- request handling (called from handler threads) ----------------------

    def handle(
        self, method: str, path: str, query: Dict[str, List[str]], body: bytes
    ) -> Tuple[int, Dict[str, str], object]:
        """Dispatch one request; returns ``(status, headers, body_document)``.

        ``body_document`` is JSON-serialised by the handler unless it is a
        :class:`_Raw` (pre-serialised text) or :class:`_Stream` (chunked).
        """
        if method == "GET" and path == "/healthz":
            return 200, {}, {"status": "ok", "uptime_s": self._clock() - self._started_at}
        if method == "GET" and path == "/stats":
            return 200, {}, self._stats()
        if method == "GET" and path == "/scenarios":
            return 200, {}, self._scenarios()
        if method == "GET" and path == "/sweeps":
            return 200, {}, self._sweeps()
        if method == "POST" and path == "/runs":
            return self._submit_run(body)
        if method == "POST" and path == "/sweeps":
            return self._submit_sweep(body)
        match = _RUN_PATH.match(path)
        if match is not None:
            return self._dispatch_run(
                method, match.group("id"), match.group("rest") or "", query
            )
        raise ApiError(404, f"no route for {method} {path}")

    # -- registry listings ---------------------------------------------------

    def _scenarios(self) -> Dict[str, object]:
        return {
            "scenarios": [
                {
                    "name": spec.name,
                    "tier": spec.tier,
                    "systems": list(spec.systems),
                    "duration_hours": spec.duration_s / HOUR,
                    "description": spec.description,
                }
                for spec in iter_scenarios()
            ]
        }

    def _sweeps(self) -> Dict[str, object]:
        from repro.sweeps.library import iter_sweeps

        return {
            "sweeps": [
                {
                    "name": sweep.name,
                    "base": sweep.base,
                    "cells": sweep.num_cells,
                    "grid": list(sweep.grid_shape),
                    "description": sweep.description,
                }
                for sweep in iter_sweeps()
            ]
        }

    def _stats(self) -> Dict[str, object]:
        document = self.manager.stats()
        document["store"] = {
            "entries": len(self.store),
            "bytes": self.store.total_bytes(),
            "max_bytes": self.store.max_bytes,
            "evictions": self.store.evictions,
        }
        document["uptime_s"] = self._clock() - self._started_at
        return document

    # -- submissions ---------------------------------------------------------

    def _submit_run(self, body: bytes) -> Tuple[int, Dict[str, str], object]:
        document = _parse_json_object(body)
        scenario = document.get("scenario")
        inline_spec = document.get("spec")
        if (scenario is None) == (inline_spec is None):
            raise ApiError(
                400, "provide exactly one of 'scenario' (a registered name) "
                     "or 'spec' (an inline ScenarioSpec document)"
            )
        try:
            if scenario is not None:
                spec = get_scenario(str(scenario))
            else:
                if not isinstance(inline_spec, dict):
                    raise ValueError("'spec' must be a JSON object")
                spec = ScenarioSpec.from_dict(inline_spec)
            scale = _opt_float(document, "scale")
            payload = canonical_scenario_payload(
                spec,
                seed=_opt_int(document, "seed"),
                scale=1.0 if scale is None else scale,
                shards=_opt_int(document, "shards"),
                kernel=bool(document.get("kernel", False)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ApiError(400, f"invalid run request: {_error_text(error)}") from None
        return self._enqueue(
            payload, label=spec.name, timeout_s=_opt_float(document, "timeout_s")
        )

    def _submit_sweep(self, body: bytes) -> Tuple[int, Dict[str, str], object]:
        document = _parse_json_object(body)
        name = document.get("sweep")
        if not isinstance(name, str) or not name:
            raise ApiError(400, "provide 'sweep': the registered sweep name")
        try:
            scale = _opt_float(document, "scale")
            payload = canonical_sweep_payload(
                name,
                seed=_opt_int(document, "seed"),
                scale=1.0 if scale is None else scale,
            )
            jobs = _opt_int(document, "jobs")
        except (KeyError, TypeError, ValueError) as error:
            raise ApiError(400, f"invalid sweep request: {_error_text(error)}") from None
        execution = {} if jobs is None else {"jobs": jobs}
        return self._enqueue(
            payload,
            label=name,
            execution=execution,
            timeout_s=_opt_float(document, "timeout_s"),
        )

    def _enqueue(
        self,
        payload: Dict[str, object],
        label: str,
        execution: Optional[Dict[str, object]] = None,
        timeout_s: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], object]:
        try:
            job, cached = self.manager.submit(
                payload, label=label, execution=execution, timeout_s=timeout_s
            )
        except QueueFullError as error:
            raise ApiError(
                429,
                str(error),
                headers={"Retry-After": str(error.retry_after_s)},
                extra={"retry_after_s": error.retry_after_s},
            ) from None
        except ServiceClosedError as error:
            raise ApiError(503, str(error)) from None
        status = 200 if cached and job.state == DONE else 202
        return (
            status,
            {"Location": f"/runs/{job.id}"},
            {
                "id": job.id,
                "state": job.state,
                "cached": cached,
                "digest": job.digest,
                "location": f"/runs/{job.id}",
            },
        )

    # -- per-run routes ------------------------------------------------------

    def _dispatch_run(
        self, method: str, run_id: str, rest: str, query: Dict[str, List[str]]
    ) -> Tuple[int, Dict[str, str], object]:
        job = self.manager.get(run_id)
        if job is None:
            raise ApiError(404, f"unknown run id {run_id!r}")
        if method == "DELETE" and not rest:
            cancelled = self.manager.cancel(run_id)
            assert cancelled is not None
            return 200, {}, cancelled.to_dict(clock_now=self._clock())
        if method != "GET":
            raise ApiError(405, f"{method} not allowed on /runs/{run_id}{rest}")
        if not rest:
            document = job.to_dict(clock_now=self._clock())
            document["links"] = {
                "result": f"/runs/{job.id}/result",
                "metrics": f"/runs/{job.id}/metrics",
                "artifacts": {
                    kind: f"/runs/{job.id}/artifacts/{kind}"
                    for kind in sorted(ARTIFACT_FILES)
                },
            }
            return 200, {}, document
        if rest == "/payload":
            return 200, {}, _Raw(job_payload_json(job), "application/json")
        if job.state != DONE:
            if job.state == FAILED:
                raise ApiError(
                    409,
                    f"run {job.id} failed",
                    extra={"state": job.state, "detail": job.detail},
                )
            raise ApiError(
                409, f"run {job.id} is {job.state}", extra={"state": job.state}
            )
        if rest == "/result":
            return 200, {}, _Raw(
                self.store.read_document(job.digest, DIGEST_FILENAME),
                "application/json",
            )
        if rest == "/metrics":
            return self._metrics(job.digest, query)
        artifact = re.match(r"^/artifacts/(?P<kind>[a-z]+)$", rest)
        if artifact is not None:
            kind = artifact.group("kind")
            filename = ARTIFACT_FILES.get(kind)
            if filename is None:
                raise ApiError(
                    404,
                    f"unknown artifact kind {kind!r}; "
                    f"expected one of {sorted(ARTIFACT_FILES)}",
                )
            content_type = {
                "csv": "text/csv",
                "json": "application/json",
                "md": "text/markdown",
            }[kind]
            return 200, {}, _Raw(
                self.store.read_document(job.digest, filename), content_type
            )
        raise ApiError(404, f"no route for GET /runs/{run_id}{rest}")

    def _metrics(
        self, digest: str, query: Dict[str, List[str]]
    ) -> Tuple[int, Dict[str, str], object]:
        document = json.loads(self.store.read_document(digest, RESULT_FILENAME))
        systems = document.get("systems", {})
        system = query.get("system", ["flower"])[0]
        if system not in systems:
            raise ApiError(
                404, f"no system {system!r} in this run; have {sorted(systems)}"
            )
        series_map = systems[system].get("series", {})
        names = query.get("series")
        if not names:
            return 200, {}, {"system": system, "series": sorted(series_map)}
        name = names[0]
        if name not in series_map:
            raise ApiError(
                404, f"no series {name!r} for {system!r}; have {sorted(series_map)}"
            )
        points = series_map[name]

        def chunks() -> "List[str]":
            return [
                json.dumps({"t": point[0], "v": point[1]}, sort_keys=True) + "\n"
                for point in points
            ]

        return 200, {}, _Stream(chunks, "application/x-ndjson")


# -- response value types ------------------------------------------------------


class _Raw:
    """A pre-serialised response body with its content type."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


class _Stream:
    """A chunk-streamed response: a thunk yielding text chunks."""

    __slots__ = ("chunks", "content_type")

    def __init__(self, chunks: Callable[[], List[str]], content_type: str) -> None:
        self.chunks = chunks
        self.content_type = content_type


# -- the request handler -------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    @property
    def _service(self) -> ReproService:
        server = self.server
        assert isinstance(server, _ServiceHTTPServer)
        return server.service

    def log_message(self, format: str, *args: object) -> None:
        if self._service.config.verbose:
            super().log_message(format, *args)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", "0") or "0")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise ApiError(413, f"request body too large ({length} bytes)")
        return self.rfile.read(length) if length else b""

    def _respond(self, status: int, headers: Dict[str, str], document: object) -> None:
        if isinstance(document, _Stream):
            self.send_response(status)
            self.send_header("Content-Type", document.content_type)
            self.send_header("Transfer-Encoding", "chunked")
            for key, value in headers.items():
                self.send_header(key, value)
            self.end_headers()
            for chunk in document.chunks():
                data = chunk.encode("utf-8")
                self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
                self.wfile.write(data + b"\r\n")
            self.wfile.write(b"0\r\n\r\n")
            return
        if isinstance(document, _Raw):
            payload = document.text.encode("utf-8")
            content_type = document.content_type
        else:
            payload = (
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            ).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for key, value in headers.items():
            self.send_header(key, value)
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(payload)

    def _handle(self, method: str) -> None:
        try:
            split = urlsplit(self.path)
            body = self._read_body()
            status, headers, document = self._service.handle(
                method, split.path, parse_qs(split.query), body
            )
            self._respond(status, headers, document)
        except ApiError as error:
            error_document: Dict[str, object] = {"error": error.message}
            error_document.update(error.extra)
            self._respond(error.status, error.headers, error_document)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response
        except Exception as error:  # never let a handler bug kill the thread
            self._respond(500, {}, {"error": f"internal error: {_error_text(error)}"})

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming convention
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def do_HEAD(self) -> None:  # noqa: N802
        self._handle("GET")


# -- small parsing helpers -----------------------------------------------------


def _parse_json_object(body: bytes) -> Dict[str, object]:
    if not body:
        raise ApiError(400, "a JSON request body is required")
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ApiError(400, f"request body is not valid JSON: {error}") from None
    if not isinstance(document, dict):
        raise ApiError(400, "request body must be a JSON object")
    return document


def _opt_int(document: Dict[str, object], key: str) -> Optional[int]:
    value = document.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{key!r} must be an integer")
    return value


def _opt_float(document: Dict[str, object], key: str) -> Optional[float]:
    value = document.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{key!r} must be a number")
    return float(value)


def _error_text(error: BaseException) -> str:
    return str(error) or error.__class__.__name__
