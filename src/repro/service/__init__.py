"""Live service tier: the ``repro serve`` HTTP job service.

Three layers, each its own module:

* :mod:`repro.service.server` — the stdlib HTTP API
  (:class:`ReproService` + :class:`ServiceConfig`);
* :mod:`repro.service.jobs` — bounded queue, process worker pool,
  digest-keyed dedup (:class:`JobManager`);
* :mod:`repro.service.store` — on-disk content-addressed run cache
  (:class:`RunStore`).

Everything executes through :class:`repro.session.Session`, so a service
run is byte-identical to the equivalent CLI run by construction.
"""

from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
    JobManager,
    QueueFullError,
    ServiceClosedError,
    canonical_scenario_payload,
    canonical_sweep_payload,
    execute_request,
)
from repro.service.server import ReproService, ServiceConfig
from repro.service.store import RunStore, StoredRun, request_digest

__all__ = [
    "ReproService",
    "ServiceConfig",
    "JobManager",
    "Job",
    "QueueFullError",
    "ServiceClosedError",
    "RunStore",
    "StoredRun",
    "request_digest",
    "canonical_scenario_payload",
    "canonical_sweep_payload",
    "execute_request",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "JOB_STATES",
]
