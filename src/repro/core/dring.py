"""D-ring: the structured directory overlay (Section 3).

The D-ring embeds one directory peer per (website, locality) pair into a
standard DHT (Chord here) using the engineered identifiers of
:class:`repro.core.keys.KeyScheme`.  Routing uses Algorithm 2: the standard
per-hop lookup plus, when the candidate's website ID differs from the key's,
a conditional lookup restricted to nodes of the same website, which keeps a
query for website ``ws`` inside ``ws``'s directory peers even when the exact
``d(ws, loc)`` is missing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.keys import KeyScheme
from repro.overlay.chord import ChordRing
import random

from repro.overlay.router import (
    KBRRouter,
    LatencyCallback,
    RouteResult,
    RoutingPolicy,
)


@dataclass(frozen=True)
class DirectoryPlacement:
    """Where one directory peer sits on the D-ring."""

    website: str
    locality: int
    node_id: int
    peer_id: str


class DRing:
    """The directory overlay: engineered IDs over a Chord ring."""

    __slots__ = ("_keys", "_ring", "_router", "_placements", "_by_pair")

    def __init__(
        self,
        keys: KeyScheme,
        latency_callback: Optional[LatencyCallback] = None,
        successor_list_size: int = 4,
        # Nominally Chord; any overlay with the same surface works
        # (PastryRing duck-types, exactly as KBRRouter accepts it).
        ring: Optional[ChordRing] = None,
    ) -> None:
        """Create a D-ring over a structured overlay.

        ``ring`` may be any overlay exposing the ChordRing surface (join,
        leave, fail, stabilize, owner_of, node, live_ids) — Section 3.1's
        "any existing structured overlay".  The default is Chord, as in the
        paper's evaluation; :class:`repro.overlay.pastry.PastryRing` is the
        other substrate shipped with this reproduction.
        """
        self._keys = keys
        self._ring = ring if ring is not None else ChordRing(
            keys.idspace, successor_list_size=successor_list_size
        )
        self._router = KBRRouter(self._ring, latency_callback=latency_callback)
        self._placements: Dict[int, DirectoryPlacement] = {}
        self._by_pair: Dict[tuple[str, int], DirectoryPlacement] = {}

    # -- accessors ----------------------------------------------------------

    @property
    def keys(self) -> KeyScheme:
        return self._keys

    @property
    def ring(self) -> ChordRing:
        return self._ring

    @property
    def router(self) -> KBRRouter:
        return self._router

    @property
    def size(self) -> int:
        return len(self._ring)

    def placements(self) -> Sequence[DirectoryPlacement]:
        return tuple(self._placements.values())

    def placement_for(self, website: str, locality: int) -> Optional[DirectoryPlacement]:
        return self._by_pair.get((website, locality))

    def placement_at(self, node_id: int) -> Optional[DirectoryPlacement]:
        return self._placements.get(node_id)

    def directory_peer_id(self, website: str, locality: int) -> Optional[str]:
        placement = self.placement_for(website, locality)
        return placement.peer_id if placement else None

    # -- membership -----------------------------------------------------------

    def register_directory(self, website: str, locality: int, peer_id: str) -> DirectoryPlacement:
        """Join the D-ring as the directory peer of ``(website, locality)``."""
        node_id = self._keys.key_for(website, locality)
        if node_id in self._ring:
            existing = self._placements.get(node_id)
            owner = existing.peer_id if existing else "an unknown peer"
            raise ValueError(
                f"directory position for ({website}, {locality}) is already held by {owner}"
            )
        self._ring.join(node_id, peer_name=peer_id)
        placement = DirectoryPlacement(
            website=website, locality=locality, node_id=node_id, peer_id=peer_id
        )
        self._placements[node_id] = placement
        self._by_pair[(website, locality)] = placement
        return placement

    def remove_directory(self, website: str, locality: int, failed: bool = False) -> None:
        """Remove a directory peer, gracefully or after a failure."""
        placement = self._by_pair.pop((website, locality), None)
        if placement is None:
            return
        del self._placements[placement.node_id]
        if failed:
            self._ring.fail(placement.node_id)
        else:
            self._ring.leave(placement.node_id)

    def replace_directory(self, website: str, locality: int, new_peer_id: str) -> DirectoryPlacement:
        """Install ``new_peer_id`` at the (unchanged) identifier of ``(website, locality)``.

        This is the paper's replacement strategy (Section 5.2): the replacing
        content peer takes over the *same* engineered identifier, then the
        usual stabilisation repairs the routing tables — which
        :class:`~repro.overlay.chord.ChordRing` does on join.
        """
        if (website, locality) in self._by_pair:
            self.remove_directory(website, locality)
        self._ring.stabilize()
        return self.register_directory(website, locality, new_peer_id)

    # -- routing (Algorithm 2) ----------------------------------------------------

    def route_query(
        self, website: str, locality: int, start_node_id: Optional[int] = None
    ) -> RouteResult:
        """Route a query for ``(website, locality)`` through the D-ring.

        ``start_node_id`` identifies the D-ring node at which the new client's
        query enters the overlay (its bootstrap contact); when omitted the
        message starts at the live node closest to the key, modelling a client
        whose bootstrap node happens to be the right directory peer.
        """
        key = self._keys.key_for(website, locality)
        if start_node_id is None:
            owner = self._ring.owner_of(key)
            if owner is None:
                raise RuntimeError("cannot route on an empty D-ring")
            start_node_id = owner.node_id
        return self._router.route(
            start_node_id,
            key,
            policy=RoutingPolicy.CONSTRAINED,
            constraint=self._keys.website_constraint(key),
        )

    def resolve_directory(self, website: str, locality: int,
                          start_node_id: Optional[int] = None) -> tuple[Optional[DirectoryPlacement], RouteResult]:
        """Route to the directory peer in charge of ``(website, locality)``.

        Returns the placement of the node that delivered the message (which is
        ``d(website, locality)`` when it is present, else another directory
        peer of the same website thanks to Algorithm 2) plus the route taken.
        """
        result = self.route_query(website, locality, start_node_id=start_node_id)
        return self._placements.get(result.destination), result

    # -- neighbourhood ---------------------------------------------------------------

    def neighbors_of(self, website: str, locality: int) -> List[DirectoryPlacement]:
        """The directory peers adjacent on the ring that serve the same website.

        With the engineered identifiers the directory peers of one website are
        consecutive, so the D-ring neighbours of ``d(ws, loc)`` that matter for
        directory summaries are ``d(ws, loc-1)`` and ``d(ws, loc+1)`` when they
        exist (Figure 4 keeps summaries for exactly those two).
        """
        neighbors: List[DirectoryPlacement] = []
        num_localities = max(
            (p.locality for p in self._by_pair.values() if p.website == website), default=-1
        ) + 1
        if num_localities <= 1:
            return neighbors
        for delta in (-1, 1):
            neighbor_loc = (locality + delta) % num_localities
            if neighbor_loc == locality:
                continue
            placement = self._by_pair.get((website, neighbor_loc))
            if placement is not None and placement not in neighbors:
                neighbors.append(placement)
        return neighbors

    def website_directories(self, website: str) -> List[DirectoryPlacement]:
        return sorted(
            (p for p in self._by_pair.values() if p.website == website),
            key=lambda p: p.locality,
        )

    def random_bootstrap_node(self, rng: random.Random) -> Optional[int]:
        """A random live D-ring node, used as the entry point of new clients."""
        live = self._ring.live_ids()
        if not live:
            return None
        return rng.choice(live)
