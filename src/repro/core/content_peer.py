"""Content peers and the gossip protocol of the content overlays.

A content peer ``c(ws, loc)`` stores objects of website ``ws`` it has
requested, summarises them with a Bloom filter and maintains a bounded
partial *view* of its content overlay whose entries carry the partner's
content summary and an age (Section 4.2).  This module implements:

* the peer's local state (content list, view, directory-peer entry);
* Algorithm 4 — the active and passive gossip behaviour;
* Algorithm 5 — the push behaviour towards the directory peer;
* local query resolution over the view summaries (Section 4.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import FlowerConfig
from repro.datastructures.aged_view import AgedEntry, AgedView
from repro.datastructures.bloom import BloomFilter, entries_maybe_containing
from repro.datastructures.lru import LRUCache
from repro.workload.catalog import ObjectId

#: C-level sort key for "youngest first, contact as tie-break" orderings
_AGE_THEN_CONTACT = attrgetter("age", "contact")


@dataclass(frozen=True, slots=True)
class GossipMessage:
    """One gossip message: the sender's current summary plus a view subset."""

    sender: str
    content_summary: BloomFilter
    view_subset: Tuple[AgedEntry[BloomFilter], ...]

    @property
    def num_entries(self) -> int:
        return len(self.view_subset)


@dataclass(frozen=True, slots=True)
class PushMessage:
    """A one-way push of content-list changes towards the directory peer."""

    sender: str
    added: Tuple[ObjectId, ...]
    removed: Tuple[ObjectId, ...]

    @property
    def num_changes(self) -> int:
        return len(self.added) + len(self.removed)


@dataclass(slots=True)
class ContentPeer:
    """State and behaviour of one content peer ``c(ws, loc)``."""

    peer_id: str
    host_id: int
    website: str
    locality: int
    config: FlowerConfig
    directory_peer_id: Optional[str] = None

    # internal state -----------------------------------------------------------
    _objects: Set[ObjectId] = field(default_factory=set, init=False, repr=False)
    _cache: Optional[LRUCache] = field(default=None, init=False, repr=False)
    _view: AgedView = field(init=False, repr=False)
    _directory_age: int = field(default=0, init=False, repr=False)
    _pending_added: Set[ObjectId] = field(default_factory=set, init=False, repr=False)
    _pending_removed: Set[ObjectId] = field(default_factory=set, init=False, repr=False)
    _summary_cache: Optional[BloomFilter] = field(default=None, init=False, repr=False)
    #: True once the cached summary has been handed out (gossip messages and
    #: view entries hold references); further changes must copy-on-write so
    #: escaped snapshots never mutate.
    _summary_escaped: bool = field(default=False, init=False, repr=False)
    alive: bool = field(default=True, init=False)
    #: statistics used by tests and experiment diagnostics
    gossip_initiated: int = field(default=0, init=False)
    gossip_received: int = field(default=0, init=False)
    pushes_sent: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._view = AgedView(capacity=self.config.gossip.view_size)
        if self.config.content_cache_capacity is not None:
            self._cache = LRUCache(self.config.content_cache_capacity)

    # -- content management -------------------------------------------------

    @property
    def objects(self) -> Set[ObjectId]:
        return set(self._objects)

    @property
    def num_objects(self) -> int:
        return len(self._objects)

    def has_object(self, object_id: ObjectId) -> bool:
        return object_id in self._objects

    def store_object(self, object_id: ObjectId) -> None:
        """Keep a copy of a served object; records the change for the next push."""
        if object_id in self._objects:
            return
        if self._cache is not None:
            evicted = self._cache.put(object_id, True)
            if evicted is not None:
                evicted_id = evicted[0]
                self._objects.discard(evicted_id)
                self._record_change(removed=evicted_id)
        self._objects.add(object_id)
        self._record_change(added=object_id)

    def drop_object(self, object_id: ObjectId) -> None:
        if object_id not in self._objects:
            return
        self._objects.discard(object_id)
        if self._cache is not None:
            self._cache.remove(object_id)
        self._record_change(removed=object_id)

    def _record_change(
        self, added: Optional[ObjectId] = None, removed: Optional[ObjectId] = None
    ) -> None:
        if added is not None:
            # Bloom filters are add-only, so the cached summary can absorb a
            # new object incrementally instead of being rebuilt from scratch
            # (bit-identical result: OR is commutative and each object is
            # recorded exactly once).  If the cache has escaped — a gossip
            # message or a partner's view holds a reference — mutate a copy,
            # so handed-out summaries stay the snapshots they were.
            cache = self._summary_cache
            if cache is not None:
                if self._summary_escaped:
                    cache = cache.copy()
                    self._summary_cache = cache
                    self._summary_escaped = False
                cache.add(added)
            self._pending_removed.discard(added)
            self._pending_added.add(added)
        if removed is not None:
            # Removal cannot be expressed on a Bloom filter: force a rebuild.
            self._summary_cache = None
            self._summary_escaped = False
            self._pending_added.discard(removed)
            self._pending_removed.add(removed)

    def content_summary(self) -> BloomFilter:
        """The current content summary (a Bloom filter of all stored object IDs).

        The filter is maintained incrementally: newly stored objects are added
        in place (copy-on-write once a reference has been handed out), and a
        full rebuild only happens after a drop.  Callers receive a snapshot:
        summaries embedded in gossip messages never change retroactively.
        """
        if self._summary_cache is None:
            self._summary_cache = BloomFilter.from_items(
                self._objects, num_bits=self.config.summary_bits
            )
        self._summary_escaped = True
        return self._summary_cache

    # -- view management ------------------------------------------------------

    @property
    def view(self) -> AgedView:
        return self._view

    @property
    def view_contacts(self) -> Sequence[str]:
        return self._view.contacts()

    def initialize_view(self, entries: Iterable[AgedEntry[BloomFilter]]) -> None:
        """Seed the view from the serving peer's view or the directory index.

        Per Section 4.2, the view of a joining peer is a subset of either the
        serving content peer's view (with summaries) or the directory index
        (addresses only — summaries fill in through later gossip).
        """
        self._view.merge(entries, self_contact=self.peer_id)

    def note_directory(self, directory_peer_id: str) -> None:
        """Track the current directory peer of the overlay (special view entry)."""
        self.directory_peer_id = directory_peer_id
        self._directory_age = 0

    def increment_ages(self) -> None:
        """The periodic (per ``Tgossip``) ageing of every view entry."""
        self._view.increment_ages()
        self._directory_age += 1

    @property
    def directory_age(self) -> int:
        return self._directory_age

    # -- local query resolution (Section 4.1) ------------------------------------

    def resolve_locally(self, object_id: ObjectId) -> List[str]:
        """Contacts whose gossiped summaries may hold ``object_id``, best first.

        The peer's own storage is checked by the caller; this method only
        consults the view.  Candidates are ordered youngest entry first since
        fresher summaries are less likely to be stale.
        """
        # Hot path: probe every summary with one precomputed mask instead of
        # one membership call per view entry.
        candidates = entries_maybe_containing(self._view, object_id)
        candidates.sort(key=_AGE_THEN_CONTACT)
        return [entry.contact for entry in candidates]

    # -- Algorithm 4: gossip behaviour ----------------------------------------------

    def select_gossip_partner(self) -> Optional[str]:
        """The oldest contact in the view (active behaviour's partner choice)."""
        oldest = self._view.select_oldest()
        return oldest.contact if oldest else None

    def build_gossip_message(self, rng: Optional[random.Random] = None) -> GossipMessage:
        """Build the message sent in an exchange: own summary + ``Lgossip`` entries."""
        subset = self._view.select_subset(self.config.gossip.gossip_length, rng=rng)
        return GossipMessage(
            sender=self.peer_id,
            content_summary=self.content_summary(),
            view_subset=tuple(subset),
        )

    def apply_gossip(self, message: GossipMessage) -> None:
        """Merge a partner's message into the view (both active and passive paths).

        The partner's own entry is written unconditionally (age 0, current
        summary) as in Algorithm 4's ``viewEntry`` step; the forwarded view
        subset goes through the duplicate-resolving merge.
        """
        self._view.merge(message.view_subset, self_contact=self.peer_id)
        if message.sender != self.peer_id:
            self._view.put(
                AgedEntry(contact=message.sender, age=0, payload=message.content_summary)
            )

    def handle_gossip(
        self, message: GossipMessage, rng: Optional[random.Random] = None
    ) -> GossipMessage:
        """Passive behaviour: receive a gossip message and answer with our own."""
        reply = self.build_gossip_message(rng=rng)
        self.apply_gossip(message)
        self.gossip_received += 1
        return reply

    # -- Algorithm 5: push behaviour ---------------------------------------------------

    def pending_change_fraction(self) -> float:
        """Fraction of the content list affected by unpushed changes.

        NOTE: ``FlowerCDN._maybe_push`` inlines this computation (together
        with :meth:`needs_push`) on its hot path — keep the two in sync.
        """
        if not self._objects and not self._pending_removed:
            return 0.0
        base = max(1, len(self._objects))
        return (len(self._pending_added) + len(self._pending_removed)) / base

    def needs_push(self) -> bool:
        """True when the accumulated changes reach the push threshold.

        NOTE: inlined by ``FlowerCDN._maybe_push`` — keep the two in sync.
        """
        changes = len(self._pending_added) + len(self._pending_removed)
        if changes == 0:
            return False
        return self.pending_change_fraction() >= self.config.gossip.push_threshold

    def build_push(self) -> PushMessage:
        """Extract the delta list and reset the change counter (Algorithm 5)."""
        push = PushMessage(
            sender=self.peer_id,
            added=tuple(sorted(self._pending_added)),
            removed=tuple(sorted(self._pending_removed)),
        )
        self._pending_added.clear()
        self._pending_removed.clear()
        self._directory_age = 0
        self.pushes_sent += 1
        return push

    # -- failure handling ------------------------------------------------------------

    def forget_contact(self, peer_id: str) -> None:
        """Drop a contact detected as dead (or having changed locality)."""
        self._view.remove(peer_id)
        if self.directory_peer_id == peer_id:
            self.directory_peer_id = None

    def fail(self) -> None:
        self.alive = False

    def recover(self) -> None:
        self.alive = True
