"""The Flower-CDN system: D-ring + content overlays on the simulation substrate.

:class:`FlowerCDN` wires everything together:

* at bootstrap it places one directory peer per (website, locality) pair on
  the D-ring ("experiments start with a stable D-ring ... with an empty
  directory", Section 6.1) and starts their periodic maintenance;
* :meth:`FlowerCDN.handle_query` processes one client query end to end —
  either through the D-ring (new clients, Section 3.4) or inside the client's
  content overlay (existing content peers, Section 4.1) — and returns the
  :class:`~repro.metrics.collectors.QueryRecord` the evaluation needs;
* content peers created on the way are given periodic gossip and keepalive
  processes (Algorithms 4 and 5), whose traffic is charged to the
  :class:`~repro.metrics.collectors.BandwidthAccountant`;
* directory failures are repaired with the replacement protocol of
  Section 5.2;
* an optional :class:`~repro.network.reachability.ReachabilityModel`
  (attached via :meth:`FlowerCDN.attach_reachability`) gates every protocol
  message — gossip, keepalives, pushes, queries, redirections, D-ring
  summaries, replication — enabling partitions, outages and message loss;
  without one attached every gate site short-circuits on a ``None`` check
  and runs remain byte-identical to the ungated code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.columns import KernelContentPeer, KernelDirectoryPeer
from repro.core.config import FlowerConfig
from repro.core.content_peer import ContentPeer, PushMessage
from repro.core.directory_peer import DirectoryPeer
from repro.core.dring import DRing
from repro.core.keys import KeyScheme
from repro.datastructures.aged_view import AgedEntry
from repro.metrics.collectors import (
    BandwidthAccountant,
    MetricsCollector,
    QueryOutcome,
    QueryRecord,
)
from repro.metrics.resilience import summarise_resilience
from repro.network.latency import LatencyModel
from repro.network.reachability import DeliveryStats, ReachabilityModel
from repro.network.topology import Topology
from repro.overlay.pastry import PastryRing
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.workload.assignment import ResolvedQuery
from repro.workload.catalog import Catalog, ObjectId


@dataclass(slots=True)
class _DirectoryFlowResult:
    """Internal result of running Algorithm 3 from a starting directory peer."""

    outcome: QueryOutcome
    provider: Optional[str]
    provider_host: Optional[int]
    latency_ms: float
    redirection_failures: int
    serving_directory: Optional[str]


@dataclass
class OverlayStats:
    """Diagnostic snapshot of one content overlay."""

    website: str
    locality: int
    num_content_peers: int
    directory_peer: Optional[str]
    directory_index_size: int
    unique_objects_indexed: int


class FlowerCDN:
    """A complete simulated Flower-CDN deployment."""

    def __init__(
        self,
        config: FlowerConfig,
        sim: Simulator,
        topology: Topology,
        latency_model: Optional[LatencyModel] = None,
        catalog: Optional[Catalog] = None,
        compact_metrics: bool = False,
        kernel: bool = False,
        owned_websites: Optional[frozenset] = None,
    ) -> None:
        self.config = config
        #: space-sharding support: when set, only these websites get real
        #: directory/content peers and background processes; every other
        #: website's directory placements are still registered as "ghosts"
        #: (D-ring nodes, latency entries, reserved hosts) so ring routing,
        #: bootstrap-node choice and client assignment match an unsharded
        #: deployment exactly.  ``None`` (the default) owns everything.
        self._owned_websites = (
            frozenset(owned_websites) if owned_websites is not None else None
        )
        #: backend toggle: the columnar kernel stores peer views, summaries
        #: and directory indexes as packed columns (see repro.core.columns)
        #: while sharing this class's orchestration; runs are digest-identical
        #: across backends, the kernel is just faster at scale.
        self.kernel = kernel
        self._content_cls = KernelContentPeer if kernel else ContentPeer
        self._directory_cls = KernelDirectoryPeer if kernel else DirectoryPeer
        self.sim = sim
        self.topology = topology
        self.latency = latency_model or LatencyModel(topology)
        self.catalog = catalog or Catalog.synthetic(
            config.num_websites, config.objects_per_website
        )
        self.keys = KeyScheme(config.website_bits, config.locality_bits)
        if config.dht_substrate == "pastry":
            substrate = PastryRing(self.keys.idspace)
        else:
            substrate = None  # DRing defaults to Chord, as in the paper's evaluation
        # Bind the latency oracles once: these run on every lookup hop, and a
        # direct bound method skips an intermediate Python frame per call.
        self._peer_latency = self.latency.latency_ms
        self._host_latency = self.topology.latency_ms
        # Per-query constants, bound once instead of chased through attribute
        # chains in the hottest function (`_handle_content_peer_query`).
        self._max_redirects = config.max_redirection_attempts
        self._server_latency_ms = self.latency.server_latency_ms
        self._directory_fallback = config.content_miss_fallback == "directory"
        # Fixed-size background messages, priced once instead of per tick.
        self._gossip_message_bytes = config.message_sizes.gossip_message_bytes(
            config.summary_bits, config.gossip.gossip_length
        )
        self._keepalive_bytes = config.message_sizes.keepalive_bytes()
        self._summary_refresh_bytes = config.message_sizes.summary_refresh_bytes(
            config.summary_bits
        )
        # Gossip subset draws are scoped per content overlay and bootstrap
        # draws per website: identically-named streams yield identical
        # sequences in any process, which is what makes a space-sharded run
        # reproduce the single-process draw sequences exactly.
        self._gossip_subset_rngs: Dict[Tuple[str, int], random.Random] = {}
        #: optional transit filter for gossip exchanges: a callable
        #: ``(initiator, partner) -> bool`` consulted once per attempted
        #: exchange; returning False drops the message in transit (no view
        #: update, no bandwidth).  ``None`` (the default) costs one attribute
        #: check per tick and keeps runs byte-identical — the hook the
        #: "gossip-loss" fault model attaches through.
        self.gossip_message_filter: Optional[Callable[[ContentPeer, ContentPeer], bool]] = None
        #: optional message-delivery gate (see repro.network.reachability):
        #: when attached, every protocol interaction consults it through
        #: ``_delivery_allowed``; ``None`` keeps runs byte-identical.
        self.reachability: Optional[ReachabilityModel] = None
        #: per-run delivery counters, created on model attachment and kept
        #: after detachment so end-of-run reporting still sees them
        self.delivery_stats: Optional[DeliveryStats] = None
        self._last_reachability: Optional[ReachabilityModel] = None
        #: contact-suspicion backoff state: contact id -> earliest retry time
        self._suspicion_until: Dict[str, float] = {}
        self._suspicion_streak: Dict[str, int] = {}
        self._redirect_timeout_ms = config.redirect_timeout_ms
        self.dring = DRing(self.keys, latency_callback=self._peer_latency, ring=substrate)
        self.metrics = MetricsCollector(
            window_s=config.metrics_window_s, retain_records=not compact_metrics
        )
        self.bandwidth = BandwidthAccountant(window_s=config.metrics_window_s)

        self._directory_peers: Dict[str, DirectoryPeer] = {}
        self._directory_by_pair: Dict[Tuple[str, int], str] = {}
        self._content_peers: Dict[str, ContentPeer] = {}
        self._overlay_members: Dict[Tuple[str, int], List[str]] = {}
        self._content_by_host: Dict[Tuple[str, int], str] = {}
        self._reserved_hosts: Set[int] = set()
        self._processes: Dict[str, List[PeriodicProcess]] = {}
        self._bootstrapped = False
        #: statistics
        self.directory_replacements = 0

    # ------------------------------------------------------------------ utils

    # `_peer_latency` and `_host_latency` are bound in __init__ directly to
    # the underlying oracles (see above).

    @property
    def reserved_hosts(self) -> Set[int]:
        """Hosts used by directory peers (unavailable for client assignment)."""
        return set(self._reserved_hosts)

    @property
    def num_content_peers(self) -> int:
        return len(self._content_peers)

    @property
    def num_directory_peers(self) -> int:
        return len(self._directory_peers)

    def content_peer(self, peer_id: str) -> Optional[ContentPeer]:
        return self._content_peers.get(peer_id)

    def directory_peer(self, peer_id: str) -> Optional[DirectoryPeer]:
        return self._directory_peers.get(peer_id)

    def directory_for(self, website: str, locality: int) -> Optional[DirectoryPeer]:
        peer_id = self._directory_by_pair.get((website, locality))
        return self._directory_peers.get(peer_id) if peer_id else None

    def overlay_members(self, website: str, locality: int) -> List[str]:
        return list(self._overlay_members.get((website, locality), ()))

    def alive_content_peer_ids(self, locality: Optional[int] = None) -> List[str]:
        """Sorted ids of alive content peers, optionally within one locality.

        The stable ordering makes the churn/fault injectors deterministic:
        victim draws index into this list via named random streams.
        """
        return sorted(
            peer_id
            for peer_id, peer in self._content_peers.items()
            if peer.alive and (locality is None or peer.locality == locality)
        )

    def active_directory_pairs(
        self, locality: Optional[int] = None
    ) -> List[Tuple[str, int]]:
        """Sorted (website, locality) pairs whose directory peer is alive."""
        pairs: List[Tuple[str, int]] = []
        for (website, loc), peer_id in sorted(self._directory_by_pair.items()):
            if locality is not None and loc != locality:
                continue
            directory = self._directory_peers.get(peer_id)
            if directory is not None and directory.alive:
                pairs.append((website, loc))
        return pairs

    def overlay_stats(self, website: str, locality: int) -> OverlayStats:
        directory = self.directory_for(website, locality)
        return OverlayStats(
            website=website,
            locality=locality,
            num_content_peers=len(self._overlay_members.get((website, locality), ())),
            directory_peer=directory.peer_id if directory else None,
            directory_index_size=directory.index_size if directory else 0,
            unique_objects_indexed=len(directory.indexed_objects()) if directory else 0,
        )

    # ------------------------------------------------------------------ reachability

    def attach_reachability(self, model: ReachabilityModel) -> None:
        """Install the message-delivery gate (at most one model per system)."""
        if self.reachability is not None:
            raise RuntimeError("a reachability model is already attached")
        self.reachability = model
        self.delivery_stats = DeliveryStats()

    def detach_reachability(self) -> Optional[ReachabilityModel]:
        """Remove the delivery gate, keeping its stats for end-of-run reports."""
        model = self.reachability
        if model is not None:
            self._last_reachability = model
        self.reachability = None
        self._suspicion_until.clear()
        self._suspicion_streak.clear()
        return model

    def _delivery_allowed(
        self,
        kind: str,
        src_host: int,
        dst_host: int,
        src_id: Optional[str] = None,
        dst_id: Optional[str] = None,
    ) -> bool:
        """Consult the attached model for one message (callers ensure it is set)."""
        stats = self.delivery_stats
        if self.reachability.allows(kind, src_host, dst_host, src_id, dst_id, self.sim.now):
            stats.count_delivered(kind)
            return True
        stats.count_blocked(kind)
        return False

    def _suspect(self, contact: str, now: float) -> None:
        """Back off from a contact that timed out: doubling suspicion window."""
        streak = self._suspicion_streak.get(contact, 0) + 1
        self._suspicion_streak[contact] = streak
        backoff = min(
            self.config.suspicion_backoff_s * (2 ** (streak - 1)),
            self.config.suspicion_backoff_max_s,
        )
        self._suspicion_until[contact] = now + backoff

    def _clear_suspicion(self, contact: str) -> None:
        self._suspicion_until.pop(contact, None)
        self._suspicion_streak.pop(contact, None)

    def reconcile(self, localities: Optional[Tuple[int, ...]] = None) -> None:
        """Post-heal reconciliation through the existing state-transfer paths.

        After a partition heals, peers in the affected localities do not wait
        for their next periodic tick: every alive content peer immediately
        re-announces itself to its directory (keepalive, plus a delta push if
        it accumulated content changes during the fault), and every affected
        directory force-republishes its summary to its D-ring neighbours.
        All messages still go through the delivery gate, so calling this
        while the fault is active reconciles nothing — schedule it at the
        heal time (episode windows are half-open, so the heal instant is
        already reachable).
        """
        if self.delivery_stats is not None:
            self.delivery_stats.reconciliations += 1
        self._suspicion_until.clear()
        self._suspicion_streak.clear()
        affected = None if localities is None else set(localities)
        for peer_id in self.alive_content_peer_ids():
            peer = self._content_peers[peer_id]
            if affected is not None and peer.locality not in affected:
                continue
            directory = self._current_directory(peer.website, peer.locality, detector=peer)
            if directory is None:
                continue
            if self.reachability is not None and not self._delivery_allowed(
                "keepalive", peer.host_id, directory.host_id, peer.peer_id, directory.peer_id
            ):
                continue
            directory.handle_keepalive(peer.peer_id)
            self.bandwidth.record_message(
                self.sim.now, peer.peer_id, directory.peer_id, self._keepalive_bytes, "keepalive"
            )
            if peer._pending_added or peer._pending_removed:
                if self.reachability is not None and not self._delivery_allowed(
                    "push", peer.host_id, directory.host_id, peer.peer_id, directory.peer_id
                ):
                    continue
                push = peer.build_push()
                directory.handle_push(push)
                peer.note_directory(directory.peer_id)
                size = self.config.message_sizes.push_message_bytes(push.num_changes)
                self.bandwidth.record_message(
                    self.sim.now, peer.peer_id, directory.peer_id, size, "push"
                )
        for website, locality in self.active_directory_pairs():
            if affected is not None and locality not in affected:
                continue
            directory = self.directory_for(website, locality)
            if directory is None or not directory.alive:
                continue
            summary = directory.publish_summary()
            size = self._summary_refresh_bytes
            for neighbor_placement in self.dring.neighbors_of(website, locality):
                neighbor = self._directory_peers.get(neighbor_placement.peer_id)
                if neighbor is None or not neighbor.alive:
                    continue
                if self.reachability is not None and not self._delivery_allowed(
                    "summary",
                    directory.host_id,
                    neighbor.host_id,
                    directory.peer_id,
                    neighbor.peer_id,
                ):
                    continue
                neighbor.store_neighbor_summary(directory.peer_id, summary.copy())
                self.bandwidth.record_message(
                    self.sim.now, directory.peer_id, neighbor.peer_id, size, "summary"
                )

    def resilience_summary(self, duration_s: Optional[float] = None) -> Optional[Dict[str, float]]:
        """The ``resilience_*`` metric block, or ``None`` when no model ran.

        Only models with ``emits_metrics`` produce a block, so adapters that
        must keep pre-existing goldens byte-identical (the re-routed
        gossip-loss filter) stay invisible here.
        """
        model = self.reachability or self._last_reachability
        if model is None or self.delivery_stats is None or not model.emits_metrics:
            return None
        duration = duration_s if duration_s is not None else self.config.simulation_duration_s
        return summarise_resilience(
            self.metrics.hit_ratio_series,
            model.fault_windows(),
            duration,
            self.delivery_stats,
        )

    # ------------------------------------------------------------------ bootstrap

    def bootstrap(self) -> None:
        """Create the stable D-ring: one directory peer per (website, locality)."""
        if self._bootstrapped:
            raise RuntimeError("FlowerCDN.bootstrap() may only be called once")
        self._bootstrapped = True
        host_cursor: Dict[int, int] = {loc: 0 for loc in range(self.config.num_localities)}
        # Batch the initial joins: stabilise the D-ring once at the end instead
        # of after every single directory peer (equivalent result, much cheaper).
        self.dring.ring.auto_stabilize = False
        owned = self._owned_websites
        try:
            for website in self.catalog:
                for locality in range(self.config.num_localities):
                    host_id = self._next_directory_host(locality, host_cursor)
                    if owned is None or website.name in owned:
                        self._create_directory_peer(website.name, locality, host_id)
                    else:
                        self._register_ghost_directory(website.name, locality, host_id)
        finally:
            self.dring.ring.auto_stabilize = True
            self.dring.ring.stabilize()

    def _register_ghost_directory(self, website: str, locality: int, host_id: int) -> None:
        """Register a non-owned website's directory placement without a peer.

        The ghost occupies exactly the ring position, latency entry and
        reserved host the real peer would, so routing and host allocation in
        a sharded engine are indistinguishable from the unsharded deployment;
        it just never ticks, serves or gossips (its website's queries are
        handled by another shard).
        """
        peer_id = f"d({website},{locality})#0"
        self.latency.register_peer(peer_id, host_id)
        self.dring.register_directory(website, locality, peer_id)
        self._reserved_hosts.add(host_id)

    def _next_directory_host(self, locality: int, cursor: Dict[int, int]) -> int:
        hosts = self.topology.hosts_in_locality(locality)
        if not hosts:
            raise RuntimeError(f"locality {locality} has no hosts in the topology")
        index = cursor[locality]
        if index >= len(hosts):
            raise RuntimeError(
                f"locality {locality} has only {len(hosts)} hosts but more directory peers "
                "are required; enlarge the topology or reduce the number of websites"
            )
        cursor[locality] = index + 1
        host_id = hosts[index]
        return host_id

    def _create_directory_peer(
        self, website: str, locality: int, host_id: int, generation: int = 0
    ) -> DirectoryPeer:
        peer_id = f"d({website},{locality})#{generation}"
        self.latency.register_peer(peer_id, host_id)
        placement = self.dring.register_directory(website, locality, peer_id)
        directory = self._directory_cls(
            peer_id=peer_id,
            host_id=host_id,
            website=website,
            locality=locality,
            node_id=placement.node_id,
            config=self.config,
        )
        self._directory_peers[peer_id] = directory
        self._directory_by_pair[(website, locality)] = peer_id
        self._reserved_hosts.add(host_id)
        process = PeriodicProcess(
            self.sim,
            self.config.gossip.gossip_period_s,
            lambda d=directory: self._directory_tick(d),
            name=f"dir-tick:{peer_id}",
            jitter_stream=f"jitter:{peer_id}",
        )
        process.start()
        self._processes[peer_id] = [process]
        return directory

    # ------------------------------------------------------------------ query processing

    def handle_query(self, query: ResolvedQuery) -> QueryRecord:
        """Process one client query and record its metrics."""
        if not self._bootstrapped:
            raise RuntimeError("call bootstrap() before handling queries")
        existing_id = self._content_by_host.get((query.website, query.client_host))
        peer = self._content_peers.get(existing_id) if existing_id is not None else None
        if peer is not None:
            record = self._handle_content_peer_query(peer, query)
        else:
            record = self._handle_new_client_query(query)
        self.metrics.record(record)
        return record

    # -- existing content peers (Section 4.1) -----------------------------------------

    def _handle_content_peer_query(self, peer: ContentPeer, query: ResolvedQuery) -> QueryRecord:
        object_id = query.object_id
        # Direct set membership: has_object() costs a Python frame per probe
        # and this is the single hottest branch of the whole simulation.
        if object_id in peer._objects:
            return QueryRecord(
                query_id=query.query_id,
                time=query.time,
                website=query.website,
                locality=query.locality,
                outcome=QueryOutcome.LOCAL_OVERLAY_HIT,
                lookup_latency_ms=0.0,
                transfer_distance_ms=0.0,
                provider=peer.peer_id,
            )

        latency = 0.0
        failures = 0
        host_latency = self._host_latency
        peer_host = peer.host_id
        candidates = peer.resolve_locally(object_id)
        reach = self.reachability
        blocked_attempts = 0
        if reach is None:
            # Ungated fast path: byte-identical to the pre-reachability code.
            for contact in candidates[: self._max_redirects]:
                provider = self._content_peers.get(contact)
                latency += host_latency(peer_host, self._host_of_contact(contact, peer))
                if provider is None or not provider.alive:
                    peer.forget_contact(contact)
                    failures += 1
                    continue
                if object_id not in provider._objects:
                    # Stale or false-positive summary: a redirection failure.
                    failures += 1
                    continue
                distance = host_latency(peer_host, provider.host_id)
                self._after_served(peer, object_id)
                return QueryRecord(
                    query_id=query.query_id,
                    time=query.time,
                    website=query.website,
                    locality=query.locality,
                    outcome=QueryOutcome.LOCAL_OVERLAY_HIT,
                    lookup_latency_ms=latency,
                    transfer_distance_ms=distance,
                    provider=provider.peer_id,
                    redirection_failures=failures,
                )
        else:
            # Gated retry loop: per-attempt timeout on unreachable providers
            # and suspicion backoff, still bounded by max_redirection_attempts.
            now = self.sim.now
            stats = self.delivery_stats
            attempts = 0
            for contact in candidates:
                if attempts >= self._max_redirects:
                    break
                not_before = self._suspicion_until.get(contact)
                if not_before is not None and now < not_before:
                    # Suspected-unreachable contact: skip without spending an
                    # attempt, the next candidate is tried instead.
                    stats.suspicion_skips += 1
                    continue
                attempts += 1
                target_host = self._host_of_contact(contact, peer)
                if not self._delivery_allowed(
                    "redirect", peer_host, target_host, peer.peer_id, contact
                ):
                    # The redirected request times out in transit: the peer
                    # pays the timeout, suspects the contact, and retries.
                    latency += self._redirect_timeout_ms
                    failures += 1
                    blocked_attempts += 1
                    self._suspect(contact, now)
                    continue
                provider = self._content_peers.get(contact)
                latency += host_latency(peer_host, target_host)
                if provider is None or not provider.alive:
                    peer.forget_contact(contact)
                    failures += 1
                    continue
                if object_id not in provider._objects:
                    failures += 1
                    continue
                self._clear_suspicion(contact)
                distance = host_latency(peer_host, provider.host_id)
                self._after_served(peer, object_id)
                return QueryRecord(
                    query_id=query.query_id,
                    time=query.time,
                    website=query.website,
                    locality=query.locality,
                    outcome=QueryOutcome.LOCAL_OVERLAY_HIT,
                    lookup_latency_ms=latency,
                    transfer_distance_ms=distance,
                    provider=provider.peer_id,
                    redirection_failures=failures,
                )

        if self._directory_fallback:
            directory = self._current_directory(query.website, query.locality, peer)
            if directory is not None:
                if reach is not None and not self._delivery_allowed(
                    "query", peer_host, directory.host_id, peer.peer_id, directory.peer_id
                ):
                    # Graceful degradation: the directory is alive but
                    # unreachable, so the peer times out and falls back to
                    # the origin server instead of declaring it failed.
                    self.delivery_stats.server_fallbacks += 1
                    latency += self._redirect_timeout_ms
                else:
                    latency += host_latency(peer_host, directory.host_id)
                    flow = self._run_directory_flow(directory, object_id, query.locality)
                    latency += flow.latency_ms
                    failures += flow.redirection_failures
                    self._after_served(peer, object_id)
                    distance = (
                        host_latency(peer_host, flow.provider_host)
                        if flow.provider_host is not None
                        else self._server_latency_ms
                    )
                    return QueryRecord(
                        query_id=query.query_id,
                        time=query.time,
                        website=query.website,
                        locality=query.locality,
                        outcome=flow.outcome,
                        lookup_latency_ms=latency,
                        transfer_distance_ms=distance,
                        provider=flow.provider,
                        redirection_failures=failures,
                    )

        # Fall back to the origin web server.
        if reach is not None and blocked_attempts:
            self.delivery_stats.retries_exhausted += 1
        latency += self._server_latency_ms
        self._after_served(peer, object_id)
        return QueryRecord(
            query_id=query.query_id,
            time=query.time,
            website=query.website,
            locality=query.locality,
            outcome=QueryOutcome.SERVER_MISS,
            lookup_latency_ms=latency,
            transfer_distance_ms=self._server_latency_ms,
            provider=None,
            redirection_failures=failures,
        )

    def _host_of_contact(self, contact: str, fallback: ContentPeer) -> int:
        provider = self._content_peers.get(contact)
        if provider is not None:
            return provider.host_id
        if self.latency.is_registered(contact):
            return self.latency.host_of(contact)
        return fallback.host_id

    # -- new clients (Section 3.4) ----------------------------------------------------

    def _handle_new_client_query(self, query: ResolvedQuery) -> QueryRecord:
        object_id = query.object_id
        client_host = query.client_host
        rng = self.sim.streams.stream(f"dring:bootstrap:{query.website}")

        # 1. The query enters the D-ring at a bootstrap node and is routed to
        #    the directory peer in charge of (website, locality).
        bootstrap_node = self.dring.random_bootstrap_node(rng)
        latency = 0.0
        hops = 0
        serving_directory: Optional[DirectoryPeer] = None
        reach = self.reachability
        if bootstrap_node is not None:
            bootstrap_placement = self.dring.placement_at(bootstrap_node)
            bootstrap_blocked = False
            if bootstrap_placement is not None:
                bootstrap_host = self.latency.host_of(bootstrap_placement.peer_id)
                if reach is not None and not self._delivery_allowed(
                    "query", client_host, bootstrap_host, None, bootstrap_placement.peer_id
                ):
                    # The D-ring entry point is unreachable: the new client
                    # times out and degrades to the origin server directly.
                    latency += self._redirect_timeout_ms
                    self.delivery_stats.server_fallbacks += 1
                    bootstrap_blocked = True
                else:
                    latency += self._host_latency(client_host, bootstrap_host)
            if not bootstrap_blocked:
                placement, route = self.dring.resolve_directory(
                    query.website, query.locality, start_node_id=bootstrap_node
                )
                latency += route.latency_ms
                hops = route.hops
                if placement is not None:
                    serving_directory = self._directory_peers.get(placement.peer_id)

        # 2. Algorithm 3 at the delivering directory peer.
        if serving_directory is not None and serving_directory.alive:
            if reach is not None and not self._delivery_allowed(
                "query",
                client_host,
                serving_directory.host_id,
                None,
                serving_directory.peer_id,
            ):
                # The serving directory is alive but unreachable: time out
                # and degrade to the origin server (no replacement protocol).
                latency += self._redirect_timeout_ms
                self.delivery_stats.server_fallbacks += 1
                outcome = QueryOutcome.SERVER_MISS
                provider = None
                provider_host = None
                failures = 0
                latency += self.latency.server_latency_ms
            else:
                flow = self._run_directory_flow(serving_directory, object_id, query.locality)
                latency += flow.latency_ms
                outcome = flow.outcome
                provider = flow.provider
                provider_host = flow.provider_host
                failures = flow.redirection_failures
        else:
            outcome = QueryOutcome.SERVER_MISS
            provider = None
            provider_host = None
            failures = 0
            latency += self.latency.server_latency_ms

        distance = (
            self._host_latency(client_host, provider_host)
            if provider_host is not None
            else self.latency.server_latency_ms
        )

        # 3. The client joins its content overlay as a content peer.
        new_peer = self._enroll_content_peer(query.website, query.locality, client_host)
        if new_peer is not None:
            new_peer.store_object(object_id)
            self._register_with_directory(new_peer, object_id)
            self._initialize_view(new_peer, provider)

        return QueryRecord(
            query_id=query.query_id,
            time=query.time,
            website=query.website,
            locality=query.locality,
            outcome=outcome,
            lookup_latency_ms=latency,
            transfer_distance_ms=distance,
            overlay_hops=hops,
            provider=provider,
            redirection_failures=failures,
        )

    def _run_directory_flow(
        self, start: DirectoryPeer, object_id: ObjectId, query_locality: int
    ) -> _DirectoryFlowResult:
        """Run Algorithm 3, possibly crossing to neighbouring directory peers."""
        latency = 0.0
        failures = 0
        visited: List[str] = []
        tried_providers: List[str] = []
        current = start
        for _ in range(self.config.max_redirection_attempts + len(self._directory_by_pair)):
            visited.append(current.peer_id)
            decision = current.process_query(object_id, exclude=tuple(visited + tried_providers))
            if decision.kind == "content_peer" and decision.target is not None:
                provider = self._content_peers.get(decision.target)
                target_host = (
                    provider.host_id if provider is not None else current.host_id
                )
                if self.reachability is not None and not self._delivery_allowed(
                    "redirect", current.host_id, target_host, current.peer_id, decision.target
                ):
                    # Timed-out redirection: the entry is not known stale, so
                    # it is kept (no remove_client) and the next candidate is
                    # tried within the same attempt budget.
                    latency += self._redirect_timeout_ms
                    tried_providers.append(decision.target)
                    failures += 1
                    continue
                latency += self._host_latency(current.host_id, target_host)
                if provider is None or not provider.alive or object_id not in provider._objects:
                    # Redirection failure: drop the stale entry and retry.
                    current.remove_client(decision.target)
                    tried_providers.append(decision.target)
                    failures += 1
                    continue
                outcome = (
                    QueryOutcome.LOCAL_OVERLAY_HIT
                    if provider.locality == query_locality
                    else QueryOutcome.REMOTE_OVERLAY_HIT
                )
                return _DirectoryFlowResult(
                    outcome=outcome,
                    provider=provider.peer_id,
                    provider_host=provider.host_id,
                    latency_ms=latency,
                    redirection_failures=failures,
                    serving_directory=current.peer_id,
                )
            if decision.kind == "directory_peer" and decision.target is not None:
                next_directory = self._directory_peers.get(decision.target)
                if next_directory is None or not next_directory.alive:
                    failures += 1
                    current.drop_neighbor(decision.target)
                    continue
                if self.reachability is not None and not self._delivery_allowed(
                    "dring",
                    current.host_id,
                    next_directory.host_id,
                    current.peer_id,
                    next_directory.peer_id,
                ):
                    # The neighbour is alive but unreachable: do not drop it
                    # (that would mis-trigger Section 5.2 repair); mark it
                    # visited so this query stops re-selecting it.
                    latency += self._redirect_timeout_ms
                    failures += 1
                    visited.append(decision.target)
                    continue
                latency += self._host_latency(current.host_id, next_directory.host_id)
                current = next_directory
                continue
            break

        latency += self.latency.server_latency_ms
        return _DirectoryFlowResult(
            outcome=QueryOutcome.SERVER_MISS,
            provider=None,
            provider_host=None,
            latency_ms=latency,
            redirection_failures=failures,
            serving_directory=current.peer_id,
        )

    # ------------------------------------------------------------------ membership

    def _enroll_content_peer(
        self, website: str, locality: int, host_id: int
    ) -> Optional[ContentPeer]:
        key = (website, locality)
        members = self._overlay_members.setdefault(key, [])
        if len(members) >= self.config.max_content_overlay_size:
            return None
        peer_id = f"c({website})@{host_id}"
        if peer_id in self._content_peers:
            return self._content_peers[peer_id]
        peer = self._content_cls(
            peer_id=peer_id,
            host_id=host_id,
            website=website,
            locality=locality,
            config=self.config,
        )
        directory_id = self._directory_by_pair.get(key)
        if directory_id is not None:
            peer.note_directory(directory_id)
        self._content_peers[peer_id] = peer
        self._content_by_host[(website, host_id)] = peer_id
        members.append(peer_id)
        self.latency.register_peer(peer_id, host_id)
        self.bandwidth.observe_peer(self.sim.now, peer_id)
        self._start_content_processes(peer)
        return peer

    def _start_content_processes(self, peer: ContentPeer) -> None:
        gossip = PeriodicProcess(
            self.sim,
            self.config.gossip.gossip_period_s,
            lambda p=peer: self._gossip_tick(p),
            name=f"gossip:{peer.peer_id}",
            jitter_stream=f"jitter:{peer.peer_id}",
        )
        keepalive = PeriodicProcess(
            self.sim,
            self.config.gossip.keepalive_period_s,
            lambda p=peer: self._keepalive_tick(p),
            name=f"keepalive:{peer.peer_id}",
            jitter_stream=f"jitter:ka:{peer.peer_id}",
        )
        gossip.start()
        keepalive.start()
        self._processes[peer.peer_id] = [gossip, keepalive]

    def _register_with_directory(self, peer: ContentPeer, object_id: ObjectId) -> None:
        directory = self._current_directory(peer.website, peer.locality, peer)
        if directory is None:
            return
        directory.register_client(peer.peer_id, object_id)
        peer.note_directory(directory.peer_id)

    def _initialize_view(self, peer: ContentPeer, provider_id: Optional[str]) -> None:
        """Section 4.2: seed the new peer's view from its serving peer or directory."""
        provider = self._content_peers.get(provider_id) if provider_id else None
        if (
            provider is not None
            and provider.website == peer.website
            and provider.locality == peer.locality
        ):
            entries = list(provider.view.entries())
            entries.append(AgedEntry(contact=provider.peer_id, age=0,
                                     payload=provider.content_summary()))
            subset = entries[: self.config.gossip.view_size]
            peer.initialize_view(subset)
            return
        directory = self.directory_for(peer.website, peer.locality)
        if directory is None:
            return
        entries = [
            AgedEntry(contact=member, age=entry.age, payload=None)
            for member, entry in (
                (m, directory.entry(m)) for m in directory.members()
            )
            if entry is not None and member != peer.peer_id
        ]
        peer.initialize_view(entries[: self.config.gossip.view_size])

    def _current_directory(
        self, website: str, locality: int, detector: Optional[ContentPeer] = None
    ) -> Optional[DirectoryPeer]:
        """The live directory peer of (website, locality), repairing it if needed."""
        directory = self.directory_for(website, locality)
        if directory is not None and directory.alive:
            return directory
        if detector is not None:
            return self._replace_directory(website, locality, detector)
        return None

    # ------------------------------------------------------------------ maintenance

    def _gossip_subset_rng(self, peer: ContentPeer) -> random.Random:
        """The overlay-scoped gossip subset stream of ``peer``'s overlay.

        Gossip never crosses a content overlay, so draw order on an
        overlay-scoped stream is the overlay's own tick order — independent
        of how many other overlays share the simulator process.
        """
        key = (peer.website, peer.locality)
        rng = self._gossip_subset_rngs.get(key)
        if rng is None:
            rng = self.sim.streams.stream(
                f"gossip:subset:{peer.website}:{peer.locality}"
            )
            self._gossip_subset_rngs[key] = rng
        return rng

    def _gossip_tick(self, peer: ContentPeer) -> None:
        """Algorithm 4, active behaviour, plus the per-period ageing and push check."""
        if not peer.alive:
            return
        peer.increment_ages()
        partner_id = peer.select_gossip_partner()
        if partner_id is not None:
            partner = self._content_peers.get(partner_id)
            if partner is None or not partner.alive:
                peer.forget_contact(partner_id)
            elif self.reachability is not None and not self._delivery_allowed(
                "gossip", peer.host_id, partner.host_id, peer.peer_id, partner.peer_id
            ):
                # Message lost in transit (partition / outage / link loss):
                # same consequences as a dropped filter message below.
                pass
            elif (
                self.gossip_message_filter is not None
                and not self.gossip_message_filter(peer, partner)
            ):
                # Message lost in transit: neither side exchanges views and
                # no bandwidth is accounted; ages were already incremented.
                pass
            else:
                rng = self._gossip_subset_rng(peer)
                message = peer.build_gossip_message(rng=rng)
                reply = partner.handle_gossip(message, rng=rng)
                peer.apply_gossip(reply)
                peer.gossip_initiated += 1
                size = self._gossip_message_bytes
                self.bandwidth.record_message(
                    self.sim.now, peer.peer_id, partner.peer_id, size, "gossip"
                )
                self.bandwidth.record_message(
                    self.sim.now, partner.peer_id, peer.peer_id, size, "gossip"
                )
        self._maybe_push(peer)

    def _maybe_push(self, peer: ContentPeer) -> None:
        """Algorithm 5: push the delta list once the change threshold is reached."""
        # Inlined needs_push(): this guard runs after every served object, and
        # the two extra Python frames measurably slow the query hot path.
        changes = len(peer._pending_added) + len(peer._pending_removed)
        if changes == 0:
            return
        if not peer._objects and not peer._pending_removed:
            fraction = 0.0
        else:
            fraction = changes / max(1, len(peer._objects))
        if fraction < self.config.gossip.push_threshold:
            return
        directory = self._current_directory(peer.website, peer.locality, detector=peer)
        if directory is None:
            return
        if self.reachability is not None and not self._delivery_allowed(
            "push", peer.host_id, directory.host_id, peer.peer_id, directory.peer_id
        ):
            # The push is deferred: pending changes keep accumulating and the
            # next threshold crossing (or post-heal reconcile) retries.
            return
        push = peer.build_push()
        directory.handle_push(push)
        peer.note_directory(directory.peer_id)
        size = self.config.message_sizes.push_message_bytes(push.num_changes)
        self.bandwidth.record_message(self.sim.now, peer.peer_id, directory.peer_id, size, "push")

    def _keepalive_tick(self, peer: ContentPeer) -> None:
        if not peer.alive:
            return
        directory = self._current_directory(peer.website, peer.locality, detector=peer)
        if directory is None:
            return
        if self.reachability is not None and not self._delivery_allowed(
            "keepalive", peer.host_id, directory.host_id, peer.peer_id, directory.peer_id
        ):
            # Lost keepalive: the directory's ageing continues and may evict
            # this peer's entries until the network heals.
            return
        directory.handle_keepalive(peer.peer_id)
        size = self._keepalive_bytes
        self.bandwidth.record_message(
            self.sim.now, peer.peer_id, directory.peer_id, size, "keepalive"
        )

    def _directory_tick(self, directory: DirectoryPeer) -> None:
        """Algorithm 6's active behaviour plus dead-entry eviction and summary refresh."""
        if not directory.alive:
            return
        directory.increment_ages()
        for dead_peer in directory.evict_dead_entries():
            # The directory no longer redirects to peers it has not heard from.
            del dead_peer
        if directory.should_refresh_summary():
            summary = directory.publish_summary()
            size = self._summary_refresh_bytes
            for neighbor_placement in self.dring.neighbors_of(
                directory.website, directory.locality
            ):
                neighbor = self._directory_peers.get(neighbor_placement.peer_id)
                if neighbor is None or not neighbor.alive:
                    continue
                if self.reachability is not None and not self._delivery_allowed(
                    "summary",
                    directory.host_id,
                    neighbor.host_id,
                    directory.peer_id,
                    neighbor.peer_id,
                ):
                    continue
                neighbor.store_neighbor_summary(directory.peer_id, summary.copy())
                self.bandwidth.record_message(
                    self.sim.now, directory.peer_id, neighbor.peer_id, size, "summary"
                )

    def _after_served(self, peer: ContentPeer, object_id: ObjectId) -> None:
        """Progressive replication: the requester keeps the object it was served."""
        peer.store_object(object_id)
        self._maybe_push(peer)

    # ------------------------------------------------------------------ churn API

    def fail_content_peer(self, peer_id: str) -> bool:
        """Abruptly fail a content peer (used by the churn injector)."""
        peer = self._content_peers.get(peer_id)
        if peer is None or not peer.alive:
            return False
        peer.fail()
        for process in self._processes.pop(peer_id, []):
            process.stop()
        return True

    def fail_directory(self, website: str, locality: int) -> bool:
        """Abruptly fail the directory peer of (website, locality)."""
        directory = self.directory_for(website, locality)
        if directory is None or not directory.alive:
            return False
        directory.fail()
        for process in self._processes.pop(directory.peer_id, []):
            process.stop()
        self.dring.remove_directory(website, locality, failed=True)
        return True

    def leave_directory(self, website: str, locality: int) -> Optional[str]:
        """Voluntary departure: the directory hands its state to a content peer."""
        directory = self.directory_for(website, locality)
        if directory is None or not directory.alive:
            return None
        members = [
            self._content_peers[m]
            for m in self._overlay_members.get((website, locality), ())
            if m in self._content_peers and self._content_peers[m].alive
        ]
        state = directory.export_state()
        directory.fail()
        for process in self._processes.pop(directory.peer_id, []):
            process.stop()
        self.dring.remove_directory(website, locality, failed=False)
        if not members:
            return None
        successor = max(members, key=lambda p: p.num_objects)
        replacement = self._replace_directory(website, locality, successor)
        if replacement is not None:
            replacement.import_state(state)
            return replacement.peer_id
        return None

    def _replace_directory(
        self, website: str, locality: int, detector: ContentPeer
    ) -> Optional[DirectoryPeer]:
        """Section 5.2: a content peer takes over the failed directory's identifier."""
        if not detector.alive:
            return None
        key = (website, locality)
        old_id = self._directory_by_pair.get(key)
        if old_id is not None:
            old = self._directory_peers.get(old_id)
            if old is not None and old.alive:
                return old  # someone else already repaired it
            self.dring.remove_directory(website, locality, failed=True)
        generation = self.directory_replacements + 1
        peer_id = f"d({website},{locality})#{generation}"
        self.latency.register_peer(peer_id, detector.host_id)
        placement = self.dring.replace_directory(website, locality, peer_id)
        replacement = self._directory_cls(
            peer_id=peer_id,
            host_id=detector.host_id,
            website=website,
            locality=locality,
            node_id=placement.node_id,
            config=self.config,
        )
        # The new directory answers first queries from what its host already
        # knows: its own content; the rest of the index rebuilds from pushes.
        replacement.register_client(detector.peer_id)
        replacement.handle_push(
            PushMessage(sender=detector.peer_id, added=tuple(sorted(detector.objects)), removed=())
        )
        self._directory_peers[peer_id] = replacement
        self._directory_by_pair[key] = peer_id
        process = PeriodicProcess(
            self.sim,
            self.config.gossip.gossip_period_s,
            lambda d=replacement: self._directory_tick(d),
            name=f"dir-tick:{peer_id}",
            jitter_stream=f"jitter:{peer_id}",
        )
        process.start()
        self._processes[peer_id] = [process]
        self.directory_replacements += 1
        return replacement

    def change_locality(self, peer_id: str, new_locality: int) -> Optional[str]:
        """Section 5.4: a peer that changed locality re-joins as a new client there."""
        peer = self._content_peers.get(peer_id)
        if peer is None or not peer.alive:
            return None
        self.fail_content_peer(peer_id)
        old_key = (peer.website, peer.locality)
        if peer_id in self._overlay_members.get(old_key, []):
            self._overlay_members[old_key].remove(peer_id)
        self._content_by_host.pop((peer.website, peer.host_id), None)
        directory = self.directory_for(peer.website, peer.locality)
        if directory is not None:
            directory.remove_client(peer_id)
        # Drop the old identity entirely so the peer re-joins as a fresh client
        # of its new locality (Section 5.4: "naturally joins its new overlay").
        self._content_peers.pop(peer_id, None)
        new_peer = self._enroll_content_peer(peer.website, new_locality, peer.host_id)
        if new_peer is None:
            return None
        for object_id in peer.objects:
            new_peer.store_object(object_id)
        self._maybe_push(new_peer)
        return new_peer.peer_id

    # ------------------------------------------------------------------ reporting

    def active_overlays(self) -> List[OverlayStats]:
        return [
            self.overlay_stats(website, locality)
            for (website, locality) in sorted(self._overlay_members)
        ]
