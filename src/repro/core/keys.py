"""Engineered D-ring identifiers (Section 3.1).

A D-ring peer ID of ``m = m1 + m2`` bits is the concatenation of a *website
ID* (the ``m2`` high-order bits, obtained by hashing the website's URL) and a
*locality ID* (the ``m1`` low-order bits, the locality number in ``[0, k)``).
Search keys are built the same way, so the standard DHT lookup for the key
``websiteID(ws) || localityID(loc)`` lands exactly on the directory peer
``d(ws, loc)``, and the directory peers of one website occupy consecutive
identifiers on the ring.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List

from repro.overlay.idspace import IdSpace


@dataclass(frozen=True)
class DRingKey:
    """A decoded D-ring identifier."""

    website_id: int
    locality_id: int
    raw: int
    #: replica index within the (website, locality) pair; always 0 for the
    #: basic scheme, meaningful only with the Section 5.3 scaling-up extension
    replica_id: int = 0

    def __int__(self) -> int:
        return self.raw


class KeyScheme:
    """Encodes and decodes D-ring identifiers for a given bit layout.

    The basic layout is ``websiteID || localityID`` (Section 3.1).  Section
    5.3's scaling-up extension appends ``replica_bits`` extra low-order bits so
    several directory peers can serve the same (website, locality) pair while
    preserving the website and locality identification; with the default
    ``replica_bits = 0`` the basic scheme is used.
    """

    __slots__ = (
        "_website_bits",
        "_locality_bits",
        "_replica_bits",
        "_idspace",
        "_decode_cache",
        "_website_id_cache",
    )

    def __init__(self, website_bits: int, locality_bits: int, replica_bits: int = 0) -> None:
        if website_bits <= 0 or locality_bits <= 0:
            raise ValueError("website_bits and locality_bits must be positive")
        if replica_bits < 0:
            raise ValueError("replica_bits must be non-negative")
        self._website_bits = website_bits
        self._locality_bits = locality_bits
        self._replica_bits = replica_bits
        self._idspace = IdSpace(website_bits + locality_bits + replica_bits)
        self._decode_cache: dict = {}
        self._website_id_cache: dict = {}

    # -- properties ----------------------------------------------------------

    @property
    def website_bits(self) -> int:
        return self._website_bits

    @property
    def locality_bits(self) -> int:
        return self._locality_bits

    @property
    def replica_bits(self) -> int:
        return self._replica_bits

    @property
    def idspace(self) -> IdSpace:
        return self._idspace

    @property
    def max_localities(self) -> int:
        return 1 << self._locality_bits

    @property
    def max_websites(self) -> int:
        return 1 << self._website_bits

    @property
    def max_replicas(self) -> int:
        """Directory peers allowed per (website, locality) pair (Section 5.3)."""
        return 1 << self._replica_bits

    # -- hashing and encoding ----------------------------------------------------

    def website_id(self, website_url: str) -> int:
        """Hash a website URL into the ``m2``-bit website-ID subspace."""
        cached = self._website_id_cache.get(website_url)
        if cached is not None:
            return cached
        digest = hashlib.sha1(website_url.encode("utf-8")).digest()
        website_id = int.from_bytes(digest, "big") % self.max_websites
        if len(self._website_id_cache) < 1 << 16:
            self._website_id_cache[website_url] = website_id
        return website_id

    def encode(self, website_id: int, locality: int, replica: int = 0) -> int:
        """Concatenate website, locality (and replica) IDs into a peer ID / search key."""
        if not 0 <= website_id < self.max_websites:
            raise ValueError(f"website_id {website_id} outside {self._website_bits}-bit subspace")
        if not 0 <= locality < self.max_localities:
            raise ValueError(f"locality {locality} outside {self._locality_bits}-bit subspace")
        if not 0 <= replica < self.max_replicas:
            raise ValueError(f"replica {replica} outside {self._replica_bits}-bit subspace")
        base = (website_id << self._locality_bits) | locality
        return (base << self._replica_bits) | replica

    def key_for(self, website_url: str, locality: int, replica: int = 0) -> int:
        """The search key (= directory peer ID) for ``(website, locality[, replica])``."""
        return self.encode(self.website_id(website_url), locality, replica)

    def replica_ids_for(self, website_url: str, locality: int) -> List[int]:
        """All directory identifiers of one (website, locality) pair (Section 5.3)."""
        website_id = self.website_id(website_url)
        return [
            self.encode(website_id, locality, replica) for replica in range(self.max_replicas)
        ]

    # -- decoding ---------------------------------------------------------------

    def decode(self, identifier: int) -> DRingKey:
        # Pure function of the identifier; routing decodes the same handful of
        # directory IDs on every hop, so memoise the immutable results.
        cached = self._decode_cache.get(identifier)
        if cached is not None:
            return cached
        self._idspace.validate(identifier)
        replica = identifier & (self.max_replicas - 1)
        base = identifier >> self._replica_bits
        key = DRingKey(
            website_id=base >> self._locality_bits,
            locality_id=base & (self.max_localities - 1),
            raw=identifier,
            replica_id=replica,
        )
        if len(self._decode_cache) < 1 << 16:
            self._decode_cache[identifier] = key
        return key

    def website_id_of(self, identifier: int) -> int:
        return self.decode(identifier).website_id

    def locality_of(self, identifier: int) -> int:
        return self.decode(identifier).locality_id

    def same_website(self, a: int, b: int) -> bool:
        """True when two identifiers carry the same website ID."""
        return self.website_id_of(a) == self.website_id_of(b)

    def website_constraint(self, key: int) -> Callable[[int], bool]:
        """Predicate used by Algorithm 2: "same website ID as the key"."""
        target = self.website_id_of(key)
        return lambda node_id: self.website_id_of(node_id) == target

    def directory_ids_for(self, website_url: str, num_localities: int) -> List[int]:
        """All directory peer IDs of one website, in locality order (Figure 3)."""
        if not 0 < num_localities <= self.max_localities:
            raise ValueError(
                f"num_localities must be in (0, {self.max_localities}], got {num_localities}"
            )
        website_id = self.website_id(website_url)
        return [self.encode(website_id, loc) for loc in range(num_localities)]
