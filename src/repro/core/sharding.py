"""Space-parallel shard planning for Flower-CDN scenarios.

Flower-CDN's protocol traffic is *website-local*: gossip, keepalives and
pushes stay inside one ``(website, locality)`` content overlay, summary
refreshes travel between a website's own per-locality directories
(``d(ws, loc)`` to ``d(ws, loc±1)``), and query redirection hops only
between directories of the queried website.  A website's whole "flower"
(its D-ring directories across all localities plus all of its content
overlays) is therefore an atomic unit that never exchanges protocol
messages with another website's flower.

Sharding partitions the *queryable* websites across ``N`` shard engines.
Each engine simulates its websites' flowers in full while registering every
other website's directory placements as ghosts (ring nodes, latency entries
and reserved hosts without live peers), so ring routing, bootstrap-node
choice and client assignment are identical to the unsharded deployment.
Because the partition is website-atomic, the cross-shard message channel is
*empty by construction* under the supported regime — the conservative
window barrier never has to deliver a remote event, which is what makes a
sharded run reproduce the single-process digests exactly, independent of
the shard count.

The supported regime is validated by :func:`validate_shardable`: no churn
(churn victims are drawn from globally-ordered streams) and only
time-driven, RNG-free fault models whose windows are pure functions of the
clock.

The conservative lookahead is still derived and enforced as the window
size: the minimum delay any cross-shard interaction *would* experience
(one gossip/keepalive period plus the inter-locality latency floor).  Every
shard advances window by window and emits a typed
:class:`WindowReport`; reports and outcomes are merged in deterministic
``(timestamp, shard, seq)`` order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Sequence, Tuple

if TYPE_CHECKING:
    from repro.scenarios.spec import ScenarioSpec

#: fault models whose behaviour is a pure function of the simulation clock
#: (no stream draws, no global victim selection) — safe to attach per shard
SHARDABLE_FAULT_MODELS = frozenset({"none", "locality-partition"})

#: window-count cap: pathologically small lookaheads (tiny gossip periods in
#: scaled-down tests) degrade to barrier overhead without changing results
MAX_WINDOWS = 4096


# -- validation ----------------------------------------------------------------


def validate_shardable(spec: "ScenarioSpec") -> None:
    """Raise ``ValueError`` unless ``spec`` fits the supported sharded regime.

    Sharding requires that every source of randomness is website-scoped or
    replicated identically in every shard.  Global churn draws and
    per-message loss draws consume globally-ordered streams, so specs using
    them must run single-process.
    """
    if tuple(spec.systems) != ("flower",):
        raise ValueError(
            "sharded execution supports flower-only scenarios; "
            f"{spec.name!r} runs systems {tuple(spec.systems)}"
        )
    if spec.churn.is_enabled:
        raise ValueError(
            "sharded execution requires a churn-free spec: churn victims are "
            "drawn from globally-ordered streams and cannot be partitioned "
            f"deterministically ({spec.name!r} has churn enabled)"
        )
    if spec.fault_model.name not in SHARDABLE_FAULT_MODELS:
        raise ValueError(
            f"fault model {spec.fault_model.name!r} is not shardable; "
            f"supported models: {sorted(SHARDABLE_FAULT_MODELS)} "
            "(time-driven models whose windows are pure functions of the clock)"
        )


# -- shard planning ------------------------------------------------------------


def queryable_websites(spec: "ScenarioSpec") -> Tuple[str, ...]:
    """The websites the workload can target, in catalogue order.

    Stationary workloads query the first ``active_websites`` catalogue
    entries; programs query the union of every phase's (possibly rotated)
    active window.  Mirrors
    :meth:`repro.workload.generator.QueryGenerator._phase_window` exactly.
    """
    from repro.workload.catalog import Catalog

    catalog = Catalog.synthetic(spec.num_websites, spec.objects_per_website)
    names = [site.name for site in catalog.websites]
    count = spec.active_websites
    spans = spec.compiled_program()
    if not spans:
        return tuple(names[:count])
    used = sorted(
        {
            (span.hotspot_rotation + i) % len(names)
            for span in spans
            for i in range(count)
        }
    )
    return tuple(names[i] for i in used)


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of the queryable websites into shards."""

    num_shards: int
    #: per-shard website names, each in catalogue order; shards may be empty
    #: when there are more shards than queryable websites
    assignments: Tuple[Tuple[str, ...], ...]

    @property
    def websites(self) -> Tuple[str, ...]:
        return tuple(name for shard in self.assignments for name in shard)


def plan_shards(spec: "ScenarioSpec", num_shards: int) -> ShardPlan:
    """Round-robin the *whole catalogue* over ``num_shards`` shards.

    Every catalogue website is owned by exactly one shard — including the
    non-queryable ones, whose directories carry no load but must exist
    somewhere because reconciliation rounds republish every alive
    directory's summary.  Queryable websites are contiguous catalogue
    prefixes (or rotated windows), so round-robin in catalogue order also
    balances the query load.  The assignment is a pure function of
    ``(spec, num_shards)`` — but results do not depend on it: each
    website's evolution is identical however the websites are grouped.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    from repro.workload.catalog import Catalog

    catalog = Catalog.synthetic(spec.num_websites, spec.objects_per_website)
    buckets: List[List[str]] = [[] for _ in range(num_shards)]
    for index, site in enumerate(catalog.websites):
        buckets[index % num_shards].append(site.name)
    return ShardPlan(
        num_shards=num_shards,
        assignments=tuple(tuple(bucket) for bucket in buckets),
    )


# -- conservative windows ------------------------------------------------------


def conservative_lookahead_s(spec: "ScenarioSpec") -> float:
    """The minimum delay of any would-be cross-shard interaction.

    The earliest a shard could causally affect another is one background
    period (gossip or keepalive, whichever ticks faster) plus the
    inter-locality latency floor — no protocol message propagates faster.
    Window barriers at this stride are therefore conservative in the
    classical parallel-discrete-event sense.
    """
    period_s = min(spec.gossip_period_s, spec.effective_keepalive_period_s)
    min_latency_ms = spec.to_setup().topology.min_latency_ms
    return period_s + min_latency_ms / 1000.0


def window_boundaries(duration_s: float, lookahead_s: float) -> Tuple[float, ...]:
    """Ascending barrier times ``k * lookahead`` capped at the duration.

    The final boundary is exactly ``duration_s`` so the last window closes
    on the run horizon; an event scheduled exactly on a boundary fires in
    the window that boundary closes (the simulator's ``run(until=W)`` is
    inclusive) and is consumed exactly once.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if lookahead_s <= 0 or lookahead_s >= duration_s:
        return (duration_s,)
    if duration_s / lookahead_s > MAX_WINDOWS:
        lookahead_s = duration_s / MAX_WINDOWS
    boundaries: List[float] = []
    k = 1
    while True:
        boundary = k * lookahead_s
        if boundary >= duration_s:
            break
        boundaries.append(boundary)
        k += 1
    boundaries.append(duration_s)
    return tuple(boundaries)


# -- typed inter-shard messages ------------------------------------------------


@dataclass(frozen=True)
class ShardMessage:
    """Base class of everything exchanged at a window barrier.

    Messages are applied in ``sort_key`` order — ``(timestamp, shard,
    seq)`` — which makes every merge independent of arrival order.
    """

    timestamp: float
    shard: int
    seq: int

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        return (self.timestamp, self.shard, self.seq)


@dataclass(frozen=True)
class WindowReport(ShardMessage):
    """One shard's account of one closed conservative window."""

    window_index: int = 0
    window_end_s: float = 0.0
    events_fired: int = 0
    queries_handled: int = 0


def merge_messages(batches: Iterable[Sequence[ShardMessage]]) -> List[ShardMessage]:
    """Flatten per-shard message batches into deterministic apply order."""
    merged = [message for batch in batches for message in batch]
    merged.sort(key=lambda message: message.sort_key)
    return merged
