"""Array-backed columnar state for the kernel backend.

The object backend models every view entry as a frozen
:class:`~repro.datastructures.aged_view.AgedEntry` and every content summary
as a :class:`~repro.datastructures.bloom.BloomFilter` instance; per gossip
period each peer rebuilds its whole view dict just to age it, and each local
query probe chases two attributes per view entry.  At paper scale those
per-object costs dominate the run.

This module keeps the *same protocol state* in columns:

* :class:`ColumnarView` — a peer view as parallel columns (contact strings,
  birth stamps, packed summaries) under an epoch clock: ageing the whole
  view is one integer increment, a gossip merge is a batched pass over the
  message columns, and a query probe is one precomputed Bloom mask compared
  against a column of fixed-width ints.
* :class:`KernelContentPeer` / :class:`KernelDirectoryPeer` — drop-in
  subclasses of the object peers whose hot methods run over the columns.
  Everything else (push accounting, failure handling, the churn API, the
  system orchestration in :mod:`repro.core.system`) is inherited unchanged,
  which is what makes the two backends byte-identical: they share one
  control flow and differ only in how the per-peer tables are stored.

Equivalence invariants the columns preserve exactly:

* dict insertion order — replacing an entry keeps its position, new entries
  append, trims rebuild in ``(age, contact)`` order — so subset sampling
  sees candidates in the same order as the object path;
* random draws — ``rng.sample`` consumes a draw sequence that depends only
  on the candidate *count*, which both backends present identically;
* tie-breaks — ``(age, contact)`` orderings compare the same ints and the
  same contact strings;
* Bloom bits — packed summaries are the same integers the object filters
  hold (masks come from the same memoised table), and Python ints are
  immutable, which is precisely the snapshot semantics the object path
  implements with copy-on-write.

The parametrised digest-equality suite (``tests/test_kernel_equivalence.py``)
checks these invariants end to end on every standard-tier scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import random
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.content_peer import ContentPeer, PushMessage
from repro.core.directory_peer import DirectoryEntry, DirectoryPeer
from repro.datastructures.aged_view import AgedEntry
from repro.datastructures.bloom import BloomFilter, mask_for
from repro.datastructures.lru import LRUCache
from repro.workload.catalog import ObjectId

__all__ = [
    "SUMMARY_NUM_HASHES",
    "ViewColumn",
    "ColumnarView",
    "ColumnarGossipMessage",
    "KernelContentPeer",
    "KernelDirectoryPeer",
]

#: Content and directory summaries are built with ``BloomFilter.from_items``
#: without an explicit hash count, which resolves to this default; the packed
#: masks must use the same geometry to stay bit-identical.
SUMMARY_NUM_HASHES = 4

#: One materialised view column: ``(contact, age, packed_summary_or_None)``.
#: Ages are concretised when a column leaves its view (gossip subsets, view
#: seeding) because sender and receiver run different epoch clocks.
ViewColumn = Tuple[str, int, Optional[int]]


class ColumnarView:
    """A bounded peer view stored as sortable rows under an epoch clock.

    Mirrors :class:`~repro.datastructures.aged_view.AgedView` semantics for
    Bloom-payload views: an entry's age is ``clock - stamp``, so the periodic
    "age everything" pass is a single increment of :attr:`clock` instead of a
    dict rebuild.  Row order replicates dict insertion order exactly (see the
    module docstring).

    Each row is a *mutable* ``[negated_stamp, contact, payload]`` list shared
    between the ordered row list and the contact index, so in-place updates
    never touch the index, list comparison sorts rows by exactly the
    ``(age, contact)`` trim/tie-break key at C speed (contacts are unique, so
    a comparison never reaches the payload element), and a capacity trim is a
    bare ``list.sort`` plus one truncation — no column rebuilds.
    """

    __slots__ = (
        "capacity",
        "num_bits",
        "num_hashes",
        "clock",
        "_rows",
        "_pos",
    )

    def __init__(self, capacity: Optional[int], num_bits: int, num_hashes: int) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.clock = 0
        #: rows in view order; row = [negated_stamp, contact, payload]
        self._rows: List[list] = []
        #: contact -> its row object (NOT its position, which sorts shift)
        self._pos: Dict[str, list] = {}

    # -- container protocol (AgedView-compatible) ---------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, contact: str) -> bool:
        return contact in self._pos

    def __iter__(self) -> Iterator[AgedEntry]:
        return iter(self.entries())

    def contacts(self) -> Sequence[str]:
        return tuple(row[1] for row in self._rows)

    def get(self, contact: str) -> Optional[AgedEntry]:
        row = self._pos.get(contact)
        if row is None:
            return None
        return self._entry_of(row)

    def entries(self) -> Sequence[AgedEntry]:
        """Materialised object-form entries (diagnostics and cold paths only)."""
        return tuple(self._entry_of(row) for row in self._rows)

    def _entry_of(self, row: list) -> AgedEntry:
        return AgedEntry(
            contact=row[1],
            age=self.clock + row[0],
            payload=self._materialize(row[2]),
        )

    def _materialize(self, bits: Optional[int]) -> Optional[BloomFilter]:
        if bits is None:
            return None
        bloom = BloomFilter(self.num_bits, self.num_hashes)
        bloom._bits = bits
        return bloom

    # -- columnar accessors -------------------------------------------------

    def export_columns(self) -> List[ViewColumn]:
        """Every entry as ``(contact, age, packed_summary)``, in view order."""
        clock = self.clock
        return [(row[1], clock + row[0], row[2]) for row in self._rows]

    # -- mutation ------------------------------------------------------------

    def put_fresh(self, contact: str, payload: Optional[int]) -> None:
        """Write an age-0 entry (the ``viewEntry`` step of Algorithm 4)."""
        row = self._pos.get(contact)
        if row is not None:
            row[0] = -self.clock
            row[2] = payload
            return
        row = [-self.clock, contact, payload]
        self._pos[contact] = row
        self._rows.append(row)
        self._trim()

    def remove(self, contact: str) -> bool:
        row = self._pos.pop(contact, None)
        if row is None:
            return False
        self._rows.remove(row)
        return True

    def clear(self) -> None:
        self._rows.clear()
        self._pos.clear()

    def increment_ages(self, increment: int = 1) -> None:
        """Age every entry: one clock tick instead of a per-entry rebuild."""
        self.clock += increment

    def merge_columns(
        self, incoming: Iterable[ViewColumn], self_contact: Optional[str] = None
    ) -> None:
        """Algorithm 4's merge as one pass over the message columns.

        Duplicates keep the younger instance (strictly smaller age wins, as
        in the object path), the owner's own entry is skipped, then the view
        trims to the ``capacity`` most recent entries.
        """
        clock = self.clock
        pos = self._pos
        rows = self._rows
        for contact, age, payload in incoming:
            if contact == self_contact:
                continue
            negated = age - clock  # == -(clock - age), the incoming stamp
            row = pos.get(contact)
            if row is None:
                row = [negated, contact, payload]
                pos[contact] = row
                rows.append(row)
            elif negated < row[0]:
                row[0] = negated
                row[2] = payload
        self._trim()

    def _trim(self) -> None:
        capacity = self.capacity
        rows = self._rows
        if capacity is None or len(rows) <= capacity:
            return
        # List comparison orders rows by (age, contact) ascending: keep the
        # youngest.  Rows are shared with ``_pos``, so only the evicted tail
        # needs index maintenance.
        rows.sort()
        pos = self._pos
        for row in rows[capacity:]:
            del pos[row[1]]
        del rows[capacity:]

    # -- selection -----------------------------------------------------------

    def select_oldest(self) -> Optional[str]:
        """Contact with the largest ``(age, contact)`` — partner selection."""
        rows = self._rows
        if not rows:
            return None
        return max(rows)[1]

    def select_subset_columns(
        self,
        size: int,
        rng: Optional[random.Random] = None,
        exclude: Iterable[str] = (),
    ) -> List[ViewColumn]:
        """``Lgossip`` random columns; draw-for-draw identical to the object path."""
        clock = self.clock
        rows = self._rows
        if exclude:
            excluded = set(exclude)
            candidates = [row for row in rows if row[1] not in excluded]
        else:
            candidates = rows
        if size < len(candidates) and rng is not None:
            # ``rng.sample`` consumes randomness as a function of the candidate
            # count alone, so sampling the row objects draws the very same view
            # positions as sampling materialised columns — the columns that end
            # up unselected are never built.
            candidates = rng.sample(candidates, size)
        selected = [(row[1], clock + row[0], row[2]) for row in candidates]
        if size >= len(selected) or rng is not None:
            return selected
        # Deterministic fallback: youngest entries first (object-path rule).
        selected.sort(key=lambda column: (column[1], column[0]))
        return selected[:size]

    # -- query probing ---------------------------------------------------------

    def probe(self, mask: int) -> List[str]:
        """Contacts whose packed summary matches ``mask``, youngest first.

        One batched pass: the precomputed Bloom mask is AND-compared against
        the payload of every row; absent payloads (directory-seeded entries)
        never match because every mask has at least one bit set.
        """
        hits: List[Tuple[int, str]] = []
        append = hits.append
        clock = self.clock
        for negated, contact, payload in self._rows:
            if payload is not None and payload & mask == mask:
                append((clock + negated, contact))
        hits.sort()
        return [contact for _, contact in hits]

    # -- object-path compatibility shims --------------------------------------

    def merge(self, incoming: Iterable[AgedEntry], self_contact: Optional[str] = None) -> None:
        """AgedView-compatible merge of object-form entries (cold paths/tests)."""
        self.merge_columns(_columns_from_entries(incoming), self_contact=self_contact)

    def put(self, entry: AgedEntry) -> None:
        """AgedView-compatible put (cold paths/tests)."""
        payload = entry.payload._bits if entry.payload is not None else None
        negated = entry.age - self.clock
        row = self._pos.get(entry.contact)
        if row is not None:
            row[0] = negated
            row[2] = payload
            return
        row = [negated, entry.contact, payload]
        self._pos[entry.contact] = row
        self._rows.append(row)
        self._trim()


def _columns_from_entries(entries: Iterable[AgedEntry]) -> List[ViewColumn]:
    return [
        (
            entry.contact,
            entry.age,
            entry.payload._bits if entry.payload is not None else None,
        )
        for entry in entries
    ]


class ColumnarGossipMessage(NamedTuple):
    """A gossip exchange in column form: packed summary + view columns.

    The wire-equivalent of :class:`~repro.core.content_peer.GossipMessage`;
    the bandwidth model prices both identically (same entry count, same
    summary width), so the accounting cannot tell the backends apart.
    A NamedTuple rather than a frozen dataclass: construction happens once
    per gossip exchange, and ``tuple.__new__`` is much cheaper than the
    ``object.__setattr__`` dance frozen dataclasses generate.
    """

    sender: str
    summary_bits: int
    view_subset: Tuple[ViewColumn, ...]

    @property
    def num_entries(self) -> int:
        return len(self.view_subset)


@dataclass(slots=True)
class KernelContentPeer(ContentPeer):
    """A content peer whose view and summary live in columns.

    Only the view/summary touch-points are overridden; push accounting,
    failure handling and the statistics surface are inherited, so
    :class:`~repro.core.system.FlowerCDN` drives both peer kinds through one
    code path.
    """

    #: packed own-content summary (the same integer the object path's
    #: BloomFilter holds); ``None`` after a removal forces a lazy rebuild,
    #: exactly like the object path's summary-cache invalidation.
    _packed_summary: Optional[int] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self._view = ColumnarView(
            capacity=self.config.gossip.view_size,
            num_bits=self.config.summary_bits,
            num_hashes=SUMMARY_NUM_HASHES,
        )
        if self.config.content_cache_capacity is not None:
            self._cache = LRUCache(self.config.content_cache_capacity)

    # -- packed summary -----------------------------------------------------

    def _record_change(
        self, added: Optional[ObjectId] = None, removed: Optional[ObjectId] = None
    ) -> None:
        if added is not None:
            # Incremental OR of the object's mask — bit-identical to the
            # object path's in-place BloomFilter.add; ints are immutable so
            # no copy-on-write escape tracking is needed.
            if self._packed_summary is not None:
                self._packed_summary |= mask_for(
                    self.config.summary_bits, SUMMARY_NUM_HASHES, added
                )
            self._pending_removed.discard(added)
            self._pending_added.add(added)
        if removed is not None:
            # Removal cannot be expressed on a Bloom mask: rebuild lazily.
            self._packed_summary = None
            self._pending_added.discard(removed)
            self._pending_removed.add(removed)

    def summary_bits(self) -> int:
        """The packed content summary (same bits as the object-path filter)."""
        bits = self._packed_summary
        if bits is None:
            num_bits = self.config.summary_bits
            bits = 0
            for object_id in self._objects:
                bits |= mask_for(num_bits, SUMMARY_NUM_HASHES, object_id)
            self._packed_summary = bits
        return bits

    def content_summary(self) -> BloomFilter:
        """Object-form summary for diagnostics and cross-backend call sites."""
        bloom = BloomFilter(self.config.summary_bits, SUMMARY_NUM_HASHES)
        bloom._bits = self.summary_bits()
        return bloom

    # -- view ----------------------------------------------------------------

    def initialize_view(self, entries: Iterable[AgedEntry]) -> None:
        self._view.merge_columns(
            _columns_from_entries(entries), self_contact=self.peer_id
        )

    def initialize_view_columns(self, columns: Iterable[ViewColumn]) -> None:
        """Seed the view straight from columns (the kernel system path)."""
        self._view.merge_columns(columns, self_contact=self.peer_id)

    def resolve_locally(self, object_id: ObjectId) -> List[str]:
        mask = mask_for(self.config.summary_bits, SUMMARY_NUM_HASHES, object_id)
        return self._view.probe(mask)

    # -- Algorithm 4 over columns ---------------------------------------------

    def select_gossip_partner(self) -> Optional[str]:
        return self._view.select_oldest()

    def build_gossip_message(
        self, rng: Optional[random.Random] = None
    ) -> ColumnarGossipMessage:
        subset = self._view.select_subset_columns(
            self.config.gossip.gossip_length, rng=rng
        )
        return ColumnarGossipMessage(
            sender=self.peer_id,
            summary_bits=self.summary_bits(),
            view_subset=tuple(subset),
        )

    def apply_gossip(self, message: ColumnarGossipMessage) -> None:
        self._view.merge_columns(message.view_subset, self_contact=self.peer_id)
        if message.sender != self.peer_id:
            self._view.put_fresh(message.sender, message.summary_bits)


@dataclass(slots=True)
class KernelDirectoryPeer(DirectoryPeer):
    """A directory peer with an epoch-aged index and an inverted holder table.

    * entry ages live in a stamp column under one epoch clock, so the
      per-period ageing of the whole index is a single increment;
    * ``lookup_index`` resolves through an object → holders inverted table
      instead of scanning every index entry's object set.

    The ``DirectoryEntry`` objects remain the canonical store of each
    member's object list (their ``age`` field is synchronised on demand for
    export and diagnostics), so the inherited Algorithm 3/6 control flow is
    untouched.
    """

    _stamps: Dict[str, int] = field(default_factory=dict, init=False, repr=False)
    _holders: Dict[ObjectId, Set[str]] = field(default_factory=dict, init=False, repr=False)
    _clock: int = field(default=0, init=False, repr=False)

    # -- ageing ----------------------------------------------------------------

    def increment_ages(self) -> None:
        self._clock += 1

    def age_of(self, peer_id: str) -> Optional[int]:
        stamp = self._stamps.get(peer_id)
        return None if stamp is None else self._clock - stamp

    def _synced_entry(self, entry: DirectoryEntry) -> DirectoryEntry:
        entry.age = self._clock - self._stamps[entry.peer_id]
        return entry

    def entry(self, peer_id: str) -> Optional[DirectoryEntry]:
        entry = self._index.get(peer_id)
        return None if entry is None else self._synced_entry(entry)

    # -- membership -------------------------------------------------------------

    def register_client(self, peer_id: str, object_id: Optional[ObjectId] = None) -> bool:
        entry = self._index.get(peer_id)
        if entry is not None:
            if object_id is not None:
                self._record_objects(entry, [object_id])
            self._stamps[peer_id] = self._clock
            return True
        if self.is_full:
            return False
        entry = DirectoryEntry(peer_id=peer_id, age=0)
        if object_id is not None:
            self._record_objects(entry, [object_id])
        self._index[peer_id] = entry
        self._stamps[peer_id] = self._clock
        return True

    def _record_objects(self, entry: DirectoryEntry, objects: Sequence[ObjectId]) -> None:
        holders = self._holders
        for object_id in objects:
            if object_id not in entry.objects:
                entry.objects.add(object_id)
                self._unpublished_objects.add(object_id)
                holder_set = holders.get(object_id)
                if holder_set is None:
                    holders[object_id] = {entry.peer_id}
                else:
                    holder_set.add(entry.peer_id)

    def _unindex_object(self, peer_id: str, object_id: ObjectId) -> None:
        holder_set = self._holders.get(object_id)
        if holder_set is not None:
            holder_set.discard(peer_id)
            if not holder_set:
                del self._holders[object_id]

    def remove_client(self, peer_id: str) -> bool:
        entry = self._index.pop(peer_id, None)
        if entry is None:
            return False
        self._stamps.pop(peer_id, None)
        for object_id in entry.objects:
            self._unindex_object(peer_id, object_id)
        return True

    # -- Algorithm 6 -------------------------------------------------------------

    def handle_push(self, push: PushMessage) -> None:
        entry = self._index.get(push.sender)
        if entry is None:
            if self.is_full:
                return
            entry = DirectoryEntry(peer_id=push.sender, age=0)
            self._index[push.sender] = entry
        self._record_objects(entry, push.added)
        for object_id in push.removed:
            if object_id in entry.objects:
                entry.objects.discard(object_id)
                self._unindex_object(push.sender, object_id)
        self._stamps[push.sender] = self._clock
        self.pushes_received += 1

    def handle_keepalive(self, peer_id: str) -> None:
        if peer_id in self._stamps:
            self._stamps[peer_id] = self._clock

    def evict_dead_entries(self) -> List[str]:
        dead_age = self.config.gossip.dead_age
        clock = self._clock
        dead = [
            peer_id for peer_id, stamp in self._stamps.items() if clock - stamp > dead_age
        ]
        for peer_id in dead:
            self.remove_client(peer_id)
        return dead

    # -- lookups -------------------------------------------------------------------

    def indexed_objects(self) -> Set[ObjectId]:
        return set(self._holders)

    def lookup_index(self, object_id: ObjectId) -> List[str]:
        holder_set = self._holders.get(object_id)
        if not holder_set:
            return []
        clock = self._clock
        stamps = self._stamps
        holders = sorted((clock - stamps[peer_id], peer_id) for peer_id in holder_set)
        return [peer_id for _, peer_id in holders]

    # -- state transfer --------------------------------------------------------------

    def export_state(self) -> Dict[str, DirectoryEntry]:
        return {
            peer_id: self._synced_entry(entry) for peer_id, entry in self._index.items()
        }

    def import_state(self, index: Dict[str, DirectoryEntry]) -> None:
        self._index = dict(index)
        clock = self._clock
        self._stamps = {peer_id: clock - entry.age for peer_id, entry in index.items()}
        holders: Dict[ObjectId, Set[str]] = {}
        for peer_id, entry in index.items():
            for object_id in entry.objects:
                holder_set = holders.get(object_id)
                if holder_set is None:
                    holders[object_id] = {peer_id}
                else:
                    holder_set.add(peer_id)
        self._holders = holders
        self._unpublished_objects.update(holders)
