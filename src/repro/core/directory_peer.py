"""Directory peers: directory index, directory summaries and Algorithm 3.

A directory peer ``d(ws, loc)`` has a *complete view* of its content overlay,
the directory index: one entry per content peer carrying its address, an age
(for failure detection) and the list of object identifiers it holds.  It also
keeps Bloom-filter *directory summaries* of the indexes of the neighbouring
directory peers of the same website and answers queries with Algorithm 3:
index lookup → summary lookup → origin server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import FlowerConfig
from repro.core.content_peer import PushMessage
from repro.datastructures.bloom import BloomFilter
from repro.workload.catalog import ObjectId


@dataclass(slots=True)
class DirectoryEntry:
    """One directory-index entry: a content peer, its age and its object list."""

    peer_id: str
    age: int = 0
    objects: Set[ObjectId] = field(default_factory=set)

    def refresh(self) -> None:
        self.age = 0


@dataclass(slots=True)
class RedirectionDecision:
    """Outcome of Algorithm 3 at one directory peer."""

    #: "content_peer", "directory_peer" or "server"
    kind: str
    target: Optional[str] = None


@dataclass(slots=True)
class DirectoryPeer:
    """State and behaviour of a directory peer ``d(ws, loc)``."""

    peer_id: str
    host_id: int
    website: str
    locality: int
    node_id: int
    config: FlowerConfig

    _index: Dict[str, DirectoryEntry] = field(default_factory=dict, init=False, repr=False)
    _summaries: Dict[str, BloomFilter] = field(default_factory=dict, init=False, repr=False)
    #: per-object query counts, used by the active-replication extension to
    #: decide which objects are popular enough to push to other overlays
    _request_counts: Dict[ObjectId, int] = field(default_factory=dict, init=False, repr=False)
    #: objects added to the index since the last summary refresh we sent out
    _unpublished_objects: Set[ObjectId] = field(default_factory=set, init=False, repr=False)
    _published_object_count: int = field(default=0, init=False, repr=False)
    alive: bool = field(default=True, init=False)
    #: statistics
    queries_processed: int = field(default=0, init=False)
    pushes_received: int = field(default=0, init=False)
    summaries_sent: int = field(default=0, init=False)

    # -- directory index -------------------------------------------------------

    @property
    def index_size(self) -> int:
        return len(self._index)

    @property
    def is_full(self) -> bool:
        """True once the content overlay reached its maximum size ``Sco``."""
        return len(self._index) >= self.config.max_content_overlay_size

    def members(self) -> Sequence[str]:
        return tuple(self._index)

    def entry(self, peer_id: str) -> Optional[DirectoryEntry]:
        return self._index.get(peer_id)

    def indexed_objects(self) -> Set[ObjectId]:
        """Union of all object identifiers listed in the directory index."""
        objects: Set[ObjectId] = set()
        for entry in self._index.values():
            objects.update(entry.objects)
        return objects

    def register_client(self, peer_id: str, object_id: Optional[ObjectId] = None) -> bool:
        """Optimistically add a new content peer after serving its query (Section 3.4).

        Returns ``False`` when the overlay is full and the peer was not added.
        """
        if peer_id in self._index:
            if object_id is not None:
                self._record_objects(self._index[peer_id], [object_id])
            self._index[peer_id].refresh()
            return True
        if self.is_full:
            return False
        entry = DirectoryEntry(peer_id=peer_id, age=0)
        if object_id is not None:
            self._record_objects(entry, [object_id])
        self._index[peer_id] = entry
        return True

    def _record_objects(self, entry: DirectoryEntry, objects: Sequence[ObjectId]) -> None:
        for object_id in objects:
            if object_id not in entry.objects:
                entry.objects.add(object_id)
                self._unpublished_objects.add(object_id)

    def remove_client(self, peer_id: str) -> bool:
        """Drop a content peer (failed, departed or changed locality)."""
        return self._index.pop(peer_id, None) is not None

    # -- Algorithm 6: directory behaviour ----------------------------------------

    def handle_push(self, push: PushMessage) -> None:
        """Update the index entry of the pushing content peer from its delta list."""
        entry = self._index.get(push.sender)
        if entry is None:
            if self.is_full:
                return
            entry = DirectoryEntry(peer_id=push.sender, age=0)
            self._index[push.sender] = entry
        self._record_objects(entry, push.added)
        for object_id in push.removed:
            entry.objects.discard(object_id)
        entry.refresh()
        self.pushes_received += 1

    def handle_keepalive(self, peer_id: str) -> None:
        entry = self._index.get(peer_id)
        if entry is not None:
            entry.refresh()

    def increment_ages(self) -> None:
        for entry in self._index.values():
            entry.age += 1

    def evict_dead_entries(self) -> List[str]:
        """Remove entries whose age exceeded ``Tdead`` (Section 5.1)."""
        dead = [
            peer_id
            for peer_id, entry in self._index.items()
            if entry.age > self.config.gossip.dead_age
        ]
        for peer_id in dead:
            del self._index[peer_id]
        return dead

    # -- directory summaries ----------------------------------------------------------

    def build_summary(self) -> BloomFilter:
        """A Bloom filter over every object identifier in the directory index."""
        return BloomFilter.from_items(self.indexed_objects(), num_bits=self.config.summary_bits)

    def should_refresh_summary(self) -> bool:
        """Delayed propagation rule: refresh when enough *new* objects accumulated."""
        if not self._unpublished_objects:
            return False
        base = max(1, self._published_object_count)
        return len(self._unpublished_objects) / base >= self.config.gossip.push_threshold

    def publish_summary(self) -> BloomFilter:
        """Build a fresh summary and mark the current index content as published."""
        summary = self.build_summary()
        self._published_object_count = len(self.indexed_objects())
        self._unpublished_objects.clear()
        self.summaries_sent += 1
        return summary

    def store_neighbor_summary(self, neighbor_peer_id: str, summary: BloomFilter) -> None:
        self._summaries[neighbor_peer_id] = summary

    def neighbor_summaries(self) -> Dict[str, BloomFilter]:
        return dict(self._summaries)

    def drop_neighbor(self, neighbor_peer_id: str) -> None:
        self._summaries.pop(neighbor_peer_id, None)

    # -- Algorithm 3: query processing -----------------------------------------------

    def lookup_index(self, object_id: ObjectId) -> List[str]:
        """Content peers of this overlay whose index entry lists ``object_id``.

        Results are ordered youngest entry first, so redirections prefer peers
        heard from recently (fewer redirection failures under churn).
        """
        holders = [
            (entry.age, peer_id)
            for peer_id, entry in self._index.items()
            if object_id in entry.objects
        ]
        holders.sort()
        return [peer_id for _, peer_id in holders]

    def lookup_summaries(self, object_id: ObjectId) -> List[str]:
        """Neighbouring directory peers whose summary may contain ``object_id``."""
        return sorted(
            neighbor
            for neighbor, summary in self._summaries.items()
            if summary.might_contain(object_id)
        )

    def process_query(
        self, object_id: ObjectId, exclude: Tuple[str, ...] = ()
    ) -> RedirectionDecision:
        """Algorithm 3: decide where to redirect a query for ``object_id``.

        ``exclude`` lists targets already tried (redirection failures or the
        directory peers the query already visited) so retries make progress.
        """
        self.queries_processed += 1
        self._request_counts[object_id] = self._request_counts.get(object_id, 0) + 1
        excluded = set(exclude)
        for holder in self.lookup_index(object_id):
            if holder not in excluded:
                return RedirectionDecision(kind="content_peer", target=holder)
        for neighbor in self.lookup_summaries(object_id):
            if neighbor not in excluded:
                return RedirectionDecision(kind="directory_peer", target=neighbor)
        return RedirectionDecision(kind="server", target=None)

    # -- popularity (active-replication extension) ---------------------------------------

    def record_request(self, object_id: ObjectId) -> None:
        """Count a request observed for ``object_id`` (popularity tracking)."""
        self._request_counts[object_id] = self._request_counts.get(object_id, 0) + 1

    def request_count(self, object_id: ObjectId) -> int:
        return self._request_counts.get(object_id, 0)

    def popular_objects(self, top_k: int) -> List[ObjectId]:
        """The ``top_k`` most requested objects this directory has seen."""
        if top_k <= 0:
            return []
        ranked = sorted(self._request_counts.items(), key=lambda item: (-item[1], item[0]))
        return [object_id for object_id, _ in ranked[:top_k]]

    # -- failure ---------------------------------------------------------------------

    def fail(self) -> None:
        self.alive = False

    def export_state(self) -> Dict[str, DirectoryEntry]:
        """Hand over the directory index (voluntary-leave replacement, Section 5.2)."""
        return {peer_id: entry for peer_id, entry in self._index.items()}

    def import_state(self, index: Dict[str, DirectoryEntry]) -> None:
        self._index = dict(index)
        self._unpublished_objects.update(self.indexed_objects())
