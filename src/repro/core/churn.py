"""Churn and failure injection (Section 5).

The paper handles three forms of dynamicity: content-peer failures/leaves
(detected by ageing and keepalives, Section 5.1), directory failures/leaves
(repaired by the replacement protocol, Section 5.2) and locality changes
(Section 5.4).  :class:`ChurnInjector` drives all three against a running
:class:`~repro.core.system.FlowerCDN` on a configurable schedule so the churn
ablation benchmark and the resilience example can measure their impact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.system import FlowerCDN
from repro.sim.process import PeriodicProcess


@dataclass(frozen=True)
class ChurnConfig:
    """Rates of the different churn events.

    All rates are events per hour over the whole system; an event picks its
    victim uniformly among the eligible peers.
    """

    content_failures_per_hour: float = 0.0
    directory_failures_per_hour: float = 0.0
    locality_changes_per_hour: float = 0.0
    #: how often the injector wakes up to decide whether to inject events
    tick_period_s: float = 60.0

    def __post_init__(self) -> None:
        for name in (
            "content_failures_per_hour",
            "directory_failures_per_hour",
            "locality_changes_per_hour",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.tick_period_s <= 0:
            raise ValueError("tick_period_s must be positive")

    @property
    def is_enabled(self) -> bool:
        return (
            self.content_failures_per_hour > 0
            or self.directory_failures_per_hour > 0
            or self.locality_changes_per_hour > 0
        )


@dataclass
class ChurnLogEntry:
    """One injected churn event (for diagnostics and assertions in tests)."""

    time: float
    kind: str
    target: str


class ChurnInjector:
    """Injects failures, leaves and locality changes into a running system."""

    __slots__ = ("_system", "_config", "_process", "log")

    def __init__(self, system: FlowerCDN, config: ChurnConfig) -> None:
        self._system = system
        self._config = config
        self._process: Optional[PeriodicProcess] = None
        self.log: List[ChurnLogEntry] = []

    @property
    def config(self) -> ChurnConfig:
        return self._config

    @property
    def events_injected(self) -> int:
        return len(self.log)

    def start(self) -> None:
        """Begin injecting events on the configured tick period."""
        if not self._config.is_enabled or self._process is not None:
            return
        self._process = PeriodicProcess(
            self._system.sim,
            self._config.tick_period_s,
            self._tick,
            name="churn-injector",
            jitter_stream="churn:jitter",
        )
        self._process.start()

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # -- injection -----------------------------------------------------------

    def _events_this_tick(self, rate_per_hour: float) -> int:
        """Sample how many events of a given kind happen during one tick."""
        expected = rate_per_hour * self._config.tick_period_s / 3600.0
        count = int(expected)
        remainder = expected - count
        if self._system.sim.streams.random("churn:fraction") < remainder:
            count += 1
        return count

    def _tick(self) -> None:
        sim = self._system.sim
        for _ in range(self._events_this_tick(self._config.content_failures_per_hour)):
            victim = self._pick_content_peer()
            if victim is not None and self._system.fail_content_peer(victim):
                self.log.append(ChurnLogEntry(time=sim.now, kind="content_failure", target=victim))
        for _ in range(self._events_this_tick(self._config.directory_failures_per_hour)):
            pair = self._pick_directory_pair()
            if pair is not None and self._system.fail_directory(*pair):
                self.log.append(
                    ChurnLogEntry(time=sim.now, kind="directory_failure", target=f"{pair}")
                )
        for _ in range(self._events_this_tick(self._config.locality_changes_per_hour)):
            victim = self._pick_content_peer()
            if victim is None:
                continue
            new_locality = sim.streams.randint(
                "churn:locality", 0, self._system.config.num_localities - 1
            )
            moved = self._system.change_locality(victim, new_locality)
            if moved is not None:
                self.log.append(
                    ChurnLogEntry(time=sim.now, kind="locality_change", target=victim)
                )

    def _pick_content_peer(self) -> Optional[str]:
        alive = self._system.alive_content_peer_ids()
        if not alive:
            return None
        return self._system.sim.streams.choice("churn:victim", alive)

    def _pick_directory_pair(self) -> Optional[tuple[str, int]]:
        pairs = [
            (website, locality)
            for website, locality in self._system.active_directory_pairs()
            if self._system.overlay_members(website, locality)
        ]
        if not pairs:
            return None
        return self._system.sim.streams.choice("churn:dir-victim", pairs)
