"""Active replication: push popular content between overlays of one website.

Section 8 of the paper lists this as planned work: "introduce active
replication by pushing popular contents from some content overlay towards
other overlays of the same website".  The extension implemented here does
exactly that on top of the running system:

* each directory peer already counts how often every object is requested
  (:meth:`repro.core.directory_peer.DirectoryPeer.popular_objects`);
* periodically, the replicator takes the ``top_k`` most popular objects of
  every active content overlay and pushes a copy to each *neighbouring*
  overlay of the same website (the ones reachable through directory
  summaries) that does not hold it yet;
* the copy is stored at the least-loaded content peer of the target overlay
  and registered in the target directory's index, so later local queries in
  that locality hit immediately instead of travelling across localities or to
  the origin server;
* the pushed bytes are charged to the bandwidth accountant under the
  ``replication`` category, keeping the cost visible next to the gossip
  overhead the paper analyses.

Because this is an extension beyond the evaluated system, it is off by
default; the ablation benchmark ``benchmarks/test_ablation_active_replication``
measures its effect against the unmodified system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.directory_peer import DirectoryPeer
from repro.core.system import FlowerCDN
from repro.sim.process import PeriodicProcess
from repro.workload.catalog import ObjectId


@dataclass(frozen=True)
class ReplicationConfig:
    """Parameters of the active-replication extension."""

    #: how often the replicator scans overlays for popular content
    period_s: float = 1800.0
    #: how many popular objects per overlay are considered each round
    top_k: int = 5
    #: minimum number of requests an object needs before it is replicated
    min_requests: int = 3
    #: assumed wire size of one replicated object (for bandwidth accounting)
    object_size_bytes: int = 50_000

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.top_k <= 0:
            raise ValueError("top_k must be positive")
        if self.min_requests < 1:
            raise ValueError("min_requests must be at least 1")
        if self.object_size_bytes <= 0:
            raise ValueError("object_size_bytes must be positive")


@dataclass
class ReplicationEvent:
    """One object pushed from a source overlay to a target overlay."""

    time: float
    website: str
    object_id: ObjectId
    source_locality: int
    target_locality: int
    target_peer: str


class ActiveReplicator:
    """Periodically pushes popular objects towards sibling content overlays."""

    __slots__ = ("_system", "_config", "_process", "events")

    def __init__(self, system: FlowerCDN, config: ReplicationConfig | None = None) -> None:
        self._system = system
        self._config = config or ReplicationConfig()
        self._process: Optional[PeriodicProcess] = None
        self.events: List[ReplicationEvent] = []

    @property
    def config(self) -> ReplicationConfig:
        return self._config

    @property
    def replications_performed(self) -> int:
        return len(self.events)

    def start(self) -> None:
        if self._process is not None:
            return
        self._process = PeriodicProcess(
            self._system.sim,
            self._config.period_s,
            self._tick,
            name="active-replication",
            jitter_stream="replication:jitter",
        )
        self._process.start()

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # -- one replication round ---------------------------------------------------------

    def _tick(self) -> None:
        system = self._system
        for website, locality in sorted(system._overlay_members):  # noqa: SLF001
            source = system.directory_for(website, locality)
            if source is None or not source.alive:
                continue
            candidates = [
                object_id
                for object_id in source.popular_objects(self._config.top_k)
                if source.request_count(object_id) >= self._config.min_requests
            ]
            if not candidates:
                continue
            for neighbor_placement in system.dring.neighbors_of(website, locality):
                target = system.directory_peer(neighbor_placement.peer_id)
                if target is None or not target.alive:
                    continue
                self._replicate_into(source, target, candidates)

    def _replicate_into(
        self, source: DirectoryPeer, target: DirectoryPeer, objects: List[ObjectId]
    ) -> None:
        system = self._system
        already_there = target.indexed_objects()
        members = [
            system.content_peer(peer_id)
            for peer_id in system.overlay_members(target.website, target.locality)
        ]
        members = [peer for peer in members if peer is not None and peer.alive]
        if not members:
            return
        for object_id in objects:
            if object_id in already_there:
                continue
            # Place the copy at the member currently holding the fewest objects,
            # spreading the storage load across the target overlay.
            receiver = min(members, key=lambda peer: (peer.num_objects, peer.peer_id))
            if system.reachability is not None and not system._delivery_allowed(  # noqa: SLF001
                "replication",
                source.host_id,
                receiver.host_id,
                source.peer_id,
                receiver.peer_id,
            ):
                # The replica push is lost in transit; retried next round.
                continue
            receiver.store_object(object_id)
            target.register_client(receiver.peer_id, object_id)
            self.events.append(
                ReplicationEvent(
                    time=system.sim.now,
                    website=source.website,
                    object_id=object_id,
                    source_locality=source.locality,
                    target_locality=target.locality,
                    target_peer=receiver.peer_id,
                )
            )
            system.bandwidth.record_message(
                system.sim.now,
                source.peer_id,
                receiver.peer_id,
                self._config.object_size_bytes,
                "replication",
            )
