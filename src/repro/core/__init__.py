"""Flower-CDN proper: D-ring, directory peers, content overlays and gossip.

The public entry point is :class:`repro.core.system.FlowerCDN`, which wires a
D-ring (one directory peer per website/locality pair) with gossip-maintained
content overlays on top of the simulation, network and DHT substrates.
"""

from repro.core.config import FlowerConfig, GossipConfig, MessageSizeModel
from repro.core.keys import DRingKey, KeyScheme
from repro.core.dring import DRing
from repro.core.directory_peer import DirectoryEntry, DirectoryPeer
from repro.core.content_peer import ContentPeer, GossipMessage, PushMessage
from repro.core.system import FlowerCDN
from repro.core.churn import ChurnConfig, ChurnInjector
from repro.core.replication import ActiveReplicator, ReplicationConfig

__all__ = [
    "FlowerConfig",
    "GossipConfig",
    "MessageSizeModel",
    "DRingKey",
    "KeyScheme",
    "DRing",
    "DirectoryPeer",
    "DirectoryEntry",
    "ContentPeer",
    "GossipMessage",
    "PushMessage",
    "FlowerCDN",
    "ChurnConfig",
    "ChurnInjector",
    "ActiveReplicator",
    "ReplicationConfig",
]
