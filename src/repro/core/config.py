"""Configuration of a Flower-CDN deployment / simulation.

The defaults reproduce Table 1 of the paper.  All durations are seconds of
simulation time, all sizes are bytes unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Tuple

#: seconds in one simulated minute / hour, used for readable defaults
MINUTE = 60.0
HOUR = 3600.0


@dataclass(frozen=True)
class GossipConfig:
    """Gossip parameters of the content overlays (Section 4.2, Table 1)."""

    #: interval between two gossip exchanges initiated by each content peer
    gossip_period_s: float = 30 * MINUTE
    #: maximum number of contacts in a content peer's view (Vgossip)
    view_size: int = 50
    #: number of view entries exchanged per gossip round (Lgossip)
    gossip_length: int = 10
    #: fraction of content-list changes that triggers a push to the directory
    push_threshold: float = 0.1
    #: interval between keepalive messages from content peers to their directory
    keepalive_period_s: float = 30 * MINUTE
    #: age (in gossip periods) after which a directory entry / view entry is dead
    dead_age: int = 4

    def __post_init__(self) -> None:
        if self.gossip_period_s <= 0:
            raise ValueError("gossip_period_s must be positive")
        if self.view_size <= 0:
            raise ValueError("view_size must be positive")
        if not 0 < self.gossip_length <= self.view_size:
            raise ValueError("gossip_length must satisfy 0 < Lgossip <= Vgossip")
        if not 0 < self.push_threshold <= 1:
            raise ValueError("push_threshold must be in (0, 1]")
        if self.keepalive_period_s <= 0:
            raise ValueError("keepalive_period_s must be positive")
        if self.dead_age <= 0:
            raise ValueError("dead_age must be positive")


@dataclass(frozen=True)
class MessageSizeModel:
    """Wire sizes used for background-bandwidth accounting.

    The paper accounts gossip and push traffic in bits per second per peer;
    these constants define how large each protocol message is.  Summary sizes
    are derived from the Bloom-filter configuration (8 bits per object,
    Table 1), the rest are conventional field sizes.
    """

    header_bytes: int = 20
    address_bytes: int = 6
    age_bytes: int = 4
    object_id_bytes: int = 20

    def summary_bytes(self, summary_bits: int) -> int:
        return (summary_bits + 7) // 8

    def view_entry_bytes(self, summary_bits: int) -> int:
        return self.address_bytes + self.age_bytes + self.summary_bytes(summary_bits)

    def gossip_message_bytes(self, summary_bits: int, gossip_length: int) -> int:
        """Size of one gossip message: own summary + ``Lgossip`` view entries."""
        return (
            self.header_bytes
            + self.summary_bytes(summary_bits)
            + gossip_length * self.view_entry_bytes(summary_bits)
        )

    def push_message_bytes(self, num_changes: int) -> int:
        return self.header_bytes + num_changes * self.object_id_bytes

    def keepalive_bytes(self) -> int:
        return self.header_bytes

    def summary_refresh_bytes(self, summary_bits: int) -> int:
        return self.header_bytes + self.summary_bytes(summary_bits)


@dataclass(frozen=True)
class FlowerConfig:
    """Full Flower-CDN configuration (Table 1 defaults)."""

    # -- population --------------------------------------------------------
    num_websites: int = 100
    active_websites: int = 6
    objects_per_website: int = 500
    num_localities: int = 6
    max_content_overlay_size: int = 100  # Sco

    # -- identifier space ----------------------------------------------------
    #: bits reserved for the locality ID (m1); 2**m1 must be >= num_localities
    locality_bits: int = 3
    #: bits reserved for the website ID (m2)
    website_bits: int = 29
    #: structured overlay the D-ring is embedded in: "chord" (the paper's
    #: evaluation) or "pastry" (the other substrate named in Section 3.1)
    dht_substrate: str = "chord"

    # -- summaries -------------------------------------------------------------
    #: Bloom-filter bits per object (Table 1: summary size = 8 * nb-ob bits)
    summary_bits_per_object: int = 8

    # -- gossip -------------------------------------------------------------------
    gossip: GossipConfig = field(default_factory=GossipConfig)
    message_sizes: MessageSizeModel = field(default_factory=MessageSizeModel)

    # -- query processing --------------------------------------------------------
    #: where a content peer sends a query its view cannot resolve:
    #: "server" (default, what the paper's sensitivity to gossip parameters
    #: implies) or "directory" (ablation: fall back to the directory peer).
    content_miss_fallback: str = "server"
    #: maximum providers tried after redirection failures before giving up
    max_redirection_attempts: int = 3
    #: latency charged for a redirection/directory attempt that times out
    #: because the target is unreachable (only relevant with a reachability
    #: model attached)
    redirect_timeout_ms: float = 500.0
    #: initial suspicion backoff after a contact times out: the contact is
    #: skipped during redirection for this long (doubling per consecutive
    #: timeout)
    suspicion_backoff_s: float = 60.0
    #: upper bound of the doubling suspicion backoff
    suspicion_backoff_max_s: float = 1800.0
    #: optional bound on a content peer's cache (None = unbounded, the paper's
    #: assumption); when set, an LRU policy evicts the oldest objects.
    content_cache_capacity: int | None = None

    # -- simulation ----------------------------------------------------------------
    simulation_duration_s: float = 24 * HOUR
    metrics_window_s: float = HOUR
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_websites <= 0:
            raise ValueError("num_websites must be positive")
        if not 0 < self.active_websites <= self.num_websites:
            raise ValueError("active_websites must be in (0, num_websites]")
        if self.objects_per_website <= 0:
            raise ValueError("objects_per_website must be positive")
        if self.num_localities <= 0:
            raise ValueError("num_localities must be positive")
        if self.max_content_overlay_size <= 0:
            raise ValueError("max_content_overlay_size must be positive")
        if 2 ** self.locality_bits < self.num_localities:
            raise ValueError(
                f"locality_bits={self.locality_bits} cannot encode {self.num_localities} localities"
            )
        if self.website_bits <= 0:
            raise ValueError("website_bits must be positive")
        if self.dht_substrate not in ("chord", "pastry"):
            raise ValueError("dht_substrate must be 'chord' or 'pastry'")
        if self.summary_bits_per_object <= 0:
            raise ValueError("summary_bits_per_object must be positive")
        if self.content_miss_fallback not in ("server", "directory"):
            raise ValueError("content_miss_fallback must be 'server' or 'directory'")
        if self.max_redirection_attempts <= 0:
            raise ValueError("max_redirection_attempts must be positive")
        if self.redirect_timeout_ms <= 0:
            raise ValueError("redirect_timeout_ms must be positive")
        if self.suspicion_backoff_s <= 0:
            raise ValueError("suspicion_backoff_s must be positive")
        if self.suspicion_backoff_max_s < self.suspicion_backoff_s:
            raise ValueError(
                "suspicion_backoff_max_s must be >= suspicion_backoff_s"
            )
        if self.content_cache_capacity is not None and self.content_cache_capacity <= 0:
            raise ValueError("content_cache_capacity must be positive or None")
        if self.simulation_duration_s <= 0:
            raise ValueError("simulation_duration_s must be positive")
        if self.metrics_window_s <= 0:
            raise ValueError("metrics_window_s must be positive")

    # -- derived quantities ------------------------------------------------------

    @property
    def id_bits(self) -> int:
        """Total identifier length ``m = m1 + m2``."""
        return self.locality_bits + self.website_bits

    @property
    def summary_bits(self) -> int:
        """Bloom-filter size for content and directory summaries."""
        return self.summary_bits_per_object * self.objects_per_website

    @property
    def num_directory_peers(self) -> int:
        """D-ring size in its stable structure: one peer per (website, locality)."""
        return self.num_websites * self.num_localities

    def with_gossip(self, **changes: Any) -> "FlowerConfig":
        """Return a copy with updated gossip parameters (used by the Table 2 sweeps)."""
        return replace(self, gossip=replace(self.gossip, **changes))

    def scaled_down(
        self,
        num_websites: int = 20,
        active_websites: int = 2,
        objects_per_website: int = 100,
        num_localities: int = 3,
        max_content_overlay_size: int = 40,
        simulation_duration_s: float = 3 * HOUR,
        metrics_window_s: float = 15 * MINUTE,
    ) -> "FlowerConfig":
        """A laptop-scale variant preserving the paper's parameter *ratios*.

        Benchmarks default to this scale; ``FlowerConfig()`` itself keeps the
        paper-scale values so paper-scale runs remain one call away.
        """
        return replace(
            self,
            num_websites=num_websites,
            active_websites=active_websites,
            objects_per_website=objects_per_website,
            num_localities=num_localities,
            max_content_overlay_size=max_content_overlay_size,
            simulation_duration_s=simulation_duration_s,
            metrics_window_s=metrics_window_s,
        )

    def table1(self) -> Dict[str, object]:
        """The Table 1 parameter summary as printable rows."""
        gossip = self.gossip
        return {
            "Nb of localities (k)": self.num_localities,
            "Nb of websites (|W|)": self.num_websites,
            "Max content-overlay size (Sco)": self.max_content_overlay_size,
            "Nb of objects/website (nb-ob)": self.objects_per_website,
            "Summary size (bits)": self.summary_bits,
            "Push threshold": gossip.push_threshold,
            "View size (Vgossip)": gossip.view_size,
            "Gossip period (Tgossip, s)": gossip.gossip_period_s,
            "Gossip length (Lgossip)": gossip.gossip_length,
            "Simulation duration (s)": self.simulation_duration_s,
        }


#: the gossip sweeps of Table 2, expressed as (parameter name, values) pairs
TABLE2_SWEEPS: Tuple[Tuple[str, Tuple[object, ...]], ...] = (
    ("gossip_length", (5, 10, 20)),
    ("gossip_period_s", (1 * MINUTE, 30 * MINUTE, 1 * HOUR)),
    ("view_size", (20, 50, 70)),
)
