"""Bloom filters for content and directory summaries.

The paper follows Fan et al.'s "Summary Cache" design: each content peer
summarises its content list as a Bloom filter of ``8 * nb_ob`` bits (Table 1,
*summary size*), and each directory peer keeps Bloom-filter summaries of its
neighbours' directory indexes.  Summaries may report false positives (the
query is then redirected to a peer that does not actually hold the object,
which Flower-CDN handles as a redirection failure) but never false negatives.

The implementation is pure Python over an ``int`` bit mask with double
hashing (Kirsch & Mitzenmacher), which keeps it fast enough for simulations
with tens of thousands of summaries while remaining dependency-free.
"""

from __future__ import annotations

import hashlib
import math
from typing import TYPE_CHECKING, Iterable, Iterator, List

if TYPE_CHECKING:
    from repro.datastructures.aged_view import AgedEntry


def _hash_pair(item: str) -> tuple[int, int]:
    """Derive two independent 64-bit hashes of ``item`` for double hashing."""
    digest = hashlib.blake2b(item.encode("utf-8"), digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "big")
    h2 = int.from_bytes(digest[8:], "big") | 1  # force odd so strides cover the filter
    return h1, h2


#: Memo of (num_bits, num_hashes, item) -> OR-mask of the item's bit positions.
#: Simulations probe the same object identifiers against thousands of filters
#: sharing one geometry, so the mask — which fully determines add/contains —
#: is computed once per item instead of once per probe.  Bounded so synthetic
#: stress loads cannot grow it without limit.
_MASK_CACHE: dict[tuple[int, int, str], int] = {}
_MASK_CACHE_MAX = 1 << 20


def _mask_for(num_bits: int, num_hashes: int, item: str) -> int:
    key = (num_bits, num_hashes, item)
    try:
        return _MASK_CACHE[key]
    except KeyError:
        pass
    h1, h2 = _hash_pair(item)
    mask = 0
    for i in range(num_hashes):
        mask |= 1 << ((h1 + i * h2) % num_bits)
    if len(_MASK_CACHE) >= _MASK_CACHE_MAX:
        _MASK_CACHE.clear()
    _MASK_CACHE[key] = mask
    return mask


def mask_for(num_bits: int, num_hashes: int, item: str) -> int:
    """OR-mask of ``item``'s bit positions for the given filter geometry.

    Public entry point for packed-summary backends (``repro.core.columns``)
    that operate on raw bit masks: sharing the memoised table with
    :class:`BloomFilter` guarantees bit-identical summaries across backends.
    """
    return _mask_for(num_bits, num_hashes, item)


def entries_maybe_containing(
    entries: "Iterable[AgedEntry[BloomFilter]]", item: str
) -> "List[AgedEntry[BloomFilter]]":
    """Filter aged-view entries whose Bloom payload may contain ``item``.

    Hot-path helper for local query resolution: all summaries in one overlay
    share a geometry, so the item's probe mask is computed once per distinct
    ``(num_bits, num_hashes)`` encountered and compared against each filter's
    bit set directly, instead of re-deriving positions per probe.  Entries
    with no payload are skipped.
    """
    result = []
    mask = 0
    geom_bits = geom_hashes = -1
    for entry in entries:
        payload = entry.payload
        if payload is None:
            continue
        num_bits = payload._num_bits
        num_hashes = payload._num_hashes
        if num_bits != geom_bits or num_hashes != geom_hashes:
            geom_bits, geom_hashes = num_bits, num_hashes
            mask = _mask_for(num_bits, num_hashes, item)
        if payload._bits & mask == mask:
            result.append(entry)
    return result


class BloomFilter:
    """A fixed-size Bloom filter over string keys.

    Args:
        num_bits: size of the bit array (the paper uses ``8 * nb_ob`` bits).
        num_hashes: number of hash functions; if omitted, the optimum
            ``(num_bits / expected_items) * ln 2`` is used when
            ``expected_items`` is given, else 4.
        expected_items: expected number of inserted keys, used only to pick
            a sensible default ``num_hashes``.
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int | None = None,
        expected_items: int | None = None,
    ) -> None:
        if num_bits <= 0:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        if num_hashes is None:
            if expected_items and expected_items > 0:
                num_hashes = max(1, round((num_bits / expected_items) * math.log(2)))
            else:
                num_hashes = 4
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        self._num_bits = num_bits
        self._num_hashes = num_hashes
        self._bits = 0
        self._count = 0

    # -- construction helpers ------------------------------------------------

    @classmethod
    def for_capacity(cls, expected_items: int, bits_per_item: int = 8) -> "BloomFilter":
        """Build a filter sized like the paper's summaries (8 bits per object)."""
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        if bits_per_item <= 0:
            raise ValueError("bits_per_item must be positive")
        return cls(num_bits=expected_items * bits_per_item, expected_items=expected_items)

    @classmethod
    def from_items(
        cls, items: Iterable[str], num_bits: int, num_hashes: int | None = None
    ) -> "BloomFilter":
        bloom = cls(num_bits=num_bits, num_hashes=num_hashes)
        bloom.update(items)
        return bloom

    # -- core operations -------------------------------------------------------

    def _positions(self, item: str) -> Iterator[int]:
        h1, h2 = _hash_pair(item)
        for i in range(self._num_hashes):
            yield (h1 + i * h2) % self._num_bits

    def add(self, item: str) -> None:
        self._bits |= _mask_for(self._num_bits, self._num_hashes, item)
        self._count += 1

    def update(self, items: Iterable[str]) -> None:
        num_bits, num_hashes = self._num_bits, self._num_hashes
        bits = self._bits
        count = self._count
        for item in items:
            bits |= _mask_for(num_bits, num_hashes, item)
            count += 1
        self._bits = bits
        self._count = count

    def __contains__(self, item: str) -> bool:
        mask = _mask_for(self._num_bits, self._num_hashes, item)
        return self._bits & mask == mask

    def might_contain(self, item: str) -> bool:
        """Alias of ``in`` that reads better at query-processing call sites."""
        return item in self

    def clear(self) -> None:
        self._bits = 0
        self._count = 0

    # -- introspection ---------------------------------------------------------

    @property
    def num_bits(self) -> int:
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    @property
    def approximate_items(self) -> int:
        """Number of ``add`` calls (duplicates counted); diagnostic only."""
        return self._count

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set; drives the false-positive probability."""
        return self._bits.bit_count() / self._num_bits

    def false_positive_probability(self) -> float:
        """Estimated false-positive probability given the current fill ratio."""
        return self.fill_ratio ** self._num_hashes

    def size_in_bytes(self) -> int:
        """Wire size of the filter, used for bandwidth accounting."""
        return (self._num_bits + 7) // 8

    # -- set operations ---------------------------------------------------------

    def _check_compatible(self, other: "BloomFilter") -> None:
        if self._num_bits != other._num_bits or self._num_hashes != other._num_hashes:
            raise ValueError("Bloom filters must share num_bits and num_hashes to be combined")

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Return a filter representing the union of both key sets."""
        self._check_compatible(other)
        result = BloomFilter(self._num_bits, self._num_hashes)
        result._bits = self._bits | other._bits
        result._count = self._count + other._count
        return result

    def copy(self) -> "BloomFilter":
        clone = BloomFilter(self._num_bits, self._num_hashes)
        clone._bits = self._bits
        clone._count = self._count
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self._num_bits == other._num_bits
            and self._num_hashes == other._num_hashes
            and self._bits == other._bits
        )

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self._num_bits}, hashes={self._num_hashes}, "
            f"fill={self.fill_ratio:.3f})"
        )
