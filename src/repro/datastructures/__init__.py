"""Shared data structures: Bloom filters, aged partial views, LRU caches.

These are the building blocks the paper's directory and content peers rely
on: content/directory *summaries* are Bloom filters (Fan et al., "Summary
cache"), peer views are bounded lists of aged entries, and the optional
cache-replacement extension uses an LRU policy.
"""

from repro.datastructures.bloom import BloomFilter
from repro.datastructures.aged_view import AgedEntry, AgedView
from repro.datastructures.lru import LRUCache

__all__ = ["BloomFilter", "AgedEntry", "AgedView", "LRUCache"]
