"""Bounded partial views with aged entries.

Content peers keep a *view* of at most ``Vgossip`` contacts, each entry
carrying an *age* counter ("the age of the entry since the moment it was
created", Section 4.2).  Directory peers keep a complete view of their
overlay with the same ageing semantics.  The gossip merge rule of
Algorithm 4 — collect both views, drop duplicates keeping the youngest
instance, keep the ``Vgossip`` most recent entries — lives here so the same
code path serves content peers, directory entries and tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generic, Iterable, Iterator, List, Optional, Sequence, TypeVar

P = TypeVar("P")  # payload type attached to each contact (e.g. a content summary)


@dataclass(frozen=True, slots=True)
class AgedEntry(Generic[P]):
    """One view entry: a contact address, an age, and an optional payload."""

    contact: str
    age: int = 0
    payload: Optional[P] = None

    def aged(self, increment: int = 1) -> "AgedEntry[P]":
        """Return a copy with the age increased by ``increment``."""
        # Direct construction: dataclasses.replace() is measurably slower and
        # this runs once per view entry per gossip period.
        return AgedEntry(contact=self.contact, age=self.age + increment, payload=self.payload)

    def refreshed(self, payload: Optional[P] = None) -> "AgedEntry[P]":
        """Return a copy with age reset to zero and optionally a new payload."""
        return AgedEntry(
            contact=self.contact,
            age=0,
            payload=payload if payload is not None else self.payload,
        )


@dataclass(slots=True)
class AgedView(Generic[P]):
    """A bounded mapping of contact → :class:`AgedEntry`.

    Args:
        capacity: maximum number of entries (``Vgossip``); ``None`` means
            unbounded, which is how a directory index uses it.
    """

    capacity: Optional[int] = None
    _entries: Dict[str, AgedEntry[P]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {self.capacity}")

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, contact: str) -> bool:
        return contact in self._entries

    def __iter__(self) -> Iterator[AgedEntry[P]]:
        return iter(self._entries.values())

    def contacts(self) -> Sequence[str]:
        return tuple(self._entries)

    def entries(self) -> Sequence[AgedEntry[P]]:
        return tuple(self._entries.values())

    def get(self, contact: str) -> Optional[AgedEntry[P]]:
        return self._entries.get(contact)

    # -- mutation ----------------------------------------------------------------

    def put(self, entry: AgedEntry[P]) -> None:
        """Insert or replace the entry for ``entry.contact``, then trim to capacity."""
        self._entries[entry.contact] = entry
        self._trim()

    def refresh(self, contact: str, payload: Optional[P] = None) -> AgedEntry[P]:
        """Reset the age of ``contact`` to zero (creating the entry if absent)."""
        existing = self._entries.get(contact)
        if existing is None:
            entry: AgedEntry[P] = AgedEntry(contact=contact, age=0, payload=payload)
        else:
            entry = existing.refreshed(payload)
        self.put(entry)
        return entry

    def remove(self, contact: str) -> bool:
        """Remove ``contact``; returns whether it was present."""
        return self._entries.pop(contact, None) is not None

    def increment_ages(self, increment: int = 1) -> None:
        """Age every entry by ``increment`` (the per-``Tgossip`` tick)."""
        self._entries = {c: e.aged(increment) for c, e in self._entries.items()}

    def evict_older_than(self, age_limit: int) -> List[AgedEntry[P]]:
        """Remove and return every entry whose age strictly exceeds ``age_limit``."""
        evicted = [e for e in self._entries.values() if e.age > age_limit]
        for entry in evicted:
            del self._entries[entry.contact]
        return evicted

    def clear(self) -> None:
        self._entries.clear()

    # -- selection (Algorithm 4 helpers) -------------------------------------------

    def select_oldest(self) -> Optional[AgedEntry[P]]:
        """The contact with the largest age (gossip partner selection)."""
        if not self._entries:
            return None
        return max(self._entries.values(), key=lambda e: (e.age, e.contact))

    def select_youngest(self) -> Optional[AgedEntry[P]]:
        if not self._entries:
            return None
        return min(self._entries.values(), key=lambda e: (e.age, e.contact))

    def select_subset(
        self,
        size: int,
        rng: Optional[random.Random] = None,
        exclude: Iterable[str] = (),
    ) -> List[AgedEntry[P]]:
        """Random subset of at most ``size`` entries (``Lgossip`` selection)."""
        excluded = set(exclude)
        candidates = [e for e in self._entries.values() if e.contact not in excluded]
        if size >= len(candidates):
            return list(candidates)
        if rng is None:
            # Deterministic fallback: youngest entries first.
            return sorted(candidates, key=lambda e: (e.age, e.contact))[:size]
        return rng.sample(candidates, size)

    # -- merge (Algorithm 4: merge + select_recent) ----------------------------------

    def merge(self, incoming: Iterable[AgedEntry[P]], self_contact: Optional[str] = None) -> None:
        """Merge ``incoming`` entries into the view.

        Duplicates keep the instance with the smallest age; an entry for the
        view owner itself (``self_contact``) is never added; finally the view
        is trimmed to the ``capacity`` most recent entries.
        """
        for entry in incoming:
            if self_contact is not None and entry.contact == self_contact:
                continue
            existing = self._entries.get(entry.contact)
            if existing is None or entry.age < existing.age:
                self._entries[entry.contact] = entry
        self._trim()

    def _trim(self) -> None:
        if self.capacity is None or len(self._entries) <= self.capacity:
            return
        most_recent = sorted(self._entries.values(), key=lambda e: (e.age, e.contact))
        self._entries = {e.contact: e for e in most_recent[: self.capacity]}
