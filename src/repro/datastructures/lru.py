"""A small LRU cache.

The paper assumes content peers have enough storage to never evict during an
experiment, but it lists cache expiration and replacement policies as future
work (Section 8).  The reproduction exposes an optional LRU replacement
policy on content peers so the extension can be exercised by tests and the
churn/ablation experiments.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A bounded mapping evicting the least-recently-used entry on overflow."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self._capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def keys(self) -> Tuple[K, ...]:
        return tuple(self._data)

    def get(self, key: K) -> Optional[V]:
        """Return the value for ``key`` (marking it recently used) or ``None``."""
        if key not in self._data:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return self._data[key]

    def peek(self, key: K) -> Optional[V]:
        """Return the value without affecting recency or hit statistics."""
        return self._data.get(key)

    def put(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert ``key``; returns the evicted ``(key, value)`` pair if any."""
        if key in self._data:
            self._data.move_to_end(key)
            self._data[key] = value
            return None
        self._data[key] = value
        if self._capacity is not None and len(self._data) > self._capacity:
            evicted = self._data.popitem(last=False)
            self.evictions += 1
            return evicted
        return None

    def remove(self, key: K) -> bool:
        return self._data.pop(key, None) is not None

    def clear(self) -> None:
        self._data.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
