"""The unified :class:`Session` facade: one public entry point per run.

Historically every consumer of the simulation re-assembled the
``ScenarioSpec → ExperimentSetup → ExperimentRunner`` chain by hand — the
CLI, the scenario runner, the perf suite and the parallel runner each knew
how to build topology, catalogue and trace, and each had its own churn
wiring.  A :class:`Session` collapses that chain behind one facade::

    from repro.session import Session

    result = Session.from_name("paper-default").run()        # ScenarioResult
    result = Session.from_spec(my_spec, seed=7).run()
    run    = Session.from_spec(my_spec).run_system("flower")  # one RunResult

A session owns:

* the **environment** (topology, catalogue, resolved query trace — built
  once and shared by every system the spec names, via the underlying
  :class:`~repro.experiments.driver.ExperimentRunner`);
* the **dynamicity models** — the spec's pluggable churn and fault models
  (:mod:`repro.scenarios.models`), resolved from their registries and
  attached to each Flower-CDN run;
* the **summarisation** that turns raw runs into the structured, golden-
  checked :class:`~repro.scenarios.runner.ScenarioResult`.

Sessions are deterministic functions of ``(spec, seed)``; running the same
session twice (or two sessions of the same spec) yields byte-identical
results.  Harnesses that need the lower layers (the perf suite times the
dispatch phase in isolation) reach them through :attr:`Session.experiment`,
:meth:`Session.build_flower` and :meth:`Session.resolved_trace` instead of
reconstructing them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.experiments.driver import ExperimentRunner, ExperimentSetup, RunResult
from repro.scenarios.models import build_churn_model, build_fault_model
from repro.scenarios.runner import ScenarioResult, summarise_system
from repro.scenarios.spec import ScenarioSpec

__all__ = ["Session"]


class Session:
    """One fully-wired simulation run: spec in, structured result out."""

    def __init__(
        self,
        spec: ScenarioSpec,
        seed: Optional[int] = None,
        kernel: bool = False,
        shards: Optional[int] = None,
        shard_jobs: Optional[int] = None,
    ) -> None:
        self.spec = spec
        self.seed = spec.seed if seed is None else seed
        #: backend toggle: when True Flower-CDN runs on the columnar kernel
        #: (repro.core.columns).  A runtime knob, not part of the spec — the
        #: two backends are digest-identical, so results and goldens carry no
        #: trace of which one produced them.
        self.kernel = kernel
        #: space-parallel shard count (overrides the spec's ``shards`` field
        #: when given).  1 runs the historical single-process path; N >= 2
        #: routes flower runs through repro.sim.sharded — digest-identical to
        #: single-process, so results carry no trace of the shard count.
        self.shards = spec.shards if shards is None else shards
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shards > 1:
            from repro.core.sharding import validate_shardable

            validate_shardable(spec)
        #: worker-pool size for sharded runs (None: the CPU-affinity default;
        #: 1 runs every shard inline — identical results either way)
        self.shard_jobs = shard_jobs
        #: per-shard statistics of the most recent sharded flower run
        self.last_shard_stats = None
        setup = spec.to_setup(seed=self.seed)
        if kernel:
            setup = replace(setup, kernel=True)
        self._experiment = ExperimentRunner(setup)
        self._churn_model = build_churn_model(spec.churn_model)
        self._fault_model = build_fault_model(spec.fault_model)
        #: injectors attached to the most recent flower run (diagnostics)
        self.last_injectors: List[object] = []

    # -- construction -------------------------------------------------------

    @classmethod
    def from_spec(
        cls,
        spec: ScenarioSpec,
        seed: Optional[int] = None,
        kernel: bool = False,
        shards: Optional[int] = None,
        shard_jobs: Optional[int] = None,
    ) -> "Session":
        """A session for an explicit spec (the canonical constructor)."""
        return cls(spec, seed=seed, kernel=kernel, shards=shards, shard_jobs=shard_jobs)

    @classmethod
    def from_name(
        cls,
        name: str,
        seed: Optional[int] = None,
        scale: Optional[float] = None,
        kernel: bool = False,
        shards: Optional[int] = None,
        shard_jobs: Optional[int] = None,
    ) -> "Session":
        """A session for a registered library scenario, optionally rescaled."""
        from repro.scenarios.library import get_scenario

        spec = get_scenario(name)
        if scale is not None and scale != 1.0:
            spec = spec.scaled(scale)
        return cls(spec, seed=seed, kernel=kernel, shards=shards, shard_jobs=shard_jobs)

    # -- the underlying layers ----------------------------------------------

    @property
    def setup(self) -> ExperimentSetup:
        """The compiled low-level configuration this session runs."""
        return self._experiment.setup

    @property
    def experiment(self) -> ExperimentRunner:
        """The underlying driver (exposed for perf harnesses and tests)."""
        return self._experiment

    @property
    def churn_model(self):
        """The resolved churn-model instance (from the spec's registry ref)."""
        return self._churn_model

    @property
    def fault_model(self):
        """The resolved fault-model instance (from the spec's registry ref)."""
        return self._fault_model

    def resolved_trace(self):
        """The shared resolved query trace (built once, array columns)."""
        return self._experiment.resolved_trace()

    def build_flower(self):
        """A bootstrapped ``(simulator, FlowerCDN)`` pair for manual driving."""
        return self._experiment.build_flower()

    # -- execution ----------------------------------------------------------

    def attach_models(self, system) -> List[object]:
        """Attach the spec's churn/fault models to a built Flower system.

        Returns the resulting injectors (each with ``start()``/``stop()``;
        models that inject nothing contribute none) and records them as
        :attr:`last_injectors`.  This is the single place the model-to-run
        wiring lives: :meth:`run_system` goes through it, and so do harnesses
        that drive the dispatch phase manually (e.g. the perf suite).
        """
        injectors = [
            injector
            for injector in (
                self._churn_model.attach(system, self.spec),
                self._fault_model.attach(system, self.spec),
            )
            if injector is not None
        ]
        self.last_injectors = injectors
        return injectors

    def run_system(self, system: str) -> RunResult:
        """Run one of the spec's systems over the shared trace."""
        if system == "flower":
            if self.shards > 1:
                from repro.sim.sharded import run_sharded_flower

                result, stats = run_sharded_flower(
                    self.spec,
                    seed=self.seed,
                    shards=self.shards,
                    kernel=self.kernel,
                    jobs=self.shard_jobs,
                )
                self.last_shard_stats = stats
                return result
            return self._experiment.run_flower(attachments=(self.attach_models,))
        if system == "squirrel":
            return self._experiment.run_squirrel()
        raise ValueError(f"unknown system {system!r}; expected 'flower' or 'squirrel'")

    def run(self) -> ScenarioResult:
        """Run every system the spec names and summarise (the main entry)."""
        systems: Dict[str, object] = {}
        for system in self.spec.systems:
            run = self.run_system(system)
            systems[system] = summarise_system(self.spec, system, run)
        return ScenarioResult(spec=self.spec, seed=self.seed, systems=systems)
