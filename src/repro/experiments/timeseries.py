"""Figure 5: hit ratio and background traffic over time (Section 6.2).

For the chosen setting (Tgossip = 30 min, Lgossip = 10, Vgossip = 50) the
paper plots the cumulative hit ratio, which keeps rising as content spreads
through the overlays, and the per-peer background traffic, which plateaus
once the system has warmed up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.driver import ExperimentRunner, ExperimentSetup, RunResult
from repro.metrics.report import format_series


@dataclass
class TradeoffTimeseries:
    """The two curves of Figure 5 plus the final aggregates."""

    hit_ratio_over_time: List[Tuple[float, float]]
    background_bps_over_time: List[Tuple[float, float]]
    final_hit_ratio: float
    final_background_bps: float
    run: RunResult

    def hit_ratio_is_non_decreasing(self, tolerance: float = 0.05) -> bool:
        """Sanity check used by tests: the cumulative curve should keep rising."""
        values = [v for _, v in self.hit_ratio_over_time]
        return all(b >= a - tolerance for a, b in zip(values, values[1:]))

    def format(self) -> str:
        lines = [
            format_series("Figure 5a: cumulative hit ratio", self.hit_ratio_over_time,
                          y_label="hit ratio"),
            "",
            format_series("Figure 5b: background traffic (bps/peer)",
                          self.background_bps_over_time, y_label="bps"),
            "",
            f"final hit ratio = {self.final_hit_ratio:.3f}, "
            f"final background traffic = {self.final_background_bps:.1f} bps/peer",
        ]
        return "\n".join(lines)


def run_tradeoff_timeseries(setup: ExperimentSetup) -> TradeoffTimeseries:
    """Run Flower-CDN once and extract the Figure 5 curves."""
    runner = ExperimentRunner(setup)
    result = runner.run_flower()
    hit_curve = result.metrics.hit_ratio_series.cumulative_means()
    bps_curve = result.bandwidth.bps_series() if result.bandwidth else []
    return TradeoffTimeseries(
        hit_ratio_over_time=hit_curve,
        background_bps_over_time=bps_curve,
        final_hit_ratio=result.hit_ratio,
        final_background_bps=result.background_bps_per_peer,
        run=result,
    )
