"""Shared experiment driver.

An :class:`ExperimentSetup` bundles everything one simulated run needs:
Flower-CDN configuration, topology parameters and workload parameters.  The
:class:`ExperimentRunner` builds the environment once (topology + query trace
+ client assignment) and can then run Flower-CDN and/or Squirrel against the
*same* resolved query stream, which is what the comparative figures require.

Two scales are provided: :meth:`ExperimentSetup.paper_scale` follows Table 1
(24 simulated hours, 6 queries/s, 100 websites) and
:meth:`ExperimentSetup.laptop_scale` keeps the parameter ratios but shrinks
the run so a full benchmark suite completes in minutes on a laptop.
EXPERIMENTS.md records which scale produced the committed numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.baselines.squirrel import Squirrel, SquirrelConfig
from repro.core.churn import ChurnConfig, ChurnInjector
from repro.core.config import HOUR, MINUTE, FlowerConfig
from repro.core.replication import ActiveReplicator, ReplicationConfig
from repro.core.system import FlowerCDN
from repro.metrics.collectors import BandwidthAccountant, MetricsCollector
from repro.network.latency import LatencyModel
from repro.network.topology import Topology, TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.assignment import ClientAssigner, ResolvedQuery
from repro.workload.catalog import Catalog
from repro.workload.generator import QueryGenerator, WorkloadConfig
from repro.workload.phases import PhaseSpan
from repro.workload.trace import ResolvedTraceArrays


@dataclass(frozen=True)
class ExperimentSetup:
    """Everything needed to build one simulated environment."""

    flower: FlowerConfig
    topology: TopologyConfig
    workload: WorkloadConfig
    squirrel: SquirrelConfig = field(default_factory=SquirrelConfig)
    seed: int = 42
    #: event-queue backend for the simulators ("heap" or "calendar"); both
    #: produce byte-identical runs, see docs/performance.md for the heuristic
    queue_backend: str = "heap"
    #: when True the metric collectors fold records into array reservoirs
    #: instead of retaining per-query objects (paper-scale memory mode)
    compact_metrics: bool = False
    #: when True Flower-CDN peers run on the columnar kernel backend
    #: (repro.core.columns) — digest-identical to the object backend,
    #: substantially faster at paper scale; see docs/performance.md
    kernel: bool = False
    #: compiled workload phases of a scenario program (empty: one stationary
    #: phase over the whole run — the historical behaviour)
    phases: Tuple[PhaseSpan, ...] = ()

    # -- canonical scales -----------------------------------------------------

    @classmethod
    def paper_scale(cls, seed: int = 42) -> "ExperimentSetup":
        """The Table 1 configuration: 24 h, 6 q/s, 100 websites, 6 localities."""
        flower = FlowerConfig()
        return cls(
            flower=flower,
            topology=TopologyConfig(num_hosts=5000, num_localities=flower.num_localities),
            workload=WorkloadConfig(
                num_websites=flower.num_websites,
                active_websites=flower.active_websites,
                objects_per_website=flower.objects_per_website,
                num_localities=flower.num_localities,
                query_rate_per_s=6.0,
            ),
            squirrel=SquirrelConfig(metrics_window_s=flower.metrics_window_s),
            seed=seed,
        )

    @classmethod
    def laptop_scale(
        cls,
        seed: int = 42,
        duration_s: float = 3 * HOUR,
        query_rate_per_s: float = 2.0,
        num_websites: int = 20,
        active_websites: int = 2,
        objects_per_website: int = 200,
        num_localities: int = 3,
        max_content_overlay_size: int = 40,
        num_hosts: int = 600,
    ) -> "ExperimentSetup":
        """A scaled-down configuration preserving the paper's parameter ratios."""
        flower = FlowerConfig().scaled_down(
            num_websites=num_websites,
            active_websites=active_websites,
            objects_per_website=objects_per_website,
            num_localities=num_localities,
            max_content_overlay_size=max_content_overlay_size,
            simulation_duration_s=duration_s,
            metrics_window_s=max(5 * MINUTE, duration_s / 12),
        )
        return cls(
            flower=flower,
            topology=TopologyConfig(num_hosts=num_hosts, num_localities=num_localities),
            workload=WorkloadConfig(
                num_websites=num_websites,
                active_websites=active_websites,
                objects_per_website=objects_per_website,
                num_localities=num_localities,
                query_rate_per_s=query_rate_per_s,
            ),
            squirrel=SquirrelConfig(metrics_window_s=flower.metrics_window_s),
            seed=seed,
        )

    def with_flower(self, flower: FlowerConfig) -> "ExperimentSetup":
        return replace(self, flower=flower)

    def with_gossip(self, **changes) -> "ExperimentSetup":
        return replace(self, flower=self.flower.with_gossip(**changes))


@dataclass
class RunResult:
    """Aggregated outcome of one system run."""

    system_name: str
    duration_s: float
    num_queries: int
    hit_ratio: float
    average_lookup_latency_ms: float
    average_transfer_distance_ms: float
    background_bps_per_peer: float
    redirection_failures: int
    metrics: MetricsCollector
    bandwidth: Optional[BandwidthAccountant] = None
    #: events dispatched by the simulator during this run (perf accounting)
    events_fired: int = 0
    #: resilience_* metric block of a run with a metric-emitting reachability
    #: model attached; None otherwise (see repro.metrics.resilience)
    resilience: Optional[dict] = None

    def summary_row(self) -> tuple:
        return (
            self.system_name,
            self.num_queries,
            round(self.hit_ratio, 3),
            round(self.average_lookup_latency_ms, 1),
            round(self.average_transfer_distance_ms, 1),
            round(self.background_bps_per_peer, 1),
        )


class ExperimentRunner:
    """Builds one environment and runs CDN systems against the same workload."""

    def __init__(self, setup: ExperimentSetup) -> None:
        self.setup = setup
        self._topology: Optional[Topology] = None
        self._resolved: Optional[List[ResolvedQuery]] = None
        self._trace: Optional[ResolvedTraceArrays] = None
        self._catalog: Optional[Catalog] = None
        self._flower_system: Optional[FlowerCDN] = None
        self._last_replicator: Optional[ActiveReplicator] = None

    # -- environment construction ---------------------------------------------------

    @property
    def topology(self) -> Topology:
        if self._topology is None:
            self._topology = Topology(
                self.setup.topology, RandomStreams(self.setup.seed)
            )
        return self._topology

    @property
    def catalog(self) -> Catalog:
        if self._catalog is None:
            self._catalog = Catalog.synthetic(
                self.setup.workload.num_websites, self.setup.workload.objects_per_website
            )
        return self._catalog

    def build_flower(self) -> tuple[Simulator, FlowerCDN]:
        """Construct a bootstrapped Flower-CDN system plus its simulator.

        Public so harnesses that need the simulator itself (e.g. the perf
        suite, which times the dispatch phase in isolation) can drive the
        replay themselves instead of going through :meth:`run_flower`.
        """
        sim = Simulator(
            seed=self.setup.seed,
            end_time=self.setup.flower.simulation_duration_s,
            queue_backend=self.setup.queue_backend,
        )
        system = FlowerCDN(
            self.setup.flower,
            sim,
            self.topology,
            latency_model=LatencyModel(self.topology),
            catalog=self.catalog,
            compact_metrics=self.setup.compact_metrics,
            kernel=self.setup.kernel,
        )
        system.bootstrap()
        return sim, system

    # Backwards-compatible alias (pre-perf-suite name).
    _build_flower = build_flower

    def build_squirrel(self) -> tuple[Simulator, Squirrel]:
        """Construct a bootstrapped Squirrel baseline plus its simulator.

        Public for the same reason as :meth:`build_flower`: the perf suite
        times Squirrel's trace-replay dispatch phase in isolation.
        """
        sim = Simulator(
            seed=self.setup.seed,
            end_time=self.setup.flower.simulation_duration_s,
            queue_backend=self.setup.queue_backend,
        )
        system = Squirrel(
            self.setup.squirrel,
            sim,
            self.topology,
            latency_model=LatencyModel(self.topology),
            compact_metrics=self.setup.compact_metrics,
        )
        system.bootstrap()
        return sim, system

    def resolved_trace(self) -> ResolvedTraceArrays:
        """The query trace with concrete originating hosts, as array columns.

        Built once and shared by every system run (the comparative figures
        require both systems to process the same stream).  Individual
        :class:`ResolvedQuery` objects are materialised transiently at
        dispatch time, so a paper-scale trace costs ~30 bytes per query
        resident instead of several hundred.
        """
        if self._trace is not None:
            return self._trace
        # Directory-peer hosts are excluded from client assignment so the same
        # trace is valid for both Flower-CDN (where those hosts are reserved)
        # and Squirrel (where they simply never ask anything).
        _, probe_system = self._build_flower()
        reserved = probe_system.reserved_hosts
        generator = QueryGenerator(
            self.setup.workload, RandomStreams(self.setup.seed + 1), catalog=self.catalog
        )
        assigner = ClientAssigner(
            self.topology,
            RandomStreams(self.setup.seed + 2),
            max_clients_per_overlay=self.setup.flower.max_content_overlay_size,
            reserved_hosts=reserved,
        )
        duration = self.setup.flower.simulation_duration_s
        self._trace = assigner.assign_trace(
            generator.generate_trace(duration, phases=self.setup.phases)
        )
        return self._trace

    def resolved_queries(self) -> List[ResolvedQuery]:
        """The resolved trace as a list of objects (legacy interface).

        Materialises — and retains — one :class:`ResolvedQuery` per query;
        prefer :meth:`resolved_trace` anywhere memory matters.
        """
        if self._resolved is None:
            trace = self.resolved_trace()
            self._resolved = [trace.resolved_query(i) for i in range(len(trace))]
        return self._resolved

    # -- runs -------------------------------------------------------------------------

    def _replay_trace(self, sim: Simulator, system) -> float:
        """Schedule the shared trace against ``system`` and run to the horizon."""
        trace = self.resolved_trace()
        sim.schedule_trace(trace.times, trace.dispatcher(system.handle_query), label="query")
        duration = self.setup.flower.simulation_duration_s
        sim.run(until=duration)
        return duration

    def run_flower(
        self,
        churn: Optional[ChurnConfig] = None,
        replication: Optional[ReplicationConfig] = None,
        attachments: Sequence[Callable[[FlowerCDN], Optional[object]]] = (),
    ) -> RunResult:
        """Run Flower-CDN over the shared trace.

        ``churn`` enables failure/mobility injection; ``replication`` enables
        the active-replication extension (both off by default, matching the
        configuration the paper evaluates).  ``attachments`` are callables
        receiving the freshly built system and returning an injector with
        ``start()``/``stop()``, a list of such injectors, or ``None`` for
        "nothing to inject" — the hook the scenario layer's pluggable
        churn/fault models attach through
        (:meth:`repro.session.Session.attach_models`).
        """
        self.resolved_trace()  # build the trace before the live system exists
        sim, system = self._build_flower()
        injectors = []
        if churn is not None and churn.is_enabled:
            injectors.append(ChurnInjector(system, churn))
        for attach in attachments:
            attached = attach(system)
            if attached is None:
                continue
            if hasattr(attached, "start"):
                injectors.append(attached)
            else:
                injectors.extend(attached)
        for injector in injectors:
            injector.start()
        replicator = None
        if replication is not None:
            replicator = ActiveReplicator(system, replication)
            replicator.start()
        duration = self._replay_trace(sim, system)
        for injector in reversed(injectors):
            injector.stop()
        if replicator is not None:
            replicator.stop()
        self._flower_system = system
        self._last_replicator = replicator
        metrics = system.metrics
        return RunResult(
            system_name="Flower-CDN",
            duration_s=duration,
            num_queries=metrics.num_queries,
            hit_ratio=metrics.hit_ratio,
            average_lookup_latency_ms=metrics.average_lookup_latency_ms,
            average_transfer_distance_ms=metrics.average_transfer_distance_ms,
            background_bps_per_peer=system.bandwidth.average_bps_per_peer(duration),
            redirection_failures=metrics.redirection_failures,
            metrics=metrics,
            bandwidth=system.bandwidth,
            events_fired=sim.events_fired,
            resilience=system.resilience_summary(duration),
        )

    def run_squirrel(self) -> RunResult:
        """Run the Squirrel baseline over the same trace."""
        self.resolved_trace()  # build the trace before the live system exists
        sim, system = self.build_squirrel()
        duration = self._replay_trace(sim, system)
        metrics = system.metrics
        return RunResult(
            system_name="Squirrel",
            duration_s=duration,
            num_queries=metrics.num_queries,
            hit_ratio=metrics.hit_ratio,
            average_lookup_latency_ms=metrics.average_lookup_latency_ms,
            average_transfer_distance_ms=metrics.average_transfer_distance_ms,
            background_bps_per_peer=0.0,
            redirection_failures=metrics.redirection_failures,
            metrics=metrics,
            bandwidth=None,
            events_fired=sim.events_fired,
        )

    @property
    def last_flower_system(self) -> Optional[FlowerCDN]:
        """The FlowerCDN instance of the most recent :meth:`run_flower` call."""
        return self._flower_system

    @property
    def last_replicator(self) -> Optional[ActiveReplicator]:
        """The ActiveReplicator of the most recent run, if replication was enabled."""
        return self._last_replicator
