"""Figures 7 and 8: locality-awareness gains (Section 6.4).

One shared run of Flower-CDN and Squirrel over the same trace produces:

* Figure 7(a) — Flower-CDN's average lookup latency over time (it drops and
  stabilises at a low value once content overlays are populated);
* Figure 7(b) — the lookup-latency distribution of both systems (the paper:
  87 % of Flower-CDN queries within 150 ms, 61 % of Squirrel's above
  1050 ms; a ≈9× average reduction);
* Figure 8(a) — Flower-CDN's average transfer distance over time (drops to
  ≈80 ms after warm-up);
* Figure 8(b) — the transfer-distance distribution of both systems (59 % of
  Flower-CDN transfers within 100 ms vs 17 % for Squirrel; ≈2× average
  reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.driver import ExperimentRunner, ExperimentSetup, RunResult
from repro.metrics.histogram import Histogram
from repro.metrics.report import format_series, format_table


@dataclass
class LocalityResults:
    """Everything Figures 7 and 8 need, for both systems."""

    flower_latency_over_time: List[Tuple[float, float]]
    flower_distance_over_time: List[Tuple[float, float]]
    flower_latency_histogram: Histogram
    squirrel_latency_histogram: Histogram
    flower_distance_histogram: Histogram
    squirrel_distance_histogram: Histogram
    flower_run: RunResult
    squirrel_run: RunResult

    # -- headline numbers ---------------------------------------------------------

    @property
    def lookup_latency_speedup(self) -> float:
        """Squirrel's average lookup latency divided by Flower-CDN's (paper: ≈9)."""
        if self.flower_run.average_lookup_latency_ms == 0:
            return float("inf")
        return (
            self.squirrel_run.average_lookup_latency_ms
            / self.flower_run.average_lookup_latency_ms
        )

    @property
    def transfer_distance_reduction(self) -> float:
        """Squirrel's average transfer distance divided by Flower-CDN's (paper: ≈2)."""
        if self.flower_run.average_transfer_distance_ms == 0:
            return float("inf")
        return (
            self.squirrel_run.average_transfer_distance_ms
            / self.flower_run.average_transfer_distance_ms
        )

    def flower_fraction_fast_lookups(self, threshold_ms: float = 150.0) -> float:
        return self.flower_latency_histogram.fraction_below(threshold_ms)

    def squirrel_fraction_slow_lookups(self, threshold_ms: float = 1050.0) -> float:
        return self.squirrel_latency_histogram.fraction_above(threshold_ms)

    def flower_fraction_close_transfers(self, threshold_ms: float = 100.0) -> float:
        return self.flower_distance_histogram.fraction_below(threshold_ms)

    def squirrel_fraction_close_transfers(self, threshold_ms: float = 100.0) -> float:
        return self.squirrel_distance_histogram.fraction_below(threshold_ms)

    # -- formatting -------------------------------------------------------------------

    def format_figure7(self) -> str:
        distribution_rows = [
            (label, flower_frac, squirrel_frac)
            for (label, flower_frac), (_, squirrel_frac) in zip(
                self.flower_latency_histogram.as_fractions(),
                self.squirrel_latency_histogram.as_fractions(),
            )
        ]
        parts = [
            format_series(
                "Figure 7a: Flower-CDN average lookup latency (ms) over time",
                self.flower_latency_over_time,
                y_label="latency (ms)",
            ),
            "",
            format_table(
                ["latency bin (ms)", "Flower-CDN fraction", "Squirrel fraction"],
                distribution_rows,
                title="Figure 7b: lookup latency distribution",
            ),
            "",
            (
                f"average lookup latency: Flower-CDN="
                f"{self.flower_run.average_lookup_latency_ms:.1f} ms, "
                f"Squirrel={self.squirrel_run.average_lookup_latency_ms:.1f} ms, "
                f"speedup={self.lookup_latency_speedup:.1f}x"
            ),
        ]
        return "\n".join(parts)

    def format_figure8(self) -> str:
        distribution_rows = [
            (label, flower_frac, squirrel_frac)
            for (label, flower_frac), (_, squirrel_frac) in zip(
                self.flower_distance_histogram.as_fractions(),
                self.squirrel_distance_histogram.as_fractions(),
            )
        ]
        parts = [
            format_series(
                "Figure 8a: Flower-CDN average transfer distance (ms) over time",
                self.flower_distance_over_time,
                y_label="distance (ms)",
            ),
            "",
            format_table(
                ["distance bin (ms)", "Flower-CDN fraction", "Squirrel fraction"],
                distribution_rows,
                title="Figure 8b: transfer distance distribution",
            ),
            "",
            (
                f"average transfer distance: Flower-CDN="
                f"{self.flower_run.average_transfer_distance_ms:.1f} ms, "
                f"Squirrel={self.squirrel_run.average_transfer_distance_ms:.1f} ms, "
                f"reduction={self.transfer_distance_reduction:.1f}x"
            ),
        ]
        return "\n".join(parts)


def run_locality_experiment(setup: ExperimentSetup) -> LocalityResults:
    """Run both systems on the same trace and extract the Figure 7/8 data."""
    runner = ExperimentRunner(setup)
    flower = runner.run_flower()
    squirrel = runner.run_squirrel()
    return LocalityResults(
        flower_latency_over_time=flower.metrics.lookup_latency_series.window_means(),
        flower_distance_over_time=flower.metrics.transfer_distance_series.window_means(),
        flower_latency_histogram=flower.metrics.lookup_latency_histogram,
        squirrel_latency_histogram=squirrel.metrics.lookup_latency_histogram,
        flower_distance_histogram=flower.metrics.transfer_distance_histogram,
        squirrel_distance_histogram=squirrel.metrics.transfer_distance_histogram,
        flower_run=flower,
        squirrel_run=squirrel,
    )
