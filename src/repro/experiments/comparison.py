"""Figure 6: hit ratio over time, Flower-CDN versus Squirrel (Section 6.3).

.. deprecated::
    This module is a legacy shim.  The canonical Figure 6 comparison is the
    ``fig6-hit-ratio-comparison`` sweep in :mod:`repro.sweeps.library`
    (a single-cell grid over the ``squirrel-head-to-head`` scenario, golden-
    checked per system); :func:`run_hit_ratio_comparison` remains for the
    ``repro compare`` CLI and pre-sweep callers.

Both systems process the exact same query trace.  The paper's observations,
which the benchmark asserts as *shape*:

* both hit ratios keep rising towards 1;
* Squirrel converges faster because its search space is the whole overlay,
  while Flower-CDN partitions it into content overlays;
* at the end of the run Flower-CDN trails Squirrel by a modest margin
  (≈13 % after 24 h in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.driver import ExperimentRunner, ExperimentSetup, RunResult
from repro.metrics.report import format_table


@dataclass
class HitRatioComparison:
    """The two Figure 6 curves and their endpoints."""

    flower_curve: List[Tuple[float, float]]
    squirrel_curve: List[Tuple[float, float]]
    flower_final: float
    squirrel_final: float
    flower_run: RunResult
    squirrel_run: RunResult

    @property
    def final_gap(self) -> float:
        """Squirrel's final hit ratio minus Flower-CDN's (positive in the paper)."""
        return self.squirrel_final - self.flower_final

    def format(self) -> str:
        rows = []
        squirrel = dict(self.squirrel_curve)
        for time, flower_value in self.flower_curve:
            rows.append((f"{time:.0f}", flower_value, squirrel.get(time, float("nan"))))
        table = format_table(
            ["t(s)", "Flower-CDN hit ratio", "Squirrel hit ratio"],
            rows,
            title="Figure 6: cumulative hit ratio over time",
        )
        summary = (
            f"final hit ratio: Flower-CDN={self.flower_final:.3f}, "
            f"Squirrel={self.squirrel_final:.3f}, gap={self.final_gap:+.3f}"
        )
        return f"{table}\n{summary}"


def run_hit_ratio_comparison(setup: ExperimentSetup) -> HitRatioComparison:
    """Run both systems on the same trace and extract the Figure 6 curves."""
    runner = ExperimentRunner(setup)
    flower = runner.run_flower()
    squirrel = runner.run_squirrel()
    return HitRatioComparison(
        flower_curve=flower.metrics.hit_ratio_series.cumulative_means(),
        squirrel_curve=squirrel.metrics.hit_ratio_series.cumulative_means(),
        flower_final=flower.hit_ratio,
        squirrel_final=squirrel.hit_ratio,
        flower_run=flower,
        squirrel_run=squirrel,
    )
