"""Experiment harness reproducing every table and figure of the paper.

Each module corresponds to one experiment family from Section 6 (see
DESIGN.md's experiment index): the Table 2 gossip sweeps, the Figure 5
trade-off time series, the Figure 6 hit-ratio comparison, the Figure 7/8
locality-awareness measurements and the churn ablation.  The shared
:class:`~repro.experiments.driver.ExperimentRunner` guarantees that
comparative experiments feed the exact same query trace to Flower-CDN and
Squirrel.
"""

from repro.experiments.driver import ExperimentRunner, ExperimentSetup, RunResult
from repro.experiments.gossip_tradeoff import (
    GossipSweepRow,
    run_gossip_length_sweep,
    run_gossip_period_sweep,
    run_push_threshold_sweep,
    run_view_size_sweep,
)
from repro.experiments.timeseries import TradeoffTimeseries, run_tradeoff_timeseries
from repro.experiments.comparison import HitRatioComparison, run_hit_ratio_comparison
from repro.experiments.locality import LocalityResults, run_locality_experiment
from repro.experiments.churn import ChurnResults, run_churn_experiment

__all__ = [
    "ExperimentRunner",
    "ExperimentSetup",
    "RunResult",
    "GossipSweepRow",
    "run_gossip_length_sweep",
    "run_gossip_period_sweep",
    "run_view_size_sweep",
    "run_push_threshold_sweep",
    "TradeoffTimeseries",
    "run_tradeoff_timeseries",
    "HitRatioComparison",
    "run_hit_ratio_comparison",
    "LocalityResults",
    "run_locality_experiment",
    "ChurnResults",
    "run_churn_experiment",
]
