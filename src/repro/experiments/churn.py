"""Churn ablation (Section 5 mechanisms, listed as ongoing work in Section 8).

The paper describes how Flower-CDN deals with content-peer failures,
directory failures and locality changes but defers their empirical analysis.
This ablation runs the same workload with and without churn injection and
reports how the hit ratio, redirection failures and directory replacements
respond — exercising exactly the recovery paths of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.churn import ChurnConfig
from repro.experiments.driver import ExperimentRunner, ExperimentSetup, RunResult
from repro.metrics.report import format_table


@dataclass
class ChurnResults:
    """Side-by-side aggregates of a churn-free and a churned run."""

    baseline: RunResult
    churned: RunResult
    churn_config: ChurnConfig
    events_injected: int
    directory_replacements: int

    @property
    def hit_ratio_drop(self) -> float:
        """How much hit ratio is lost to churn (paper's mechanisms keep it small)."""
        return self.baseline.hit_ratio - self.churned.hit_ratio

    def format(self) -> str:
        table = format_table(
            ["run", "hit ratio", "avg lookup (ms)", "redirection failures"],
            [
                (
                    "no churn",
                    self.baseline.hit_ratio,
                    self.baseline.average_lookup_latency_ms,
                    self.baseline.redirection_failures,
                ),
                (
                    "with churn",
                    self.churned.hit_ratio,
                    self.churned.average_lookup_latency_ms,
                    self.churned.redirection_failures,
                ),
            ],
            title="Churn ablation",
        )
        summary = (
            f"churn events injected={self.events_injected}, "
            f"directory replacements={self.directory_replacements}, "
            f"hit ratio drop={self.hit_ratio_drop:+.3f}"
        )
        return f"{table}\n{summary}"


def run_churn_experiment(
    setup: ExperimentSetup, churn: ChurnConfig | None = None
) -> ChurnResults:
    """Run Flower-CDN without and with churn on the same trace."""
    if churn is None:
        churn = ChurnConfig(
            content_failures_per_hour=20.0,
            directory_failures_per_hour=2.0,
            locality_changes_per_hour=5.0,
        )
    baseline_runner = ExperimentRunner(setup)
    baseline = baseline_runner.run_flower()

    churn_runner = ExperimentRunner(setup)
    churned = churn_runner.run_flower(churn=churn)
    system = churn_runner.last_flower_system
    replacements = system.directory_replacements if system is not None else 0

    # The injector is internal to run_flower; recover its event count from the
    # difference in alive peers is brittle, so the runner exposes the system and
    # we approximate injected events by replacements + failed peers.
    failed_peers = 0
    if system is not None:
        failed_peers = sum(
            1 for peer in system._content_peers.values() if not peer.alive  # noqa: SLF001
        )
    return ChurnResults(
        baseline=baseline,
        churned=churned,
        churn_config=churn,
        events_injected=failed_peers + replacements,
        directory_replacements=replacements,
    )
