"""Table 2: the hit-ratio / gossip-bandwidth trade-off (Section 6.2).

.. deprecated::
    This module is a legacy shim.  The canonical Table 2 grids are the
    registered sweeps in :mod:`repro.sweeps.library`
    (``table2a-gossip-length``, ``table2b-gossip-period``,
    ``table2c-view-size``, ``ablation-push-threshold``), executed with
    ``repro sweep run NAME`` and pinned by the sweep goldens.  The
    setup-based functions below remain only for the deprecated flag-style
    ``repro sweep`` CLI and pre-sweep callers; the ``PAPER_*`` constants
    defined here stay the single source of the paper's parameter values
    (the sweep registry imports them).

One sweep per gossip parameter:

* Table 2(a) — gossip length ``Lgossip`` ∈ {5, 10, 20} with Tgossip = 30 min
  and Vgossip = 50;
* Table 2(b) — gossip period ``Tgossip`` ∈ {1 min, 30 min, 1 h} with
  Lgossip = 10 and Vgossip = 50;
* Table 2(c) — view size ``Vgossip`` ∈ {20, 50, 70} with Lgossip = 10 and
  Tgossip = 30 min;
* push-threshold ablation (the paper reports it in prose: "similar
  performance for different values of push threshold").

Each sweep row reports the hit ratio after the full run and the average
background bandwidth per peer in bps, exactly the two columns of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.config import HOUR, MINUTE
from repro.experiments.driver import ExperimentRunner, ExperimentSetup
from repro.metrics.report import format_table

#: the parameter values used by the paper's Table 2
PAPER_GOSSIP_LENGTHS: Sequence[int] = (5, 10, 20)
PAPER_GOSSIP_PERIODS_S: Sequence[float] = (1 * MINUTE, 30 * MINUTE, 1 * HOUR)
PAPER_VIEW_SIZES: Sequence[int] = (20, 50, 70)
PAPER_PUSH_THRESHOLDS: Sequence[float] = (0.1, 0.5, 0.7)


@dataclass(frozen=True)
class GossipSweepRow:
    """One row of a Table 2 style sweep."""

    parameter: str
    value: float
    hit_ratio: float
    background_bps: float
    average_lookup_latency_ms: float
    average_transfer_distance_ms: float


def _run_single(setup: ExperimentSetup, parameter: str, value: float) -> GossipSweepRow:
    runner = ExperimentRunner(setup)
    result = runner.run_flower()
    return GossipSweepRow(
        parameter=parameter,
        value=value,
        hit_ratio=result.hit_ratio,
        background_bps=result.background_bps_per_peer,
        average_lookup_latency_ms=result.average_lookup_latency_ms,
        average_transfer_distance_ms=result.average_transfer_distance_ms,
    )


def run_gossip_length_sweep(
    setup: ExperimentSetup, values: Sequence[int] = PAPER_GOSSIP_LENGTHS
) -> List[GossipSweepRow]:
    """Table 2(a): vary Lgossip with the other gossip parameters fixed."""
    rows = []
    for value in values:
        sweep_setup = setup.with_gossip(gossip_length=int(value))
        rows.append(_run_single(sweep_setup, "Lgossip", value))
    return rows


def run_gossip_period_sweep(
    setup: ExperimentSetup, values: Sequence[float] = PAPER_GOSSIP_PERIODS_S
) -> List[GossipSweepRow]:
    """Table 2(b): vary Tgossip with the other gossip parameters fixed."""
    rows = []
    for value in values:
        sweep_setup = setup.with_gossip(
            gossip_period_s=float(value), keepalive_period_s=float(value)
        )
        rows.append(_run_single(sweep_setup, "Tgossip(s)", value))
    return rows


def run_view_size_sweep(
    setup: ExperimentSetup, values: Sequence[int] = PAPER_VIEW_SIZES
) -> List[GossipSweepRow]:
    """Table 2(c): vary Vgossip with the other gossip parameters fixed."""
    rows = []
    for value in values:
        gossip_length = min(setup.flower.gossip.gossip_length, int(value))
        sweep_setup = setup.with_gossip(view_size=int(value), gossip_length=gossip_length)
        rows.append(_run_single(sweep_setup, "Vgossip", value))
    return rows


def run_push_threshold_sweep(
    setup: ExperimentSetup, values: Sequence[float] = PAPER_PUSH_THRESHOLDS
) -> List[GossipSweepRow]:
    """The push-threshold ablation discussed in the prose of Section 6.2."""
    rows = []
    for value in values:
        sweep_setup = setup.with_gossip(push_threshold=float(value))
        rows.append(_run_single(sweep_setup, "push threshold", value))
    return rows


def format_sweep(rows: Sequence[GossipSweepRow], title: str) -> str:
    """Render a sweep the way Table 2 presents it (parameter, hit ratio, bps)."""
    return format_table(
        [rows[0].parameter if rows else "value", "Hit ratio", "Background BW (bps)"],
        [(row.value, row.hit_ratio, row.background_bps) for row in rows],
        title=title,
    )
