"""Reproduction of *Flower-CDN: A hybrid P2P overlay for Efficient Query
Processing in CDN* (El Dick, Pacitti, Kemme — EDBT 2009).

The package is organised bottom-up:

* :mod:`repro.sim` — discrete-event simulation engine (PeerSim substitute);
* :mod:`repro.network` — latency topology and landmark-based localities;
* :mod:`repro.datastructures` — Bloom filters, aged views, LRU caches;
* :mod:`repro.overlay` — Chord DHT substrate and key-based routing;
* :mod:`repro.workload` — synthetic Zipf query workload and traces;
* :mod:`repro.core` — Flower-CDN itself (D-ring, directory peers, content
  overlays, gossip, churn handling);
* :mod:`repro.baselines` — the Squirrel comparison system;
* :mod:`repro.metrics` — hit ratio, lookup latency, transfer distance and
  background-traffic collectors;
* :mod:`repro.experiments` — the harness regenerating every table and figure;
* :mod:`repro.scenarios` — declarative named scenarios, the deterministic
  scenario runner and the golden-metrics regression facility;
* :mod:`repro.sweeps` — declarative parameter sweeps over the scenario
  library (grids, parallel cell execution, sweep goldens, artifacts).

Quickstart (the :class:`~repro.session.Session` facade is the public entry
point; see ``docs/api.md``)::

    from repro import Session

    result = Session.from_name("paper-default").run()
    print(result.flower.metrics["hit_ratio"])

The lower layers remain available for harnesses that need them::

    from repro import ExperimentSetup, ExperimentRunner

    setup = ExperimentSetup.laptop_scale(duration_s=1800, query_rate_per_s=1.0)
    runner = ExperimentRunner(setup)
    result = runner.run_flower()
    print(result.hit_ratio, result.average_lookup_latency_ms)
"""

from repro.core.config import FlowerConfig, GossipConfig, MessageSizeModel
from repro.core.system import FlowerCDN
from repro.core.churn import ChurnConfig, ChurnInjector
from repro.baselines.squirrel import Squirrel, SquirrelConfig, SquirrelStrategy
from repro.experiments.driver import ExperimentRunner, ExperimentSetup, RunResult
from repro.metrics.collectors import MetricsCollector, QueryOutcome, QueryRecord
from repro.network.topology import Topology, TopologyConfig
from repro.scenarios import (
    ChurnProfile,
    ModelRef,
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
    WorkloadPhase,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.session import Session
from repro.sim.engine import Simulator
from repro.workload.generator import Query, QueryGenerator, WorkloadConfig

__version__ = "1.0.0"

__all__ = [
    "FlowerConfig",
    "GossipConfig",
    "MessageSizeModel",
    "FlowerCDN",
    "ChurnConfig",
    "ChurnInjector",
    "Squirrel",
    "SquirrelConfig",
    "SquirrelStrategy",
    "ExperimentRunner",
    "ExperimentSetup",
    "RunResult",
    "MetricsCollector",
    "QueryOutcome",
    "QueryRecord",
    "Topology",
    "TopologyConfig",
    "ChurnProfile",
    "ModelRef",
    "ScenarioSpec",
    "ScenarioRunner",
    "ScenarioResult",
    "WorkloadPhase",
    "Session",
    "get_scenario",
    "run_scenario",
    "scenario_names",
    "Simulator",
    "Query",
    "QueryGenerator",
    "WorkloadConfig",
    "__version__",
]
