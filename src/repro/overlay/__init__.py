"""Structured overlay substrate: identifier space, Chord ring and KBR routing.

Flower-CDN's D-ring "can be integrated into any existing structured overlay
based on a standard DHT"; the paper simulates Chord.  This package provides
that substrate:

* :mod:`repro.overlay.idspace` — circular identifier arithmetic;
* :mod:`repro.overlay.node` — a Chord node with finger table, successor list
  and the ``local_lookup`` primitives of Algorithms 1 and 2;
* :mod:`repro.overlay.chord` — the ring: join, leave, stabilisation;
* :mod:`repro.overlay.router` — the key-based routing API (``route(key, msg)``)
  with hop and latency accounting, supporting both the standard policy and a
  pluggable website-constrained policy used by D-ring.
"""

from repro.overlay.idspace import IdSpace
from repro.overlay.node import ChordNode
from repro.overlay.chord import ChordRing
from repro.overlay.pastry import PastryNode, PastryRing
from repro.overlay.router import KBRRouter, RouteResult, RoutingPolicy

__all__ = [
    "IdSpace",
    "ChordNode",
    "ChordRing",
    "PastryNode",
    "PastryRing",
    "KBRRouter",
    "RouteResult",
    "RoutingPolicy",
]
