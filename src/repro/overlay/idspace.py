"""Circular identifier-space arithmetic.

DHT identifiers live on a ring of size ``2**m`` ("peer identifiers are chosen
from an identifier space S = [1 .. 2^m - 1] where m is the ID length in
bits", Section 3.1).  This module centralises the modular arithmetic every
other overlay component needs: clockwise distance, circular (numeric)
distance, interval membership and key hashing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class IdSpace:
    """An ``m``-bit circular identifier space."""

    bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 256:
            raise ValueError(f"bits must be in [1, 256], got {self.bits}")

    @property
    def size(self) -> int:
        return 1 << self.bits

    @property
    def max_id(self) -> int:
        return self.size - 1

    def contains(self, identifier: int) -> bool:
        return 0 <= identifier < self.size

    def normalize(self, identifier: int) -> int:
        return identifier % self.size

    def validate(self, identifier: int) -> int:
        if not self.contains(identifier):
            raise ValueError(f"identifier {identifier} outside {self.bits}-bit space")
        return identifier

    # -- hashing -----------------------------------------------------------

    def hash_key(self, key: str) -> int:
        """Map an arbitrary string to an identifier (SHA-1 truncated to ``bits``)."""
        digest = hashlib.sha1(key.encode("utf-8")).digest()
        value = int.from_bytes(digest, "big")
        return value % self.size

    # -- circular arithmetic -------------------------------------------------

    def clockwise_distance(self, src: int, dst: int) -> int:
        """Distance travelled going clockwise (increasing IDs) from ``src`` to ``dst``."""
        return (dst - src) % self.size

    def circular_distance(self, a: int, b: int) -> int:
        """Numeric closeness on the ring: the shorter way around."""
        forward = (b - a) % self.size
        return min(forward, self.size - forward)

    def in_interval(
        self,
        value: int,
        start: int,
        end: int,
        inclusive_start: bool = False,
        inclusive_end: bool = False,
    ) -> bool:
        """True when ``value`` lies in the clockwise interval from ``start`` to ``end``.

        Handles wrap-around.  A zero-length open interval ``(x, x)`` is treated
        as the whole ring minus ``x``, which matches Chord's conventions.
        """
        value, start, end = self.normalize(value), self.normalize(start), self.normalize(end)
        if start == end:
            if inclusive_start or inclusive_end:
                return value == start
            return value != start
        if inclusive_start and value == start:
            return True
        if inclusive_end and value == end:
            return True
        if value == start or value == end:
            return False
        return self.clockwise_distance(start, value) < self.clockwise_distance(start, end)

    def closest_to(self, key: int, candidates: "list[int]") -> int:
        """Return the candidate numerically closest to ``key`` on the ring.

        Ties are broken clockwise (the candidate reachable by the smaller
        clockwise distance from the key), then by smaller identifier, so the
        result is deterministic.
        """
        if not candidates:
            raise ValueError("candidates must not be empty")
        return min(
            candidates,
            key=lambda c: (
                self.circular_distance(key, c),
                self.clockwise_distance(key, c),
                c,
            ),
        )
