"""A Pastry-style structured overlay.

The paper states that D-ring "can be integrated into any existing structured
overlay based on a standard DHT (e.g., Chord, Pastry)" and its evaluation
simulates Chord.  This module provides the Pastry alternative so the claim is
exercised in code: nodes keep a *leaf set* (the numerically closest nodes on
either side) and a *prefix routing table* (for each prefix length and next
digit, one node sharing that prefix), and per-hop forwarding follows Pastry's
rule — forward to a node whose identifier shares a longer prefix with the key,
or failing that to one numerically closer.

:class:`PastryRing` mirrors the public surface of
:class:`repro.overlay.chord.ChordRing` (join/leave/fail/stabilize/owner_of/
live node access), and :class:`PastryNode` exposes the same ``local_lookup`` /
``conditional_local_lookup`` primitives, so the generic
:class:`repro.overlay.router.KBRRouter` and the D-ring layer work unchanged on
top of either substrate.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.overlay.idspace import IdSpace


class PastryNode:
    """Routing state of one Pastry participant."""

    def __init__(
        self,
        node_id: int,
        idspace: IdSpace,
        peer_name: str = "",
        digit_bits: int = 4,
        leaf_set_size: int = 8,
    ) -> None:
        idspace.validate(node_id)
        if digit_bits <= 0:
            raise ValueError("digit_bits must be positive")
        if leaf_set_size <= 0 or leaf_set_size % 2 != 0:
            raise ValueError("leaf_set_size must be a positive even number")
        self.node_id = node_id
        self.idspace = idspace
        self.peer_name = peer_name or f"node-{node_id}"
        self.digit_bits = digit_bits
        self.leaf_set_size = leaf_set_size
        self.alive = True
        #: routing_table[row][digit] -> node id sharing `row` digits with us and
        #: having `digit` as its next identifier digit
        self.routing_table: Dict[int, Dict[int, int]] = {}
        #: numerically closest nodes, half below and half above on the ring
        self.leaf_set: List[int] = []

    # -- identifier digits ----------------------------------------------------

    @property
    def num_digits(self) -> int:
        return (self.idspace.bits + self.digit_bits - 1) // self.digit_bits

    def digit(self, identifier: int, row: int) -> int:
        """The ``row``-th most significant ``digit_bits``-wide digit of ``identifier``."""
        shift = (self.num_digits - 1 - row) * self.digit_bits
        return (identifier >> shift) & ((1 << self.digit_bits) - 1)

    def shared_prefix_length(self, identifier: int) -> int:
        """Number of leading digits ``identifier`` shares with this node's id."""
        for row in range(self.num_digits):
            if self.digit(identifier, row) != self.digit(self.node_id, row):
                return row
        return self.num_digits

    # -- routing state -----------------------------------------------------------

    def known_nodes(self) -> Set[int]:
        known: Set[int] = {self.node_id}
        known.update(self.leaf_set)
        for row in self.routing_table.values():
            known.update(row.values())
        return known

    def forget(self, node_id: int) -> None:
        self.leaf_set = [n for n in self.leaf_set if n != node_id]
        for row in self.routing_table.values():
            stale = [digit for digit, node in row.items() if node == node_id]
            for digit in stale:
                del row[digit]

    # -- lookups (same primitives the KBR router relies on) -------------------------

    def local_lookup(self, key: int) -> int:
        """Pastry forwarding rule, collapsed to "best known node for this key".

        Prefer nodes whose identifier shares a strictly longer prefix with the
        key than ours does; among those (or, failing any, among all known
        nodes) pick the numerically closest to the key.  Returning ourselves
        means the message is delivered here.
        """
        known = sorted(self.known_nodes())
        own_prefix = self.shared_prefix_length(key)
        better_prefix = [
            node
            for node in known
            if node != self.node_id and self._prefix_length(node, key) > own_prefix
        ]
        candidates = better_prefix if better_prefix else known
        best = self.idspace.closest_to(key, candidates)
        # Never take a hop that moves numerically further from the key.
        if self.idspace.circular_distance(key, best) > self.idspace.circular_distance(
            key, self.node_id
        ):
            return self.node_id
        return best

    def conditional_local_lookup(
        self, key: int, predicate: Callable[[int], bool]
    ) -> Optional[int]:
        candidates = [node for node in self.known_nodes() if predicate(node)]
        if not candidates:
            return None
        return self.idspace.closest_to(key, sorted(candidates))

    def _prefix_length(self, node_id: int, key: int) -> int:
        length = 0
        for row in range(self.num_digits):
            if self.digit(node_id, row) != self.digit(key, row):
                break
            length += 1
        return length


def rebuild_pastry_state(nodes: Dict[int, "PastryNode"]) -> None:
    """Recompute leaf sets and routing tables of all live nodes (stabilisation)."""
    live_ids = sorted(node_id for node_id, node in nodes.items() if node.alive)
    if not live_ids:
        return
    ring_size = len(live_ids)
    position = {node_id: index for index, node_id in enumerate(live_ids)}

    for node_id in live_ids:
        node = nodes[node_id]
        half = node.leaf_set_size // 2
        index = position[node_id]
        leaves: List[int] = []
        for offset in range(1, min(half, ring_size - 1) + 1):
            leaves.append(live_ids[(index - offset) % ring_size])
            leaves.append(live_ids[(index + offset) % ring_size])
        node.leaf_set = sorted(set(leaves) - {node_id})

        table: Dict[int, Dict[int, int]] = {}
        for other in live_ids:
            if other == node_id:
                continue
            row = node.shared_prefix_length(other)
            digit = node.digit(other, row) if row < node.num_digits else 0
            slot = table.setdefault(row, {})
            current = slot.get(digit)
            # Keep the numerically closest candidate per slot (a common
            # locality-agnostic tie-break; real Pastry uses proximity).
            if current is None or node.idspace.circular_distance(node_id, other) < \
                    node.idspace.circular_distance(node_id, current):
                slot[digit] = other
        node.routing_table = table


class PastryRing:
    """A simulated Pastry overlay with the same public surface as ChordRing."""

    __slots__ = ("idspace", "digit_bits", "leaf_set_size", "auto_stabilize", "_nodes")

    def __init__(
        self,
        idspace: IdSpace,
        digit_bits: int = 4,
        leaf_set_size: int = 8,
        auto_stabilize: bool = True,
    ) -> None:
        self.idspace = idspace
        self.digit_bits = digit_bits
        self.leaf_set_size = leaf_set_size
        self.auto_stabilize = auto_stabilize
        self._nodes: Dict[int, PastryNode] = {}

    # -- membership ------------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for node in self._nodes.values() if node.alive)

    def __contains__(self, node_id: int) -> bool:
        node = self._nodes.get(node_id)
        return node is not None and node.alive

    def live_ids(self) -> List[int]:
        return sorted(node_id for node_id, node in self._nodes.items() if node.alive)

    def nodes(self) -> Sequence[PastryNode]:
        return tuple(self._nodes.values())

    def node(self, node_id: int) -> PastryNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} is not part of the ring") from None

    def join(self, node_id: int, peer_name: str = "") -> PastryNode:
        self.idspace.validate(node_id)
        existing = self._nodes.get(node_id)
        if existing is not None and existing.alive:
            raise ValueError(f"node id {node_id} already joined the ring")
        node = PastryNode(
            node_id,
            self.idspace,
            peer_name=peer_name,
            digit_bits=self.digit_bits,
            leaf_set_size=self.leaf_set_size,
        )
        self._nodes[node_id] = node
        if self.auto_stabilize:
            self.stabilize()
        return node

    def leave(self, node_id: int) -> None:
        node = self.node(node_id)
        node.alive = False
        del self._nodes[node_id]
        if self.auto_stabilize:
            self.stabilize()

    def fail(self, node_id: int) -> None:
        self.node(node_id).alive = False

    def stabilize(self) -> None:
        self._nodes = {nid: n for nid, n in self._nodes.items() if n.alive}
        rebuild_pastry_state(self._nodes)

    # -- ownership --------------------------------------------------------------------

    def owner_of(self, key: int) -> Optional[PastryNode]:
        live = self.live_ids()
        if not live:
            return None
        return self._nodes[self.idspace.closest_to(key, live)]

    def owner_matching(self, key: int, predicate) -> Optional[PastryNode]:
        candidates = [nid for nid in self.live_ids() if predicate(nid)]
        if not candidates:
            return None
        return self._nodes[self.idspace.closest_to(key, candidates)]

    # -- bulk construction ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        idspace: IdSpace,
        node_ids,
        peer_names: Optional[Dict[int, str]] = None,
        digit_bits: int = 4,
        leaf_set_size: int = 8,
    ) -> "PastryRing":
        ring = cls(
            idspace, digit_bits=digit_bits, leaf_set_size=leaf_set_size, auto_stabilize=False
        )
        names = peer_names or {}
        for node_id in node_ids:
            ring.join(node_id, peer_name=names.get(node_id, ""))
        ring.auto_stabilize = True
        ring.stabilize()
        return ring
