"""A Chord node: finger table, successor list and local lookups.

Each node knows a bounded set of other nodes (its *routing state*): finger
table entries, a successor list and its predecessor.  The two primitives the
paper's routing algorithms need are implemented here:

* ``local_lookup(key)`` — Algorithm 1's per-hop step: among the nodes this
  node knows of (including itself), the one numerically closest to the key;
* ``conditional_local_lookup(key, predicate)`` — Algorithm 2's extra step:
  the same, restricted to known nodes satisfying a predicate (D-ring uses
  "same website ID as the key").

Routing state is bidirectional: alongside the classic clockwise finger table
each node keeps *backward fingers* (the first live node counter-clockwise
from ``id - 2^i``), so greedy numerically-closest routing halves the distance
to a counter-clockwise key just as it does clockwise, and lookups are
O(log n) in both directions instead of degrading to a predecessor walk.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.overlay.idspace import IdSpace


class ChordNode:
    """Routing state of one DHT participant."""

    def __init__(self, node_id: int, idspace: IdSpace, peer_name: str = "") -> None:
        idspace.validate(node_id)
        self.node_id = node_id
        self.idspace = idspace
        #: Application-level peer name mapped onto this DHT node (used by the
        #: latency model and the Flower-CDN layer); defaults to the node id.
        self.peer_name = peer_name or f"node-{node_id}"
        self.fingers: List[Optional[int]] = [None] * idspace.bits
        self.back_fingers: List[Optional[int]] = [None] * idspace.bits
        self.successors: List[int] = []
        self.predecessor: Optional[int] = None
        self.alive = True

    # -- identity ----------------------------------------------------------

    def __repr__(self) -> str:
        return f"ChordNode(id={self.node_id}, peer={self.peer_name!r}, alive={self.alive})"

    # -- routing state -----------------------------------------------------

    def finger_start(self, index: int) -> int:
        """The identifier the ``index``-th finger should point at: ``id + 2^index``."""
        return self.idspace.normalize(self.node_id + (1 << index))

    def back_finger_start(self, index: int) -> int:
        """The identifier the ``index``-th backward finger points at: ``id - 2^index``."""
        return self.idspace.normalize(self.node_id - (1 << index))

    def known_nodes(self) -> Set[int]:
        """Every node id present in this node's routing state (plus itself)."""
        known: Set[int] = {self.node_id}
        known.update(f for f in self.fingers if f is not None)
        known.update(f for f in self.back_fingers if f is not None)
        known.update(self.successors)
        if self.predecessor is not None:
            known.add(self.predecessor)
        return known

    def forget(self, node_id: int) -> None:
        """Drop a failed node from every routing-state slot."""
        self.fingers = [None if f == node_id else f for f in self.fingers]
        self.back_fingers = [None if f == node_id else f for f in self.back_fingers]
        self.successors = [s for s in self.successors if s != node_id]
        if self.predecessor == node_id:
            self.predecessor = None

    def remember(self, node_id: int) -> None:
        """Opportunistically place ``node_id`` into any finger slot it improves."""
        if node_id == self.node_id:
            return
        for index in range(self.idspace.bits):
            start = self.finger_start(index)
            current = self.fingers[index]
            if current is None:
                self.fingers[index] = node_id
            # Prefer the node closest after the finger start (classic Chord).
            elif self.idspace.clockwise_distance(start, node_id) < self.idspace.clockwise_distance(
                start, current
            ):
                self.fingers[index] = node_id
            back_start = self.back_finger_start(index)
            back_current = self.back_fingers[index]
            if back_current is None:
                self.back_fingers[index] = node_id
            # Mirror image: prefer the node closest *before* the backward start.
            elif self.idspace.clockwise_distance(node_id, back_start) < self.idspace.clockwise_distance(
                back_current, back_start
            ):
                self.back_fingers[index] = node_id

    # -- lookups (Algorithms 1 and 2 primitives) ------------------------------

    def local_lookup(self, key: int) -> int:
        """The known node (or self) numerically closest to ``key``."""
        return self.idspace.closest_to(key, sorted(self.known_nodes()))

    def conditional_local_lookup(
        self, key: int, predicate: Callable[[int], bool]
    ) -> Optional[int]:
        """Closest known node satisfying ``predicate``, or ``None`` if there is none."""
        candidates = [n for n in self.known_nodes() if predicate(n)]
        if not candidates:
            return None
        return self.idspace.closest_to(key, sorted(candidates))

    def closest_preceding(self, key: int) -> int:
        """Chord's ``closest_preceding_finger``: used by tests to cross-check routing."""
        best = self.node_id
        best_distance = self.idspace.clockwise_distance(self.node_id, key)
        for candidate in self.known_nodes():
            if candidate == self.node_id:
                continue
            if self.idspace.in_interval(candidate, self.node_id, key):
                distance = self.idspace.clockwise_distance(candidate, key)
                if distance < best_distance:
                    best = candidate
                    best_distance = distance
        return best


def rebuild_routing_state(
    nodes: Dict[int, ChordNode], successor_list_size: int = 4
) -> None:
    """Recompute fingers, successor lists and predecessors for a set of live nodes.

    This is the simulation stand-in for Chord's periodic stabilisation: after
    joins and leaves the experiment harness calls it to restore a consistent
    ring, exactly as the paper assumes "the stabilization procedures that are
    normally used in structured overlays" do.
    """
    live_ids = sorted(node_id for node_id, node in nodes.items() if node.alive)
    if not live_ids:
        return
    idspace = nodes[live_ids[0]].idspace
    ring_size = len(live_ids)

    def successor_of(identifier: int) -> int:
        """First live node clockwise from ``identifier`` (inclusive)."""
        # live_ids is sorted; find the first id >= identifier, else wrap.
        lo, hi = 0, ring_size
        while lo < hi:
            mid = (lo + hi) // 2
            if live_ids[mid] < identifier:
                lo = mid + 1
            else:
                hi = mid
        return live_ids[lo % ring_size]

    def predecessor_of(identifier: int) -> int:
        """First live node counter-clockwise from ``identifier`` (inclusive)."""
        # live_ids is sorted; find the last id <= identifier, else wrap.
        lo, hi = 0, ring_size
        while lo < hi:
            mid = (lo + hi) // 2
            if live_ids[mid] <= identifier:
                lo = mid + 1
            else:
                hi = mid
        return live_ids[(lo - 1) % ring_size]

    for position, node_id in enumerate(live_ids):
        node = nodes[node_id]
        node.fingers = [
            successor_of(node.finger_start(index)) for index in range(idspace.bits)
        ]
        node.back_fingers = [
            predecessor_of(node.back_finger_start(index)) for index in range(idspace.bits)
        ]
        node.successors = [
            live_ids[(position + offset) % ring_size]
            for offset in range(1, min(successor_list_size, ring_size) + 1)
        ]
        node.predecessor = live_ids[(position - 1) % ring_size]


def iter_live(nodes: Iterable[ChordNode]) -> Iterable[ChordNode]:
    """Convenience filter over live nodes."""
    return (node for node in nodes if node.alive)
