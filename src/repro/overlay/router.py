"""Key-based routing (KBR) over the Chord ring.

Implements the common structured-overlay API of Dabek et al. that the paper
builds on: ``route(key, msg)`` forwards a message hop by hop until the node
whose identifier is numerically closest to the key is reached.

Two per-hop policies are available:

* :attr:`RoutingPolicy.STANDARD` — Algorithm 1: plain ``local_lookup``;
* :attr:`RoutingPolicy.CONSTRAINED` — Algorithm 2: after the local lookup, if
  the candidate does not satisfy the key's constraint (for D-ring: same
  website ID), a conditional local lookup restricted to satisfying nodes is
  attempted; if none is known, the original candidate is kept.

The router accounts hops and per-hop latency (through an optional latency
callback), which is how the experiments measure *lookup latency*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional

from repro.overlay.chord import ChordRing


class RoutingError(RuntimeError):
    """Raised when a message cannot make progress (partitioned or empty ring)."""


class RoutingPolicy(Enum):
    """Per-hop forwarding rule."""

    STANDARD = "standard"
    CONSTRAINED = "constrained"


@dataclass(slots=True)
class RouteResult:
    """Outcome of routing one message."""

    key: int
    destination: int
    path: List[int] = field(default_factory=list)
    latency_ms: float = 0.0
    delivered: bool = True

    @property
    def hops(self) -> int:
        """Number of overlay hops traversed (path transitions)."""
        return max(0, len(self.path) - 1)

    @property
    def source(self) -> int:
        return self.path[0] if self.path else self.destination


LatencyCallback = Callable[[str, str], float]
Constraint = Callable[[int], bool]


class KBRRouter:
    """Routes messages over a :class:`~repro.overlay.chord.ChordRing`."""

    __slots__ = ("_ring", "_latency", "_max_hops")

    def __init__(
        self,
        ring: ChordRing,
        latency_callback: Optional[LatencyCallback] = None,
        max_hops: Optional[int] = None,
    ) -> None:
        self._ring = ring
        self._latency = latency_callback
        # Optional explicit bound; when None the bound adapts to the live ring
        # size at route time (see _hop_bound).
        self._max_hops = max_hops

    def _hop_bound(self) -> int:
        """Hop bound for one route call.

        Greedy numerically-closest routing strictly decreases the distance to
        the key every hop, so it always terminates; with bidirectional finger
        tables (see :mod:`repro.overlay.node`) every hop roughly halves the
        remaining distance whichever way around the ring the key lies, so
        genuine routes take O(log n) hops.  The bound is a small multiple of
        the identifier width — enough slack for stale-entry retries after
        churn — and only exists to turn genuinely corrupted routing state
        into an error instead of an infinite loop.
        """
        if self._max_hops is not None:
            return self._max_hops
        return 8 * self._ring.idspace.bits + 32

    @property
    def ring(self) -> ChordRing:
        return self._ring

    def route(
        self,
        start_node_id: int,
        key: int,
        policy: RoutingPolicy = RoutingPolicy.STANDARD,
        constraint: Optional[Constraint] = None,
    ) -> RouteResult:
        """Route a message with ``key`` starting at ``start_node_id``.

        Returns a :class:`RouteResult` whose ``destination`` is the node that
        delivered the message.  ``constraint`` is only consulted when
        ``policy`` is :attr:`RoutingPolicy.CONSTRAINED`.
        """
        self._ring.idspace.validate(key)
        if policy is RoutingPolicy.CONSTRAINED and constraint is None:
            raise ValueError("CONSTRAINED routing requires a constraint predicate")
        if start_node_id not in self._ring:
            raise RoutingError(f"start node {start_node_id} is not a live ring member")

        current = self._ring.node(start_node_id)
        path = [current.node_id]
        latency_total = 0.0
        max_hops = self._hop_bound()

        for _ in range(max_hops):
            next_id = current.local_lookup(key)
            if policy is RoutingPolicy.CONSTRAINED and next_id != current.node_id:
                if not constraint(next_id):
                    conditional = current.conditional_local_lookup(key, constraint)
                    if conditional is not None:
                        next_id = conditional

            if next_id == current.node_id:
                # The message has reached the node closest to the key that the
                # current node knows of: deliver here (Algorithm 1's `deliver`).
                return RouteResult(
                    key=key, destination=current.node_id, path=path, latency_ms=latency_total
                )

            next_node = self._ring._nodes.get(next_id)  # may be a stale, failed entry
            if next_node is None or not next_node.alive:
                # Stale routing entry pointing at a failed node: drop it and retry
                # the lookup from the same node (keepalive-style failure detection).
                current.forget(next_id)
                continue

            if self._latency is not None:
                latency_total += self._latency(current.peer_name, next_node.peer_name)
            path.append(next_id)
            current = next_node

        raise RoutingError(
            f"message for key {key} exceeded {max_hops} hops; routing state is inconsistent"
        )

    def lookup(self, start_node_id: int, raw_key: str) -> RouteResult:
        """Convenience wrapper hashing ``raw_key`` before routing (Squirrel-style)."""
        return self.route(start_node_id, self._ring.idspace.hash_key(raw_key))
