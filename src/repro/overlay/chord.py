"""The Chord ring: membership, ownership and stabilisation.

:class:`ChordRing` owns the set of :class:`~repro.overlay.node.ChordNode`
objects, handles joins and leaves, answers "which live node owns key ``k``"
and keeps routing state consistent via :func:`rebuild_routing_state` (the
simulation substitute for Chord's periodic stabilisation).

Ownership follows the paper's generic KBR formulation — the peer with the ID
*equal or numerically closest* to the key — rather than strict
successor-ownership, because that is the property D-ring's engineered
identifiers rely on ("the DHT key-based routing service redirects the message
to the directory peer that has an ID that is numerically closest",
Section 3.2).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence

from repro.overlay.idspace import IdSpace
from repro.overlay.node import ChordNode, rebuild_routing_state


class ChordRing:
    """A simulated Chord ring over an ``m``-bit identifier space."""

    __slots__ = (
        "idspace",
        "successor_list_size",
        "auto_stabilize",
        "_nodes",
        "_live_cache",
    )

    def __init__(
        self,
        idspace: IdSpace,
        successor_list_size: int = 4,
        auto_stabilize: bool = True,
    ) -> None:
        self.idspace = idspace
        self.successor_list_size = successor_list_size
        #: when True (the default) every membership change immediately repairs
        #: routing state; experiments studying churn can disable it and call
        #: :meth:`stabilize` on their own schedule.
        self.auto_stabilize = auto_stabilize
        self._nodes: Dict[int, ChordNode] = {}
        # live_ids() runs on every bootstrap/lookup; membership changes are
        # rare by comparison, so the sorted id list is cached between them.
        self._live_cache: List[int] | None = None

    # -- membership ----------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for node in self._nodes.values() if node.alive)

    def __contains__(self, node_id: int) -> bool:
        node = self._nodes.get(node_id)
        return node is not None and node.alive

    def nodes(self) -> Sequence[ChordNode]:
        """All nodes ever added, live or not (diagnostics)."""
        return tuple(self._nodes.values())

    def live_ids(self) -> List[int]:
        cached = self._live_cache
        if cached is None:
            cached = sorted(
                node_id for node_id, node in self._nodes.items() if node.alive
            )
            self._live_cache = cached
        return cached

    def node(self, node_id: int) -> ChordNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"node {node_id} is not part of the ring") from None

    def join(self, node_id: int, peer_name: str = "") -> ChordNode:
        """Add (or revive) a node with the given identifier."""
        self.idspace.validate(node_id)
        existing = self._nodes.get(node_id)
        if existing is not None and existing.alive:
            raise ValueError(f"node id {node_id} already joined the ring")
        node = ChordNode(node_id, self.idspace, peer_name=peer_name)
        self._nodes[node_id] = node
        self._live_cache = None
        if self.auto_stabilize:
            self.stabilize()
        return node

    def leave(self, node_id: int) -> None:
        """Graceful departure: the node is removed and routing state repaired."""
        node = self.node(node_id)
        node.alive = False
        del self._nodes[node_id]
        self._live_cache = None
        if self.auto_stabilize:
            self.stabilize()

    def fail(self, node_id: int) -> None:
        """Abrupt failure: the node stops responding but neighbours still point at it.

        Until :meth:`stabilize` runs, lookups may be routed towards the dead
        node; the router treats that as a hop to a dead node and falls back to
        the next-best known node, mirroring real DHT behaviour under churn.
        """
        self.node(node_id).alive = False
        self._live_cache = None

    def stabilize(self) -> None:
        """Repair fingers, successor lists and predecessors of all live nodes."""
        # Purge failed nodes from the table first so rebuild ignores them.
        self._nodes = {nid: n for nid, n in self._nodes.items() if n.alive}
        self._live_cache = None
        rebuild_routing_state(self._nodes, self.successor_list_size)

    # -- ownership -----------------------------------------------------------

    def owner_of(self, key: int) -> Optional[ChordNode]:
        """The live node numerically closest to ``key`` (None on an empty ring)."""
        live = self.live_ids()
        if not live:
            return None
        return self._nodes[self.idspace.closest_to(key, live)]

    def owner_matching(self, key: int, predicate) -> Optional[ChordNode]:
        """The live node closest to ``key`` among nodes whose id satisfies ``predicate``."""
        candidates = [nid for nid in self.live_ids() if predicate(nid)]
        if not candidates:
            return None
        return self._nodes[self.idspace.closest_to(key, candidates)]

    # -- idealised routing -------------------------------------------------------

    def successor_of(self, identifier: int) -> Optional[int]:
        """First live node clockwise from ``identifier`` (inclusive), or ``None``."""
        live = self.live_ids()
        if not live:
            return None
        lo, hi = 0, len(live)
        while lo < hi:
            mid = (lo + hi) // 2
            if live[mid] < identifier:
                lo = mid + 1
            else:
                hi = mid
        return live[lo % len(live)]

    def ideal_route(self, start_node_id: int, key: int) -> List[int]:
        """Chord route under perfectly converged finger tables.

        The path is computed directly from the live membership (each hop's
        finger ``successor(current + 2^i)`` is derived on demand), which gives
        exactly the hops a fully stabilised Chord would take without paying
        for materialised finger tables on every join.  The destination is the
        classic Chord owner, ``successor(key)``.  Used by the Squirrel
        baseline, whose membership changes on every client arrival.
        """
        self.idspace.validate(key)
        if start_node_id not in self:
            raise KeyError(f"start node {start_node_id} is not a live ring member")
        live = self.live_ids()
        if not live:
            return [start_node_id]

        # The per-hop circular arithmetic is inlined (identifiers are already
        # normalised members of the space, so `in_interval(finger, current,
        # key, inclusive_end=True)` reduces to one modular-distance compare):
        # this loop runs O(log n) bisects per hop on the Squirrel dispatch
        # hot path, and the helper-call overhead used to dominate it.
        n = len(live)
        size = self.idspace.size
        bisect_left = bisect.bisect_left

        destination = live[bisect_left(live, key) % n]
        path = [start_node_id]
        current = start_node_id
        guard = 4 * self.idspace.bits
        while current != destination and len(path) <= guard:
            next_hop = None
            # Fingers whose start lies beyond the key overshoot it, so the scan
            # starts at the largest power of two not exceeding the remaining
            # clockwise distance (classic closest-preceding-finger behaviour).
            remaining = (key - current) % size
            start_index = max(0, remaining.bit_length() - 1)
            for index in range(start_index, -1, -1):
                finger = live[bisect_left(live, (current + (1 << index)) % size) % n]
                if finger == current:
                    continue
                if 0 < (finger - current) % size <= remaining:
                    next_hop = finger
                    break
            if next_hop is None or next_hop == current:
                next_hop = destination
            path.append(next_hop)
            current = next_hop
        return path

    # -- bulk construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        idspace: IdSpace,
        node_ids: Iterable[int],
        peer_names: Optional[Dict[int, str]] = None,
        successor_list_size: int = 4,
    ) -> "ChordRing":
        """Construct a stabilised ring containing ``node_ids`` in one shot."""
        ring = cls(idspace, successor_list_size=successor_list_size, auto_stabilize=False)
        names = peer_names or {}
        for node_id in node_ids:
            ring.join(node_id, peer_name=names.get(node_id, ""))
        ring.auto_stabilize = True
        ring.stabilize()
        return ring
