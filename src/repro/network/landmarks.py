"""Landmark-based locality detection (Ratnasamy et al. substitute).

The paper assumes every peer "can detect via some latency measurements, to
which locality it belongs", using a landmark-based technique.  We implement
the standard scheme: a small set of well-known landmark hosts is published;
each peer measures its latency to every landmark and derives its locality
from the resulting latency vector.

Two derivations are provided:

* ``nearest``: the locality of the closest landmark — this is what the
  Flower-CDN experiments use, because the number of landmarks equals the
  number of localities ``k``;
* ``ordering``: the classic landmark *bin*, i.e. the permutation of landmarks
  sorted by latency, useful when localities should be finer-grained than the
  landmark count.  It is exposed for completeness and exercised in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.network.topology import Topology


@dataclass(frozen=True)
class LandmarkMeasurement:
    """Latency vector from one host to every landmark."""

    host_id: int
    latencies_ms: Tuple[float, ...]

    def nearest_landmark(self) -> int:
        return min(range(len(self.latencies_ms)), key=lambda i: self.latencies_ms[i])

    def ordering(self) -> Tuple[int, ...]:
        return tuple(sorted(range(len(self.latencies_ms)), key=lambda i: self.latencies_ms[i]))


class LandmarkBinner:
    """Assigns localities to hosts from landmark latency measurements."""

    def __init__(self, topology: Topology, landmarks: Sequence[int] | None = None) -> None:
        self._topology = topology
        if landmarks is None:
            self._landmarks: List[int] = topology.landmark_hosts()
        else:
            self._landmarks = list(landmarks)
        if not self._landmarks:
            raise ValueError("at least one landmark host is required")

    @property
    def landmarks(self) -> Sequence[int]:
        return tuple(self._landmarks)

    @property
    def num_localities(self) -> int:
        return len(self._landmarks)

    def measure(self, host_id: int) -> LandmarkMeasurement:
        """Measure latencies from ``host_id`` to every landmark."""
        latencies = tuple(
            self._topology.latency_ms(host_id, landmark) for landmark in self._landmarks
        )
        return LandmarkMeasurement(host_id=host_id, latencies_ms=latencies)

    def locality_of(self, host_id: int) -> int:
        """Locality detected by ``host_id``: index of its nearest landmark."""
        return self.measure(host_id).nearest_landmark()

    def bin_of(self, host_id: int) -> Tuple[int, ...]:
        """Full landmark ordering (classic binning) of ``host_id``."""
        return self.measure(host_id).ordering()

    def accuracy(self, sample_hosts: Sequence[int] | None = None) -> float:
        """Fraction of hosts whose detected locality matches the topology's.

        The synthetic topology knows each host's true cluster; landmark
        binning should recover it for the overwhelming majority of hosts.
        Used by tests and by experiment sanity checks.
        """
        hosts = sample_hosts if sample_hosts is not None else range(self._topology.num_hosts)
        total = 0
        correct = 0
        for host_id in hosts:
            total += 1
            landmark_index = self.locality_of(host_id)
            detected = self._topology.locality_of(self._landmarks[landmark_index])
            if detected == self._topology.locality_of(host_id):
                correct += 1
        return correct / total if total else 0.0
