"""Synthetic latency topology (BRITE substitute).

The paper uses a BRITE-inspired model that assigns link latencies between
10 and 500 ms over 5000 underlying nodes, and splits the Internet into ``k``
non-uniformly populated localities.  We reproduce that with a planar model:

* each locality is a cluster centre placed in a 2-D latency plane;
* each host is placed around the centre of its (non-uniformly chosen)
  cluster with a configurable spread;
* the latency between two hosts is an affine function of their Euclidean
  distance, clamped to the configured ``[min_latency, max_latency]`` range
  plus a small random per-pair perturbation.

The result has exactly the property the paper's evaluation relies on:
intra-locality latencies are small (tens of milliseconds), inter-locality
latencies are large (hundreds of milliseconds), and everything lies in the
BRITE-like 10–500 ms band.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.rng import RandomStreams, derive_seed


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the synthetic topology.

    Attributes:
        num_hosts: number of underlying hosts (the paper uses 5000).
        num_localities: number of network localities ``k`` (paper: 6).
        min_latency_ms: lower bound on pairwise latency (paper: 10 ms).
        max_latency_ms: upper bound on pairwise latency (paper: 500 ms).
        intra_locality_spread_ms: typical latency radius inside one locality.
        locality_weights: optional relative population weights, one per
            locality; localities are non-uniformly populated by default.
        jitter_ms: amplitude of the symmetric per-pair random perturbation.
        seed_stream: name of the random stream used for placement.
    """

    num_hosts: int = 5000
    num_localities: int = 6
    min_latency_ms: float = 10.0
    max_latency_ms: float = 500.0
    intra_locality_spread_ms: float = 80.0
    locality_weights: Tuple[float, ...] = ()
    jitter_ms: float = 5.0
    seed_stream: str = "topology"

    def __post_init__(self) -> None:
        if self.num_hosts <= 0:
            raise ValueError("num_hosts must be positive")
        if self.num_localities <= 0:
            raise ValueError("num_localities must be positive")
        if self.min_latency_ms <= 0 or self.max_latency_ms <= self.min_latency_ms:
            raise ValueError("latency bounds must satisfy 0 < min < max")
        if self.locality_weights and len(self.locality_weights) != self.num_localities:
            raise ValueError(
                "locality_weights must have exactly num_localities entries "
                f"({len(self.locality_weights)} != {self.num_localities})"
            )

    def effective_weights(self) -> Tuple[float, ...]:
        """Return the population weights, defaulting to a skewed distribution.

        The paper states localities are *non-uniformly* populated; in the
        absence of exact figures we default to a gently decaying weight
        profile ``1, 1/2, 1/3, ...`` normalised to sum to one.
        """
        if self.locality_weights:
            weights = self.locality_weights
        else:
            weights = tuple(1.0 / (i + 1) for i in range(self.num_localities))
        total = sum(weights)
        if total <= 0:
            raise ValueError("locality weights must sum to a positive value")
        return tuple(w / total for w in weights)


@dataclass(slots=True)
class Host:
    """An underlying network host onto which a peer may be mapped."""

    host_id: int
    locality: int
    x: float
    y: float


class Topology:
    """Latency topology over a fixed set of hosts.

    Latencies are symmetric, deterministic for a given seed and accessed via
    :meth:`latency_ms`.  The per-pair jitter is derived from the host-id pair
    so repeated queries between the same hosts observe the same latency.
    """

    #: default bound on the pairwise latency memo (worst case a few tens of MB)
    DEFAULT_LATENCY_CACHE_SIZE = 1_000_000

    def __init__(
        self,
        config: TopologyConfig,
        streams: RandomStreams,
        latency_cache_size: int = DEFAULT_LATENCY_CACHE_SIZE,
    ) -> None:
        self._config = config
        self._streams = streams
        self._hosts: List[Host] = []
        self._centres: List[Tuple[float, float]] = []
        self._by_locality: Dict[int, List[int]] = {}
        self._build()
        # Memo of symmetric pair -> latency.  The value is a pure function of
        # the pair, so entries never go stale; the memo is bounded purely to
        # cap memory.  Two backends:
        #
        # * "dense" — when the full triangular pair matrix fits within the
        #   configured bound, a flat preallocated table indexed by the
        #   triangular pair index (``rows[lo] + hi``; ``None`` = not yet
        #   computed).  8 bytes per *possible* pair plus one boxed float per
        #   computed one, no per-entry dict overhead, no eviction — and a hit
        #   is a row-offset add plus one list load, faster than a dict probe.
        # * "lru"   — for topologies whose pair matrix exceeds the bound
        #   (~12.5M pairs at 5000 hosts), a capacity-bounded dict with
        #   least-recently-used eviction; evicted pairs simply recompute to
        #   the identical value later.
        if latency_cache_size <= 0:
            raise ValueError("latency_cache_size must be positive")
        self._latency_cache_size = latency_cache_size
        self._latency_hits = 0
        self._latency_misses = 0
        num_hosts = len(self._hosts)
        num_pairs = num_hosts * (num_hosts - 1) // 2
        if num_pairs <= latency_cache_size:
            self._latency_dense: Optional[List[Optional[float]]] = [None] * num_pairs
            # Row offsets: pair (lo, hi) with lo < hi lives at rows[lo] + hi.
            self._latency_rows: List[int] = [
                lo * (2 * num_hosts - lo - 1) // 2 - lo - 1 for lo in range(num_hosts)
            ]
            self._latency_cache: Optional[Dict[int, float]] = None
        else:
            self._latency_dense = None
            self._latency_rows = []
            self._latency_cache = {}

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        cfg = self._config
        rng = self._streams.stream(cfg.seed_stream)
        # Place cluster centres on a circle wide enough that inter-locality
        # distances map to latencies near the upper bound.
        radius = (cfg.max_latency_ms - cfg.min_latency_ms) / 2.0
        for i in range(cfg.num_localities):
            angle = 2.0 * math.pi * i / cfg.num_localities
            self._centres.append((radius * math.cos(angle), radius * math.sin(angle)))
            self._by_locality[i] = []

        weights = cfg.effective_weights()
        for host_id in range(cfg.num_hosts):
            locality = self._pick_locality(rng.random(), weights)
            cx, cy = self._centres[locality]
            # Gaussian scatter around the centre bounded by the spread.
            dx = rng.gauss(0.0, cfg.intra_locality_spread_ms / 2.0)
            dy = rng.gauss(0.0, cfg.intra_locality_spread_ms / 2.0)
            host = Host(host_id=host_id, locality=locality, x=cx + dx, y=cy + dy)
            self._hosts.append(host)
            self._by_locality[locality].append(host_id)

    @staticmethod
    def _pick_locality(u: float, weights: Sequence[float]) -> int:
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if u <= acc:
                return i
        return len(weights) - 1

    # -- accessors ----------------------------------------------------------

    @property
    def config(self) -> TopologyConfig:
        return self._config

    @property
    def num_hosts(self) -> int:
        return len(self._hosts)

    @property
    def num_localities(self) -> int:
        return self._config.num_localities

    def host(self, host_id: int) -> Host:
        return self._hosts[host_id]

    def hosts(self) -> Sequence[Host]:
        return tuple(self._hosts)

    def hosts_in_locality(self, locality: int) -> Sequence[int]:
        return tuple(self._by_locality.get(locality, ()))

    def locality_of(self, host_id: int) -> int:
        return self._hosts[host_id].locality

    def locality_populations(self) -> Dict[int, int]:
        return {loc: len(ids) for loc, ids in self._by_locality.items()}

    def landmark_hosts(self) -> List[int]:
        """Return one representative host per locality (closest to its centre)."""
        landmarks: List[int] = []
        for loc in range(self._config.num_localities):
            members = self._by_locality.get(loc, [])
            if not members:
                continue
            cx, cy = self._centres[loc]
            best = min(
                members,
                key=lambda hid: (self._hosts[hid].x - cx) ** 2 + (self._hosts[hid].y - cy) ** 2,
            )
            landmarks.append(best)
        return landmarks

    # -- latency ------------------------------------------------------------

    def latency_ms(self, a: int, b: int) -> float:
        """Symmetric latency in milliseconds between hosts ``a`` and ``b``.

        Results are memoised per unordered pair: the value is deterministic,
        so the cache is transparent — it only skips the distance and jitter
        arithmetic on repeat queries.
        """
        if a == b:
            return 0.0
        lo, hi = (a, b) if a <= b else (b, a)
        dense = self._latency_dense
        if dense is not None:
            index = self._latency_rows[lo] + hi
            latency = dense[index]
            if latency is not None:
                self._latency_hits += 1
                return latency
            self._latency_misses += 1
            latency = self._compute_latency(lo, hi)
            dense[index] = latency
            return latency
        key = lo * len(self._hosts) + hi
        cache = self._latency_cache
        latency = cache.pop(key, None)
        if latency is not None:
            # LRU: re-insert at the back (dict preserves insertion order).
            self._latency_hits += 1
            cache[key] = latency
            return latency
        self._latency_misses += 1
        latency = self._compute_latency(lo, hi)
        if len(cache) >= self._latency_cache_size:
            # Evict the least-recently-used entry; any evicted pair is simply
            # recomputed to the identical value later.
            del cache[next(iter(cache))]
        cache[key] = latency
        return latency

    def _compute_latency(self, lo: int, hi: int) -> float:
        """The (pure) latency function the memo backends cache."""
        ha, hb = self._hosts[lo], self._hosts[hi]
        distance = math.hypot(ha.x - hb.x, ha.y - hb.y)
        latency = self._config.min_latency_ms + distance
        latency += self._pair_jitter(lo, hi)
        return max(self._config.min_latency_ms, min(self._config.max_latency_ms, latency))

    def latency_cache_info(self) -> Dict[str, object]:
        """Hit/miss/size/backend statistics of the pairwise latency memo.

        ``size`` counts the pairs currently cached, ``capacity`` the
        configured bound on them; ``backend`` reports which representation is
        active ("dense" triangular array or capacity-bounded "lru" dict).
        """
        if self._latency_dense is not None:
            # Dense entries are filled exactly once and never evicted, so the
            # miss counter equals the number of populated slots.
            size = self._latency_misses
            backend = "dense"
        else:
            size = len(self._latency_cache)
            backend = "lru"
        return {
            "hits": self._latency_hits,
            "misses": self._latency_misses,
            "size": size,
            "capacity": self._latency_cache_size,
            "backend": backend,
        }

    def latency_cache_nbytes(self) -> int:
        """Approximate bytes held by the latency memo (diagnostic)."""
        if self._latency_dense is not None:
            # 8-byte table slots (+ row offsets) plus one boxed float per
            # computed pair.
            return 8 * (len(self._latency_dense) + len(self._latency_rows)) + (
                24 * self._latency_misses
            )
        # dict-of-float entries: ~100 bytes each including key/value boxing
        return 100 * len(self._latency_cache)

    def _pair_jitter(self, a: int, b: int) -> float:
        """Deterministic, symmetric jitter for the (a, b) pair."""
        lo, hi = (a, b) if a <= b else (b, a)
        # Simple integer hash folded into [-jitter, +jitter].
        h = (lo * 2654435761 + hi * 40503) & 0xFFFFFFFF
        unit = (h / 0xFFFFFFFF) * 2.0 - 1.0
        return unit * self._config.jitter_ms

    def average_intra_locality_latency(self, locality: int, sample: int = 200) -> float:
        """Monte-Carlo estimate of the mean latency within ``locality``.

        Uses a call-local RNG derived from the master seed and the call's own
        parameters, so the estimate depends only on ``(seed, locality,
        sample)`` — never on how many estimates were requested before (a
        shared named stream would couple results to call order).
        """
        members = self._by_locality.get(locality, [])
        if len(members) < 2:
            return 0.0
        rng = random.Random(
            derive_seed(
                self._streams.master_seed,
                f"{self._config.seed_stream}:est:{locality}:{sample}",
            )
        )
        total, count = 0.0, 0
        for _ in range(sample):
            a, b = rng.sample(members, 2)
            total += self.latency_ms(a, b)
            count += 1
        return total / count if count else 0.0
