"""Underlying network model: latency topology and landmark-based localities.

The paper builds its P2P overlays on top of a BRITE-generated Internet
topology of 5000 nodes with link latencies between 10 and 500 ms and derives
``k`` network localities via landmark binning (Ratnasamy et al.).  This
package provides the equivalent synthetic substrate:

* :class:`repro.network.topology.Topology` — peers placed in a latency space,
  pairwise latencies in [10, 500] ms with low intra-cluster latencies.
* :class:`repro.network.landmarks.LandmarkBinner` — assigns each peer to one
  of ``k`` localities from its latency vector to the landmarks.
* :class:`repro.network.latency.LatencyModel` — the query/gossip message
  delay oracle used by the simulator.
* :class:`repro.network.reachability.ReachabilityModel` — the message
  delivery gate (partitions, outages, link loss) consulted by the system
  for every protocol interaction.
"""

from repro.network.latency import LatencyModel
from repro.network.landmarks import LandmarkBinner
from repro.network.reachability import (
    MESSAGE_KINDS,
    DeliveryStats,
    HostOutage,
    LinkLoss,
    LocalityPartition,
    ReachabilityModel,
)
from repro.network.topology import Topology, TopologyConfig

__all__ = [
    "Topology",
    "TopologyConfig",
    "LandmarkBinner",
    "LatencyModel",
    "MESSAGE_KINDS",
    "DeliveryStats",
    "ReachabilityModel",
    "LocalityPartition",
    "HostOutage",
    "LinkLoss",
]
