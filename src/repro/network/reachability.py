"""Message reachability: the delivery gate every protocol interaction consults.

The paper's Section 5 resilience story (keepalive failure detection,
directory replacement, graceful fallback to the origin server) presumes an
unreliable network, yet a simulator that delivers every message
unconditionally can never exercise it.  This module provides the missing
layer: a :class:`ReachabilityModel` attached to a running
:class:`~repro.core.system.FlowerCDN` via
:meth:`~repro.core.system.FlowerCDN.attach_reachability`, consulted once per
protocol message — gossip exchanges, keepalives, directory pushes and
queries, query redirections, D-ring summary refreshes and active
replication — through the system's single delivery gate.

Design rules:

* **No model, no cost.**  Every gate site in ``core/system.py`` is guarded
  by ``if self.reachability is not None``; with no model attached a run is
  byte-identical to the pre-gate code under both peer backends.
* **Pure functions of time.**  Episode-based models (locality partitions,
  directory outages) answer :meth:`ReachabilityModel.allows` from the
  simulation clock alone — no scheduled events, no hidden state — so
  attaching one never perturbs the event queue or any random stream.
* **Dedicated streams.**  Probabilistic models (per-link loss) draw from
  their own named stream, so enabling them never shifts the draws of any
  other stream of the run.

Concrete models for the registered fault families live here
(:class:`LocalityPartition`, :class:`HostOutage`, :class:`LinkLoss`); the
scenario-facing factories that build and attach them are registered in
:mod:`repro.scenarios.models`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

__all__ = [
    "MESSAGE_KINDS",
    "DeliveryStats",
    "ReachabilityModel",
    "LocalityPartition",
    "HostOutage",
    "LinkLoss",
]

#: every message kind the delivery gate distinguishes:
#:
#: * ``"gossip"``      — one gossip exchange between two content peers
#: * ``"keepalive"``   — content peer -> its directory peer
#: * ``"push"``        — content-list delta push to the directory
#: * ``"query"``       — a query contacting a directory peer (new-client
#:   bootstrap, serving directory, content-miss directory fallback)
#: * ``"redirect"``    — a query redirected to a candidate provider
#: * ``"dring"``       — directory peer -> neighbouring directory peer during
#:   Algorithm 3's cross-overlay hop
#: * ``"summary"``     — periodic directory summary refresh to D-ring
#:   neighbours
#: * ``"replication"`` — an actively replicated object copy
MESSAGE_KINDS = (
    "gossip",
    "keepalive",
    "push",
    "query",
    "redirect",
    "dring",
    "summary",
    "replication",
)


@dataclass
class DeliveryStats:
    """Per-run counters of the delivery gate (created on model attachment)."""

    #: messages the gate let through, by kind
    delivered: Dict[str, int] = field(default_factory=dict)
    #: messages the gate blocked, by kind
    blocked: Dict[str, int] = field(default_factory=dict)
    #: queries whose redirection retries included a blocked attempt and
    #: still ended without a provider (the retry budget ran dry)
    retries_exhausted: int = 0
    #: queries degraded to the origin server because the directory path was
    #: unreachable (not because the directory was dead)
    server_fallbacks: int = 0
    #: redirection candidates skipped while under suspicion backoff
    suspicion_skips: int = 0
    #: explicit post-heal reconciliation rounds performed
    reconciliations: int = 0

    def count_delivered(self, kind: str) -> None:
        self.delivered[kind] = self.delivered.get(kind, 0) + 1

    def count_blocked(self, kind: str) -> None:
        self.blocked[kind] = self.blocked.get(kind, 0) + 1

    @property
    def total_delivered(self) -> int:
        return sum(self.delivered.values())

    @property
    def total_blocked(self) -> int:
        return sum(self.blocked.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "delivered": dict(sorted(self.delivered.items())),
            "blocked": dict(sorted(self.blocked.items())),
            "retries_exhausted": self.retries_exhausted,
            "server_fallbacks": self.server_fallbacks,
            "suspicion_skips": self.suspicion_skips,
            "reconciliations": self.reconciliations,
        }

    def merge_from(self, other: "DeliveryStats") -> None:
        """Fold another gate's counters into this one (sharded merge).

        All counters sum across shards except ``reconciliations``: every
        shard performs the same post-heal reconciliation rounds on its own
        clock, so the union-run equivalent is the maximum, not the sum.
        """
        for kind, count in other.delivered.items():
            self.delivered[kind] = self.delivered.get(kind, 0) + count
        for kind, count in other.blocked.items():
            self.blocked[kind] = self.blocked.get(kind, 0) + count
        self.retries_exhausted += other.retries_exhausted
        self.server_fallbacks += other.server_fallbacks
        self.suspicion_skips += other.suspicion_skips
        self.reconciliations = max(self.reconciliations, other.reconciliations)


class ReachabilityModel:
    """Base delivery model: everything reachable (attachable as a no-op).

    Subclasses override :meth:`allows`; the base implementation delivers
    every message, which makes the class itself useful in tests asserting
    the gate's no-interference property.
    """

    #: whether a run under this model reports the ``resilience_*`` metric
    #: block (fault adapters that must keep existing goldens byte-identical,
    #: e.g. the re-routed gossip-loss model, set this False)
    emits_metrics: bool = True

    def allows(
        self,
        kind: str,
        src_host: int,
        dst_host: int,
        src_id: Optional[str],
        dst_id: Optional[str],
        now: float,
    ) -> bool:
        """Whether a ``kind`` message from ``src_host`` reaches ``dst_host``.

        ``src_id``/``dst_id`` are the peer identifiers when known (``None``
        for a client host that has not joined an overlay yet); ``now`` is
        the simulation clock at send time.
        """
        return True

    def fault_windows(self) -> Tuple[Tuple[float, float], ...]:
        """The ``(start, end)`` episodes this model disturbs the network in.

        Used by the resilience metrics to split the hit-ratio series into
        pre-fault / in-fault / post-heal segments.  Models without a
        temporal footprint (e.g. stationary link loss) return ``()``.
        """
        return ()


class LocalityPartition(ReachabilityModel):
    """Locality-level network partition with start/duration episodes.

    During an episode every message crossing the boundary between a
    partitioned locality and the rest of the network is blocked;
    intra-locality traffic (and traffic wholly outside the partitioned
    localities) is unaffected.  ``asymmetric=True`` models one-way route
    failure: only messages *leaving* a partitioned locality are blocked,
    while inbound traffic still arrives.

    Episodes use half-open ``start <= now < end`` semantics, so a heal
    action scheduled exactly at ``end`` already sees the network whole.
    """

    def __init__(
        self,
        episodes: Tuple[Tuple[float, float], ...],
        localities: FrozenSet[int],
        locality_of: Callable[[int], int],
        asymmetric: bool = False,
    ) -> None:
        for start, end in episodes:
            if start < 0 or end <= start:
                raise ValueError("each episode needs 0 <= start < end")
        if not localities:
            raise ValueError("at least one locality must be partitioned")
        self._episodes = tuple(sorted(episodes))
        self._localities = frozenset(localities)
        self._locality_of = locality_of
        self._asymmetric = asymmetric

    def _active(self, now: float) -> bool:
        for start, end in self._episodes:
            if start <= now < end:
                return True
            if now < start:
                break
        return False

    def allows(self, kind, src_host, dst_host, src_id, dst_id, now) -> bool:
        if not self._active(now):
            return True
        src_in = self._locality_of(src_host) in self._localities
        dst_in = self._locality_of(dst_host) in self._localities
        if self._asymmetric:
            # One-way failure: only outbound messages are lost.
            return not (src_in and not dst_in)
        return src_in == dst_in

    def fault_windows(self) -> Tuple[Tuple[float, float], ...]:
        return self._episodes


class HostOutage(ReachabilityModel):
    """Specific hosts unreachable during per-host time windows.

    The model behind the cascading-directory-failures family: each affected
    host gets its own ``(start, end)`` outage window during which every
    message to or from it is blocked.  The hosts stay *alive* — they are
    unreachable, not failed — which is exactly the regime the graceful-
    degradation path (origin-server fallback without triggering the
    Section 5.2 replacement protocol) must survive.
    """

    def __init__(self, windows: Tuple[Tuple[int, float, float], ...]) -> None:
        by_host: Dict[int, List[Tuple[float, float]]] = {}
        for host, start, end in windows:
            if start < 0 or end <= start:
                raise ValueError("each outage window needs 0 <= start < end")
            by_host.setdefault(host, []).append((start, end))
        self._by_host = {host: tuple(sorted(spans)) for host, spans in by_host.items()}

    def _down(self, host: int, now: float) -> bool:
        spans = self._by_host.get(host)
        if spans is None:
            return False
        for start, end in spans:
            if start <= now < end:
                return True
            if now < start:
                break
        return False

    def allows(self, kind, src_host, dst_host, src_id, dst_id, now) -> bool:
        return not (self._down(src_host, now) or self._down(dst_host, now))

    def fault_windows(self) -> Tuple[Tuple[float, float], ...]:
        windows = sorted(
            span for spans in self._by_host.values() for span in spans
        )
        return tuple(windows)


class LinkLoss(ReachabilityModel):
    """Stationary per-message loss: each gated message is independently
    dropped with ``drop_probability``, across every kind (or a restricted
    tuple of kinds).  Draws come from the model's own stream, so attaching
    it never perturbs any other stream of the run.
    """

    def __init__(
        self,
        drop_probability: float,
        stream: random.Random,
        kinds: Tuple[str, ...] = (),
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        for kind in kinds:
            if kind not in MESSAGE_KINDS:
                raise ValueError(
                    f"unknown message kind {kind!r}; expected one of {MESSAGE_KINDS}"
                )
        self._drop_probability = drop_probability
        self._stream = stream
        self._kinds = frozenset(kinds)

    def allows(self, kind, src_host, dst_host, src_id, dst_id, now) -> bool:
        if self._kinds and kind not in self._kinds:
            return True
        return self._stream.random() >= self._drop_probability
