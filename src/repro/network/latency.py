"""Latency oracle mapping overlay peers onto underlying hosts.

Overlay peers (directory peers, content peers, clients, web servers) are
mapped to hosts of the :class:`~repro.network.topology.Topology`; this module
answers "how long does a message from peer A to peer B take" and "how far is
the object transfer from provider to requester", the two quantities the
paper's *lookup latency* and *transfer distance* metrics are built from.

Origin web servers are modelled as hosts placed outside every locality (the
paper's transfer distance is high while queries are served by origin
servers), implemented as a configurable fixed penalty latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.network.topology import Topology


@dataclass(frozen=True)
class ServerPlacement:
    """Latency model for an origin web server.

    The paper does not place origin servers inside any locality; requests
    served by the origin observe a large network distance.  We model a server
    as a virtual host at ``server_latency_ms`` from every peer (default: the
    topology's maximum latency).
    """

    server_latency_ms: Optional[float] = None


class LatencyModel:
    """Message-delay and transfer-distance oracle for overlay entities."""

    def __init__(self, topology: Topology, server_placement: ServerPlacement | None = None) -> None:
        self._topology = topology
        self._peer_hosts: Dict[str, int] = {}
        placement = server_placement or ServerPlacement()
        self._server_latency_ms = (
            placement.server_latency_ms
            if placement.server_latency_ms is not None
            else topology.config.max_latency_ms
        )

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def server_latency_ms(self) -> float:
        return self._server_latency_ms

    # -- peer registration ---------------------------------------------------

    def register_peer(self, peer_id: str, host_id: int) -> None:
        """Bind an overlay peer identifier to an underlying host."""
        if not 0 <= host_id < self._topology.num_hosts:
            raise ValueError(f"host_id {host_id} outside topology of {self._topology.num_hosts}")
        self._peer_hosts[peer_id] = host_id

    def unregister_peer(self, peer_id: str) -> None:
        self._peer_hosts.pop(peer_id, None)

    def host_of(self, peer_id: str) -> int:
        try:
            return self._peer_hosts[peer_id]
        except KeyError:
            raise KeyError(f"peer {peer_id!r} is not registered with the latency model") from None

    def is_registered(self, peer_id: str) -> bool:
        return peer_id in self._peer_hosts

    def locality_of(self, peer_id: str) -> int:
        return self._topology.locality_of(self.host_of(peer_id))

    # -- latency queries -----------------------------------------------------

    def latency_ms(self, src_peer: str, dst_peer: str) -> float:
        """One-way message latency between two registered peers, in ms.

        Pair latencies are memoised at the topology layer (symmetric host-pair
        cache), so repeated queries between the same directory/content peers —
        the hot path of every lookup — cost two dict lookups plus a cache hit.
        """
        peer_hosts = self._peer_hosts
        try:
            src_host = peer_hosts[src_peer]
            dst_host = peer_hosts[dst_peer]
        except KeyError:
            # Re-raise through host_of for the precise per-peer error message.
            src_host = self.host_of(src_peer)
            dst_host = self.host_of(dst_peer)
        return self._topology.latency_ms(src_host, dst_host)

    def latency_cache_info(self) -> Dict[str, int]:
        """Statistics of the underlying topology's pairwise latency memo."""
        return self._topology.latency_cache_info()

    def latency_to_server_ms(self, peer_id: str) -> float:
        """Latency between a registered peer and an origin web server, in ms."""
        self.host_of(peer_id)  # validate registration
        return self._server_latency_ms

    def transfer_distance_ms(self, requester: str, provider: Optional[str]) -> float:
        """Transfer distance metric: requester-to-provider network distance.

        ``provider is None`` means the object was served by the origin server.
        """
        if provider is None:
            return self.latency_to_server_ms(requester)
        return self.latency_ms(requester, provider)
