"""Evaluation metrics.

The paper evaluates four metrics (Section 6): background traffic (bps per
peer from gossip and push exchanges), hit ratio (fraction of queries served
by the P2P system), lookup latency (time to locate a provider) and transfer
distance (network distance from requester to provider).  This package
collects them as both aggregates and time series / distributions so every
table and figure can be regenerated.
"""

from repro.metrics.collectors import (
    BandwidthAccountant,
    MetricsCollector,
    QueryOutcome,
    QueryRecord,
)
from repro.metrics.histogram import Histogram
from repro.metrics.resilience import (
    PRE_FAULT_WINDOW_COUNT,
    RECOVERY_TOLERANCE,
    summarise_resilience,
)
from repro.metrics.timeseries import TimeSeries
from repro.metrics.report import format_table, percentiles_table

__all__ = [
    "MetricsCollector",
    "BandwidthAccountant",
    "QueryOutcome",
    "QueryRecord",
    "Histogram",
    "TimeSeries",
    "format_table",
    "percentiles_table",
    "summarise_resilience",
    "RECOVERY_TOLERANCE",
    "PRE_FAULT_WINDOW_COUNT",
]
