"""Metric collectors shared by Flower-CDN, Squirrel and the experiment harness.

Two collectors exist:

* :class:`MetricsCollector` records per-query outcomes (hit/miss, lookup
  latency, transfer distance, overlay hops) and exposes the aggregates,
  time series and distributions needed by every table and figure;
* :class:`BandwidthAccountant` records background-traffic bytes (gossip,
  push, keepalive, summary refresh messages) per peer and converts them to
  the paper's "average bps experienced by a content or directory peer".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

from repro.metrics.histogram import Histogram
from repro.metrics.timeseries import TimeSeries


class QueryOutcome(Enum):
    """Where a query was ultimately served from."""

    #: served by a content peer of the requester's own content overlay
    LOCAL_OVERLAY_HIT = "local_overlay_hit"
    #: served by a content peer of another locality's content overlay of the
    #: same website (reached through directory summaries)
    REMOTE_OVERLAY_HIT = "remote_overlay_hit"
    #: served by any peer of the P2P system without locality attribution
    #: (used by the Squirrel baseline, which has no locality notion)
    PEER_HIT = "peer_hit"
    #: the P2P system could not provide the object; served by the origin server
    SERVER_MISS = "server_miss"

    @property
    def is_hit(self) -> bool:
        return self is not QueryOutcome.SERVER_MISS


@dataclass(frozen=True)
class QueryRecord:
    """Everything the evaluation needs to know about one processed query."""

    query_id: int
    time: float
    website: str
    locality: int
    outcome: QueryOutcome
    lookup_latency_ms: float
    transfer_distance_ms: float
    overlay_hops: int = 0
    provider: Optional[str] = None
    redirection_failures: int = 0


class MetricsCollector:
    """Accumulates :class:`QueryRecord` objects and derives the paper's metrics."""

    def __init__(
        self,
        window_s: float = 3600.0,
        latency_bin_ms: float = 150.0,
        latency_bins: int = 10,
        distance_bin_ms: float = 100.0,
        distance_bins: int = 6,
    ) -> None:
        self._records: List[QueryRecord] = []
        self._hit_series = TimeSeries(window_s)
        self._latency_series = TimeSeries(window_s)
        self._distance_series = TimeSeries(window_s)
        self._latency_histogram = Histogram(latency_bin_ms, latency_bins)
        self._distance_histogram = Histogram(distance_bin_ms, distance_bins)
        self._outcome_counts: Dict[QueryOutcome, int] = defaultdict(int)

    # -- recording -------------------------------------------------------------

    def record(self, record: QueryRecord) -> None:
        self._records.append(record)
        self._outcome_counts[record.outcome] += 1
        self._hit_series.add(record.time, 1.0 if record.outcome.is_hit else 0.0)
        self._latency_series.add(record.time, record.lookup_latency_ms)
        self._latency_histogram.add(record.lookup_latency_ms)
        if record.outcome.is_hit:
            # The transfer-distance metric is defined over queries satisfied
            # from the P2P system (Section 6, metric definition).
            self._distance_series.add(record.time, record.transfer_distance_ms)
            self._distance_histogram.add(record.transfer_distance_ms)

    def record_all(self, records: Iterable[QueryRecord]) -> None:
        for record in records:
            self.record(record)

    # -- aggregates ---------------------------------------------------------------

    @property
    def num_queries(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Sequence[QueryRecord]:
        return tuple(self._records)

    @property
    def hit_ratio(self) -> float:
        """Fraction of queries satisfied from the P2P system."""
        if not self._records:
            return 0.0
        hits = sum(count for outcome, count in self._outcome_counts.items() if outcome.is_hit)
        return hits / len(self._records)

    @property
    def average_lookup_latency_ms(self) -> float:
        return self._latency_histogram.mean

    @property
    def average_transfer_distance_ms(self) -> float:
        return self._distance_histogram.mean

    @property
    def average_overlay_hops(self) -> float:
        if not self._records:
            return 0.0
        return sum(r.overlay_hops for r in self._records) / len(self._records)

    @property
    def redirection_failures(self) -> int:
        return sum(r.redirection_failures for r in self._records)

    def outcome_counts(self) -> Dict[QueryOutcome, int]:
        return dict(self._outcome_counts)

    def outcome_fractions(self) -> Dict[QueryOutcome, float]:
        total = len(self._records)
        if not total:
            return {}
        return {outcome: count / total for outcome, count in self._outcome_counts.items()}

    # -- series and distributions ----------------------------------------------------

    @property
    def hit_ratio_series(self) -> TimeSeries:
        return self._hit_series

    @property
    def lookup_latency_series(self) -> TimeSeries:
        return self._latency_series

    @property
    def transfer_distance_series(self) -> TimeSeries:
        return self._distance_series

    @property
    def lookup_latency_histogram(self) -> Histogram:
        return self._latency_histogram

    @property
    def transfer_distance_histogram(self) -> Histogram:
        return self._distance_histogram

    def steady_state_latency_ms(self, warmup_s: float) -> float:
        """Mean of per-window lookup latencies after the warm-up period."""
        values = self._latency_series.values_after(warmup_s)
        return sum(values) / len(values) if values else 0.0

    def steady_state_distance_ms(self, warmup_s: float) -> float:
        values = self._distance_series.values_after(warmup_s)
        return sum(values) / len(values) if values else 0.0


class BandwidthAccountant:
    """Background-traffic accounting (gossip, push, keepalive, summary refresh)."""

    #: categories of background messages counted as overhead; "replication" is
    #: only used by the active-replication extension (Section 8 future work)
    CATEGORIES = ("gossip", "push", "keepalive", "summary", "replication")

    def __init__(self, window_s: float = 3600.0) -> None:
        self._bytes_per_peer: Dict[str, float] = defaultdict(float)
        self._bytes_per_category: Dict[str, float] = defaultdict(float)
        self._messages_per_category: Dict[str, int] = defaultdict(int)
        self._series = TimeSeries(window_s)
        self._peer_first_seen: Dict[str, float] = {}

    def record_message(
        self, time: float, sender: str, receiver: str, num_bytes: int, category: str
    ) -> None:
        """Account a background message: both endpoints experience the traffic."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if category not in self.CATEGORIES:
            raise ValueError(f"unknown traffic category {category!r}")
        for peer in (sender, receiver):
            self._bytes_per_peer[peer] += num_bytes
            self._peer_first_seen.setdefault(peer, time)
        self._bytes_per_category[category] += 2 * num_bytes
        self._messages_per_category[category] += 1
        self._series.add(time, 2 * num_bytes)

    def observe_peer(self, time: float, peer: str) -> None:
        """Register a peer that participates even if it never sends traffic."""
        self._bytes_per_peer.setdefault(peer, 0.0)
        self._peer_first_seen.setdefault(peer, time)

    # -- aggregates --------------------------------------------------------------

    @property
    def num_peers(self) -> int:
        return len(self._bytes_per_peer)

    @property
    def total_bytes(self) -> float:
        return sum(self._bytes_per_peer.values())

    def total_bytes_by_category(self) -> Dict[str, float]:
        return dict(self._bytes_per_category)

    def messages_by_category(self) -> Dict[str, int]:
        return dict(self._messages_per_category)

    def average_bps_per_peer(self, duration_s: float) -> float:
        """The paper's *background traffic* metric: mean bps per participating peer."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self._bytes_per_peer:
            return 0.0
        per_peer_bps = [
            (total_bytes * 8.0) / duration_s for total_bytes in self._bytes_per_peer.values()
        ]
        return sum(per_peer_bps) / len(per_peer_bps)

    def peak_bps_per_peer(self, duration_s: float) -> float:
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self._bytes_per_peer:
            return 0.0
        return max((b * 8.0) / duration_s for b in self._bytes_per_peer.values())

    def traffic_series(self) -> TimeSeries:
        """Per-window total background bytes (Figure 5's traffic curve)."""
        return self._series

    def bps_series(self, duration_hint_s: Optional[float] = None) -> List[tuple[float, float]]:
        """Per-window average bps per peer over time."""
        del duration_hint_s  # reserved for future normalisation options
        points = []
        peers = max(1, self.num_peers)
        for window in self._series.windows():
            bits = window.total * 8.0
            points.append((window.window_start, bits / (self._series.window_s * peers)))
        return points
