"""Metric collectors shared by Flower-CDN, Squirrel and the experiment harness.

Two collectors exist:

* :class:`MetricsCollector` records per-query outcomes (hit/miss, lookup
  latency, transfer distance, overlay hops) and exposes the aggregates,
  time series and distributions needed by every table and figure;
* :class:`BandwidthAccountant` records background-traffic bytes (gossip,
  push, keepalive, summary refresh messages) per peer and converts them to
  the paper's "average bps experienced by a content or directory peer".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

from repro.metrics.histogram import Histogram
from repro.metrics.timeseries import TimeSeries


class QueryOutcome(Enum):
    """Where a query was ultimately served from."""

    #: served by a content peer of the requester's own content overlay
    LOCAL_OVERLAY_HIT = "local_overlay_hit"
    #: served by a content peer of another locality's content overlay of the
    #: same website (reached through directory summaries)
    REMOTE_OVERLAY_HIT = "remote_overlay_hit"
    #: served by any peer of the P2P system without locality attribution
    #: (used by the Squirrel baseline, which has no locality notion)
    PEER_HIT = "peer_hit"
    #: the P2P system could not provide the object; served by the origin server
    SERVER_MISS = "server_miss"

    @property
    def is_hit(self) -> bool:
        return self is not QueryOutcome.SERVER_MISS


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """Everything the evaluation needs to know about one processed query."""

    query_id: int
    time: float
    website: str
    locality: int
    outcome: QueryOutcome
    lookup_latency_ms: float
    transfer_distance_ms: float
    overlay_hops: int = 0
    provider: Optional[str] = None
    redirection_failures: int = 0


class MetricsCollector:
    """Accumulates :class:`QueryRecord` objects and derives the paper's metrics."""

    def __init__(
        self,
        window_s: float = 3600.0,
        latency_bin_ms: float = 150.0,
        latency_bins: int = 10,
        distance_bin_ms: float = 100.0,
        distance_bins: int = 6,
    ) -> None:
        self._records: List[QueryRecord] = []
        self._hit_series = TimeSeries(window_s)
        self._latency_series = TimeSeries(window_s)
        self._distance_series = TimeSeries(window_s)
        self._latency_histogram = Histogram(latency_bin_ms, latency_bins)
        self._distance_histogram = Histogram(distance_bin_ms, distance_bins)
        self._outcome_counts: Dict[QueryOutcome, int] = defaultdict(int)
        # record() is on the per-query hot path, so it only appends; series,
        # histograms and outcome counts are folded in lazily (and
        # incrementally) by _sync() when an aggregate is read.
        self._append_record = self._records.append
        self._aggregated_upto = 0

    # -- recording -------------------------------------------------------------

    def record(self, record: QueryRecord) -> None:
        self._append_record(record)

    def record_all(self, records: Iterable[QueryRecord]) -> None:
        self._records.extend(records)

    def _sync(self) -> None:
        """Fold not-yet-aggregated records into the derived structures.

        Incremental: each record is folded exactly once, in append order, so
        the resulting series/histograms/counts are identical to eager
        per-record updates regardless of how reads and writes interleave.
        """
        records = self._records
        upto = self._aggregated_upto
        if upto == len(records):
            return
        counts = self._outcome_counts
        hit_add = self._hit_series.add
        latency_add = self._latency_series.add
        latency_hist_add = self._latency_histogram.add
        distance_add = self._distance_series.add
        distance_hist_add = self._distance_histogram.add
        miss = QueryOutcome.SERVER_MISS
        for record in records[upto:]:
            outcome = record.outcome
            counts[outcome] += 1
            time = record.time
            hit_add(time, 0.0 if outcome is miss else 1.0)
            latency_add(time, record.lookup_latency_ms)
            latency_hist_add(record.lookup_latency_ms)
            if outcome is not miss:
                # The transfer-distance metric is defined over queries
                # satisfied from the P2P system (Section 6).
                distance_add(time, record.transfer_distance_ms)
                distance_hist_add(record.transfer_distance_ms)
        self._aggregated_upto = len(records)

    # -- aggregates ---------------------------------------------------------------

    @property
    def num_queries(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Sequence[QueryRecord]:
        return tuple(self._records)

    @property
    def hit_ratio(self) -> float:
        """Fraction of queries satisfied from the P2P system."""
        if not self._records:
            return 0.0
        self._sync()
        hits = sum(count for outcome, count in self._outcome_counts.items() if outcome.is_hit)
        return hits / len(self._records)

    @property
    def average_lookup_latency_ms(self) -> float:
        self._sync()
        return self._latency_histogram.mean

    @property
    def average_transfer_distance_ms(self) -> float:
        self._sync()
        return self._distance_histogram.mean

    @property
    def average_overlay_hops(self) -> float:
        if not self._records:
            return 0.0
        return sum(r.overlay_hops for r in self._records) / len(self._records)

    @property
    def redirection_failures(self) -> int:
        return sum(r.redirection_failures for r in self._records)

    def outcome_counts(self) -> Dict[QueryOutcome, int]:
        self._sync()
        return dict(self._outcome_counts)

    def outcome_fractions(self) -> Dict[QueryOutcome, float]:
        total = len(self._records)
        if not total:
            return {}
        self._sync()
        return {outcome: count / total for outcome, count in self._outcome_counts.items()}

    # -- series and distributions ----------------------------------------------------

    @property
    def hit_ratio_series(self) -> TimeSeries:
        self._sync()
        return self._hit_series

    @property
    def lookup_latency_series(self) -> TimeSeries:
        self._sync()
        return self._latency_series

    @property
    def transfer_distance_series(self) -> TimeSeries:
        self._sync()
        return self._distance_series

    @property
    def lookup_latency_histogram(self) -> Histogram:
        self._sync()
        return self._latency_histogram

    @property
    def transfer_distance_histogram(self) -> Histogram:
        self._sync()
        return self._distance_histogram

    def steady_state_latency_ms(self, warmup_s: float) -> float:
        """Mean of per-window lookup latencies after the warm-up period."""
        self._sync()
        values = self._latency_series.values_after(warmup_s)
        return sum(values) / len(values) if values else 0.0

    def steady_state_distance_ms(self, warmup_s: float) -> float:
        self._sync()
        values = self._distance_series.values_after(warmup_s)
        return sum(values) / len(values) if values else 0.0


class BandwidthAccountant:
    """Background-traffic accounting (gossip, push, keepalive, summary refresh)."""

    #: categories of background messages counted as overhead; "replication" is
    #: only used by the active-replication extension (Section 8 future work)
    CATEGORIES = ("gossip", "push", "keepalive", "summary", "replication")
    _CATEGORY_SET = frozenset(CATEGORIES)

    def __init__(self, window_s: float = 3600.0) -> None:
        self._bytes_per_peer: Dict[str, float] = defaultdict(float)
        self._bytes_per_category: Dict[str, float] = defaultdict(float)
        self._messages_per_category: Dict[str, int] = defaultdict(int)
        self._series = TimeSeries(window_s)
        self._peer_first_seen: Dict[str, float] = {}
        # record_message() runs on every background message inside the sim
        # loop: validation stays eager (error locality), accumulation is
        # deferred to _sync() like MetricsCollector's.
        self._pending: List[tuple] = []
        self._append_pending = self._pending.append

    def record_message(
        self, time: float, sender: str, receiver: str, num_bytes: int, category: str
    ) -> None:
        """Account a background message: both endpoints experience the traffic."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if category not in self._CATEGORY_SET:
            raise ValueError(f"unknown traffic category {category!r}")
        self._append_pending((time, sender, receiver, num_bytes, category))

    def observe_peer(self, time: float, peer: str) -> None:
        """Register a peer that participates even if it never sends traffic."""
        self._append_pending((time, peer, None, 0, None))

    def _sync(self) -> None:
        """Fold pending messages/observations into the aggregates, in order."""
        pending = self._pending
        if not pending:
            return
        bytes_per_peer = self._bytes_per_peer
        first_seen = self._peer_first_seen
        bytes_per_category = self._bytes_per_category
        messages_per_category = self._messages_per_category
        series_add = self._series.add
        setdefault = first_seen.setdefault
        for time, sender, receiver, num_bytes, category in pending:
            if category is None:
                # observe_peer(): participation without traffic.
                bytes_per_peer.setdefault(sender, 0.0)
                setdefault(sender, time)
                continue
            bytes_per_peer[sender] += num_bytes
            setdefault(sender, time)
            bytes_per_peer[receiver] += num_bytes
            setdefault(receiver, time)
            bytes_per_category[category] += 2 * num_bytes
            messages_per_category[category] += 1
            series_add(time, 2 * num_bytes)
        pending.clear()

    # -- aggregates --------------------------------------------------------------

    @property
    def num_peers(self) -> int:
        self._sync()
        return len(self._bytes_per_peer)

    @property
    def total_bytes(self) -> float:
        self._sync()
        return sum(self._bytes_per_peer.values())

    def total_bytes_by_category(self) -> Dict[str, float]:
        self._sync()
        return dict(self._bytes_per_category)

    def messages_by_category(self) -> Dict[str, int]:
        self._sync()
        return dict(self._messages_per_category)

    def average_bps_per_peer(self, duration_s: float) -> float:
        """The paper's *background traffic* metric: mean bps per participating peer."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self._sync()
        if not self._bytes_per_peer:
            return 0.0
        per_peer_bps = [
            (total_bytes * 8.0) / duration_s for total_bytes in self._bytes_per_peer.values()
        ]
        return sum(per_peer_bps) / len(per_peer_bps)

    def peak_bps_per_peer(self, duration_s: float) -> float:
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self._sync()
        if not self._bytes_per_peer:
            return 0.0
        return max((b * 8.0) / duration_s for b in self._bytes_per_peer.values())

    def traffic_series(self) -> TimeSeries:
        """Per-window total background bytes (Figure 5's traffic curve)."""
        self._sync()
        return self._series

    def bps_series(self, duration_hint_s: Optional[float] = None) -> List[tuple[float, float]]:
        """Per-window average bps per peer over time."""
        del duration_hint_s  # reserved for future normalisation options
        self._sync()
        points = []
        peers = max(1, self.num_peers)
        for window in self._series.windows():
            bits = window.total * 8.0
            points.append((window.window_start, bits / (self._series.window_s * peers)))
        return points
